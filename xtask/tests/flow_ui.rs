//! Fixture-driven ui tests for the `cargo xtask flow` passes.
//!
//! Each `tests/fixtures/flow/<name>.rs` file is a Rust snippet with a
//! directive header:
//!
//! * `//@ pass: range | schema | must-use` — which pass to run (required);
//! * `//@ path: crates/.../file.rs` — the virtual workspace path the
//!   fixture is checked under (default `crates/fixture/src/lib.rs`);
//! * `//@ checks: <P> proven, <R> runtime, <V> violated` — range only:
//!   the exact classification tally across the fixture's sanitizer sites.
//!
//! The companion `<name>.expected` file holds the exact structured
//! diagnostics (`{path}:{line}: [{pass}] {message}`), one per line, in
//! emission order; an empty file asserts the pass stays silent. The
//! clean fixtures double as the zero-false-positive guard. Run with
//! `BLESS=1` to rewrite the `.expected` files from actual output after an
//! intentional diagnostic change.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use xtask::flow::range::CheckStatus;
use xtask::flow::schema::Schema;
use xtask::flow::seeds::Seeds;
use xtask::flow::{errpath, range, schema};
use xtask::syntax::source::SourceFile;

/// The schema the non-declaration schema fixtures are checked against
/// (fixtures whose virtual path IS the declaration file bring their own).
const SCHEMA_DECL: &str = "pub mod schema {\n\
                           pub const EVENT_MINUTE: &str = \"minute\";\n\
                           pub const SPAN_TRACK: &str = \"track\";\n\
                           pub const HIST_ROUNDS: &str = \"rounds\";\n\
                           }\n";

struct Fixture {
    name: String,
    pass: String,
    path: String,
    checks: Option<(usize, usize, usize)>,
    body: String,
    expected_file: PathBuf,
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/flow")
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = fixtures_dir();
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()));
    for entry in entries {
        let p = entry.expect("dir entry").path();
        if p.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = p.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&p).expect("fixture readable");
        let mut pass = None;
        let mut path = "crates/fixture/src/lib.rs".to_owned();
        let mut checks = None;
        for line in text.lines() {
            let Some(directive) = line.strip_prefix("//@") else {
                continue;
            };
            if let Some(v) = directive.trim().strip_prefix("pass:") {
                pass = Some(v.trim().to_owned());
            } else if let Some(v) = directive.trim().strip_prefix("path:") {
                path = v.trim().to_owned();
            } else if let Some(v) = directive.trim().strip_prefix("checks:") {
                checks = Some(parse_checks(v, &name));
            } else {
                panic!("{name}: unknown directive `//@{directive}`");
            }
        }
        out.push(Fixture {
            pass: pass.unwrap_or_else(|| panic!("{name}: missing `//@ pass:` directive")),
            path,
            checks,
            body: text,
            expected_file: p.with_extension("expected"),
            name,
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Parses `<P> proven, <R> runtime, <V> violated`.
fn parse_checks(v: &str, name: &str) -> (usize, usize, usize) {
    let mut counts = [None; 3];
    for part in v.split(',') {
        let mut it = part.split_whitespace();
        let (Some(n), Some(label)) = (it.next(), it.next()) else {
            panic!("{name}: malformed checks directive part `{part}`");
        };
        let n: usize = n
            .parse()
            .unwrap_or_else(|_| panic!("{name}: bad count `{n}`"));
        let slot = match label {
            "proven" => 0,
            "runtime" => 1,
            "violated" => 2,
            other => panic!("{name}: unknown checks label `{other}`"),
        };
        counts[slot] = Some(n);
    }
    (
        counts[0].expect("proven count"),
        counts[1].expect("runtime count"),
        counts[2].expect("violated count"),
    )
}

/// Runs the fixture's pass; returns the rendered diagnostics and, for
/// range, the (proven, runtime, violated) tally.
fn run_fixture(f: &Fixture) -> (Vec<String>, Option<(usize, usize, usize)>) {
    let src = SourceFile::parse(&f.path, &f.body);
    match f.pass.as_str() {
        "range" => {
            assert!(
                range::applies_to(&f.path),
                "{}: path {} is outside the range pass's scope",
                f.name,
                f.path
            );
            let (sites, violations) = range::check(&src, &Seeds::for_tests());
            let tally =
                sites
                    .iter()
                    .flat_map(|s| s.checks.iter())
                    .fold((0, 0, 0), |(p, r, v), c| match c.status {
                        CheckStatus::Proven => (p + 1, r, v),
                        CheckStatus::Runtime => (p, r + 1, v),
                        CheckStatus::Violated => (p, r, v + 1),
                    });
            (
                violations.iter().map(ToString::to_string).collect(),
                Some(tally),
            )
        }
        "schema" => {
            assert!(
                schema::applies_to(&f.path),
                "{}: path {} is outside the schema pass's scope",
                f.name,
                f.path
            );
            // A fixture standing in for the declaration file brings its own
            // schema and is additionally checked for dead constants.
            let mut violations = if f.path == schema::DECL_PATH {
                let own = Schema::from_source(&src).expect("fixture declares a schema");
                let (_, mut v) = schema::check(&src, &own);
                v.extend(own.dead(&schema::collect_uses(&src)));
                v
            } else {
                let decl = SourceFile::parse(schema::DECL_PATH, SCHEMA_DECL);
                let fixed = Schema::from_source(&decl).expect("built-in schema parses");
                schema::check(&src, &fixed).1
            };
            violations.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.message.cmp(&b.message)));
            (violations.iter().map(ToString::to_string).collect(), None)
        }
        "must-use" => {
            assert!(
                errpath::applies_to(&f.path),
                "{}: path {} is outside the must-use pass's scope",
                f.name,
                f.path
            );
            let violations = errpath::check(&src, &errpath::FallibleSet::for_tests());
            (violations.iter().map(ToString::to_string).collect(), None)
        }
        other => panic!("{}: unknown pass `{other}`", f.name),
    }
}

#[test]
fn fixtures_produce_exactly_their_expected_diagnostics() {
    let fixtures = load_fixtures();
    assert!(
        fixtures.len() >= 8,
        "expected the full fixture suite, found {}",
        fixtures.len()
    );
    let bless = std::env::var_os("BLESS").is_some();
    let mut failures = String::new();
    for f in &fixtures {
        let (diags, tally) = run_fixture(f);
        let actual = if diags.is_empty() {
            String::new()
        } else {
            diags.join("\n") + "\n"
        };
        if bless {
            std::fs::write(&f.expected_file, &actual).expect("write .expected");
            continue;
        }
        let expected = std::fs::read_to_string(&f.expected_file).unwrap_or_else(|e| {
            panic!(
                "{}: cannot read {} (run with BLESS=1 to create it): {e}",
                f.name,
                f.expected_file.display()
            )
        });
        if actual != expected {
            let _ = writeln!(
                failures,
                "== {} ==\n--- expected ---\n{expected}--- actual ---\n{actual}",
                f.name
            );
        }
        if let (Some(want), Some(got)) = (f.checks, tally) {
            if want != got {
                let _ = writeln!(
                    failures,
                    "== {} == check tally mismatch: expected {want:?} \
                     (proven, runtime, violated), got {got:?}",
                    f.name
                );
            }
        }
    }
    assert!(failures.is_empty(), "\n{failures}");
}

/// Every pass must appear in the suite with at least one violating and one
/// clean fixture, so pass regressions in either direction are caught.
#[test]
fn suite_covers_every_pass_in_both_directions() {
    let fixtures = load_fixtures();
    for pass in ["range", "schema", "must-use"] {
        let of_pass: Vec<&Fixture> = fixtures.iter().filter(|f| f.pass == pass).collect();
        assert!(
            of_pass.iter().any(|f| {
                std::fs::read_to_string(&f.expected_file).is_ok_and(|e| !e.is_empty())
            }),
            "no violating fixture for pass `{pass}`"
        );
        assert!(
            of_pass
                .iter()
                .any(|f| { std::fs::read_to_string(&f.expected_file).is_ok_and(|e| e.is_empty()) }),
            "no clean fixture for pass `{pass}`"
        );
    }
}
