//@ pass: summary

//! A method matching the seed contract name `efficiency` whose derived
//! return interval is disjoint from the contract [0, 1): the cross-check
//! must flag the drift instead of trusting the hand-written seed.

pub struct Panel;

impl Panel {
    pub fn efficiency(&self) -> f64 {
        -5.0
    }
}
