//@ pass: reach

//! A `pub fn` in crate sources that nothing calls and nothing even
//! mentions: unreachable from every root and textually unaccounted, so
//! the dead-pub report must flag it.

pub fn orphaned_helper() -> f64 {
    42.0
}
