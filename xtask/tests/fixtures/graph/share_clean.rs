//@ pass: share

//! A read-only worker: captures are only read, state stays inside the
//! closure, so the site is proven race-free.

pub fn scaled(xs: Vec<f64>, k: f64) -> Vec<f64> {
    let offset = 1.0;
    parallel_map(xs, 4, |x| {
        let local = x * k;
        local + offset
    })
}
