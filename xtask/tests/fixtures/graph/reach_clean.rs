//@ pass: reach

//! The same shape kept alive the usual way: a test exercises the API,
//! tests are roots, so nothing is dead.

pub fn doubled(x: f64) -> f64 {
    x * 2.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        assert!(super::doubled(2.0) > 3.9);
    }
}
