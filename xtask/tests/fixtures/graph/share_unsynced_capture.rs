//@ pass: share

//! A `parallel_map` worker assigning to a captured local: every thread
//! would race on `total`, so the sharing pass must refuse the proof.

pub fn tally(xs: Vec<f64>) -> f64 {
    let mut total = 0.0;
    let doubled = parallel_map(xs, 4, |x| {
        total = total + 1.0;
        x + x
    });
    total + doubled.len() as f64
}
