//@ pass: summary
//@ largest-scc: 2

//! A mutually recursive pair plus a self-recursive function: Tarjan
//! condensation must collapse each cycle into one component and the
//! SCC fixpoint must still land on a sound (possibly ⊤) summary
//! without diverging or reporting anything.

pub fn even_steps(n: f64) -> f64 {
    if n <= 0.0 {
        0.0
    } else {
        odd_steps(n - 1.0)
    }
}

pub fn odd_steps(n: f64) -> f64 {
    if n <= 0.0 {
        1.0
    } else {
        even_steps(n - 1.0)
    }
}

pub fn countdown(n: f64) -> f64 {
    if n <= 0.0 {
        0.0
    } else {
        countdown(n - 1.0)
    }
}
