//@ pass: schema
//@ path: crates/solarcore/src/fixture.rs

// Every emission names its stream through a declared schema constant,
// including a named-metric construction. No diagnostics.
fn emit(tel: &Telemetry) {
    tel.event(schema::EVENT_MINUTE, 1.0);
    tel.span(schema::SPAN_TRACK, 2.0);
    let h = Histogram::new(schema::HIST_ROUNDS, buckets());
    h.record(3.0);
}
