//@ pass: range
//@ path: crates/solarcore/src/fixture.rs
//@ checks: 1 proven, 0 runtime, 1 violated

// A constant negative wattage, a transfer ratio outside the reachable
// DC/DC range, and a V/F ladder index past the last level: each must be
// flagged as a definite (statically provable) violation.
fn misbehave(c: Converter) {
    invariants::assert_power("stage", Watts::new(-3.0));
    c.set_ratio(12.5).expect("ratio");
    let _level = VfLevel::from_index(9.0);
}
