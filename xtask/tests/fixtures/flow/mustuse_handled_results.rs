//@ pass: must-use

// Properly handled fallible calls: propagation with `?`, an inspected
// `if let Err`, and a binding that is actually consumed. No diagnostics.
fn drain(tel: &mut Telemetry) -> Result<(), TelemetryError> {
    tel.flush()?;
    if let Err(e) = tel.flush() {
        log_error(&e);
    }
    let status = tel.flush();
    status
}
