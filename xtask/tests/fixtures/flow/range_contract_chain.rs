//@ pass: range
//@ path: crates/solarcore/src/fixture.rs
//@ checks: 5 proven, 3 runtime, 0 violated

// Seeded contracts flowing through f64::max / f64::min: `max(unknown, 0)`
// is provably non-NaN and non-negative but may still be +inf, so its
// finiteness stays with the runtime sanitizer; the min-capped draw lands
// in [0, 10] and discharges both of its checks. No diagnostics.
fn conserve(chip: Chip, cap: Watts) {
    let budget = cap.get().max(0.0);
    let drawn = budget.min(10.0);
    invariants::assert_budget("cap", Watts::new(drawn), Watts::new(budget));
    let v = chip.output_voltage();
    invariants::assert_bus_voltage("bus", Volts::new(v), Volts::new(2.0));
}
