//@ pass: schema
//@ path: crates/solarcore/src/telemetry.rs

// This fixture stands in for the declaration file itself: one constant is
// emitted, the other is never referenced anywhere and must be reported as
// dead schema at its declaration line.
pub mod schema {
    pub const EVENT_MINUTE: &str = "minute";
    pub const SPAN_GHOST: &str = "ghost";
}

fn emit(tel: &Telemetry) {
    tel.event(schema::EVENT_MINUTE, 1.0);
}
