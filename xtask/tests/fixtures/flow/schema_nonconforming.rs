//@ pass: schema
//@ path: crates/solarcore/src/fixture.rs

// Three nonconforming emission sites: a raw string literal, a constant
// the schema does not declare, and a name computed at the call site.
// The conforming `schema::SPAN_TRACK` emission must stay quiet.
fn emit(tel: &Telemetry, name: &str) {
    tel.event("ad-hoc-stream", 1.0);
    tel.event(schema::EVENT_GHOST, 2.0);
    tel.span(name, 3.0);
    tel.span(schema::SPAN_TRACK, 4.0);
}
