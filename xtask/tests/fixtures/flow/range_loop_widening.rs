//@ pass: range
//@ checks: 1 proven, 1 runtime, 0 violated

// Unbounded growth under an opaque exit condition: widening sends the
// upper bound to +inf (overflow is reachable), so finiteness correctly
// stays a runtime check while non-negativity is still proven.
fn grow(w: Workload) {
    let mut p = 1.0;
    loop {
        p = p * 2.0;
        invariants::assert_power("load", Watts::new(p));
        if w.done() {
            break;
        }
    }
}
