//@ pass: range
//@ checks: 2 proven, 0 runtime, 0 violated

// An explicit guard discharges both sanitizer checks: `is_finite()`
// excludes NaN and the infinities, and the observed-true `x >= 0.0`
// pins the lower bound.
fn guarded(x: f64) {
    if x.is_finite() && x >= 0.0 {
        invariants::assert_power("guarded", Watts::new(x));
    }
}
