//@ pass: must-use

// Three ways of dropping a fallible `Result` on the floor: `.ok();`
// without inspection, `let _ =` over a fallible call, and a bare call
// statement whose `Result` is discarded.
fn drain(tel: &mut Telemetry, c: &mut Converter) {
    tel.flush().ok();
    let _ = c.set_ratio(1.2);
    tel.flush();
}
