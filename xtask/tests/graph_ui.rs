//! Fixture-driven ui tests for the `cargo xtask graph` passes.
//!
//! Each `tests/fixtures/graph/<name>.rs` file is a Rust snippet with a
//! directive header:
//!
//! * `//@ pass: summary | share | reach` — whose diagnostics the fixture
//!   asserts (required; the other passes still run, their findings are
//!   ignored);
//! * `//@ path: crates/.../file.rs` — the virtual workspace path the
//!   fixture is checked under (default `crates/fixture/src/lib.rs`);
//! * `//@ largest-scc: <N>` — optional: the size of the largest SCC the
//!   call graph must condense to (the recursion fixtures pin this).
//!
//! The companion `<name>.expected` file holds the exact structured
//! diagnostics (`{path}:{line}: [{pass}] {message}`) *anchored at the
//! fixture's own path*, one per line, in emission order; an empty file
//! asserts the pass stays silent. Whole-workspace findings anchored
//! elsewhere (seed drift at the invariants file, unit-type checks at the
//! units file) are out of scope here — the fixture is not the workspace.
//! Run with `BLESS=1` to rewrite the `.expected` files from actual
//! output after an intentional diagnostic change.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use xtask::flow::seeds::Seeds;
use xtask::graph;
use xtask::syntax::source::SourceFile;

struct Fixture {
    name: String,
    pass: String,
    path: String,
    largest_scc: Option<usize>,
    body: String,
    expected_file: PathBuf,
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph")
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = fixtures_dir();
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()));
    for entry in entries {
        let p = entry.expect("dir entry").path();
        if p.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = p.file_stem().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&p).expect("fixture readable");
        let mut pass = None;
        let mut path = "crates/fixture/src/lib.rs".to_owned();
        let mut largest_scc = None;
        for line in text.lines() {
            let Some(directive) = line.strip_prefix("//@") else {
                continue;
            };
            if let Some(v) = directive.trim().strip_prefix("pass:") {
                pass = Some(v.trim().to_owned());
            } else if let Some(v) = directive.trim().strip_prefix("path:") {
                path = v.trim().to_owned();
            } else if let Some(v) = directive.trim().strip_prefix("largest-scc:") {
                let n = v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name}: bad largest-scc `{v}`"));
                largest_scc = Some(n);
            } else {
                panic!("{name}: unknown directive `//@{directive}`");
            }
        }
        let pass = pass.unwrap_or_else(|| panic!("{name}: missing `//@ pass:` directive"));
        assert!(
            graph::PASSES.contains(&pass.as_str()),
            "{name}: unknown graph pass `{pass}`"
        );
        out.push(Fixture {
            pass,
            path,
            largest_scc,
            body: text,
            expected_file: p.with_extension("expected"),
            name,
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Runs the full graph analysis over the single-file fixture; returns the
/// rendered diagnostics for the fixture's pass anchored at its own path,
/// plus the largest SCC size the call graph condensed to.
fn run_fixture(f: &Fixture) -> (Vec<String>, usize) {
    let src = SourceFile::parse(&f.path, &f.body);
    let analysis = graph::analyze(std::slice::from_ref(&src), &Seeds::for_tests());
    let diags = analysis
        .findings
        .iter()
        .filter(|v| v.pass == f.pass && v.path == f.path)
        .map(ToString::to_string)
        .collect();
    let largest = analysis
        .summary
        .sccs
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0);
    (diags, largest)
}

#[test]
fn fixtures_produce_exactly_their_expected_diagnostics() {
    let fixtures = load_fixtures();
    assert!(
        fixtures.len() >= 6,
        "expected the full fixture suite, found {}",
        fixtures.len()
    );
    let bless = std::env::var_os("BLESS").is_some();
    let mut failures = String::new();
    for f in &fixtures {
        let (diags, largest) = run_fixture(f);
        let actual = if diags.is_empty() {
            String::new()
        } else {
            diags.join("\n") + "\n"
        };
        if bless {
            std::fs::write(&f.expected_file, &actual).expect("write .expected");
        } else {
            let expected = std::fs::read_to_string(&f.expected_file).unwrap_or_else(|e| {
                panic!(
                    "{}: cannot read {} (run with BLESS=1 to create it): {e}",
                    f.name,
                    f.expected_file.display()
                )
            });
            if actual != expected {
                let _ = writeln!(
                    failures,
                    "== {} ==\n--- expected ---\n{expected}--- actual ---\n{actual}",
                    f.name
                );
            }
        }
        if let Some(want) = f.largest_scc {
            if want != largest {
                let _ = writeln!(
                    failures,
                    "== {} == largest SCC mismatch: expected {want}, got {largest}",
                    f.name
                );
            }
        }
    }
    assert!(failures.is_empty(), "\n{failures}");
}

/// Every graph pass must appear in the suite with at least one violating
/// and one clean fixture, so pass regressions in either direction are
/// caught.
#[test]
fn suite_covers_every_pass_in_both_directions() {
    let fixtures = load_fixtures();
    for pass in graph::PASSES {
        let of_pass: Vec<&Fixture> = fixtures.iter().filter(|f| f.pass == *pass).collect();
        assert!(
            of_pass
                .iter()
                .any(|f| std::fs::read_to_string(&f.expected_file).is_ok_and(|e| !e.is_empty())),
            "no violating fixture for pass `{pass}`"
        );
        assert!(
            of_pass
                .iter()
                .any(|f| std::fs::read_to_string(&f.expected_file).is_ok_and(|e| e.is_empty())),
            "no clean fixture for pass `{pass}`"
        );
    }
}
