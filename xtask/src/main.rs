//! Repo automation for the SolarCore workspace (`cargo xtask <command>`).
//!
//! Commands:
//!
//! * `lint` — repo-specific static-analysis passes the compiler cannot
//!   express: panic-free library code, unit-newtype discipline on public
//!   APIs, and unchecked-cast detection in conversion-heavy modules.
//! * `analyze` — token-level analysis passes: dimensional consistency of
//!   unit arithmetic, determinism hazards (hash ordering, ambient
//!   time/randomness, completion-order folds), and exhaustiveness/dead
//!   states of the controller and policy enums.
//! * `flow` — dataflow analysis over a per-function CFG: interval/range
//!   analysis of physical quantities (proving runtime sanitizer checks
//!   statically dischargeable, sharpened by the interprocedural summaries
//!   from `graph`), telemetry schema conformance, and error-path hygiene
//!   (dropped `Result`s). The proven fraction is held to a ratchet: it may
//!   never drop below the baseline in the committed
//!   `results/flow_report.json`; `--bless` rewrites the report to advance
//!   the baseline.
//! * `graph` — interprocedural call-graph analysis: workspace call graph
//!   with SCC condensation, bottom-up derived function summaries
//!   cross-checked against every hand-trusted seed contract, a
//!   parallel-closure sharing pass proving `parallel_map` workers
//!   race-free at the source level, and a reachability/dead-`pub` report.
//!   Writes `results/graph_report.json`.
//! * `determinism` — dynamic bitwise-reproducibility harness: runs the
//!   policy-grid day simulations at 1 thread, N threads, and with shuffled
//!   input order and compares canonical `f64::to_bits` hashes.
//! * `bench` — runs the criterion suite and collects median ns/iter per
//!   benchmark into `BENCH_pr3.json`; `--smoke` shrinks sample counts so
//!   CI can verify the harness without a full measurement run.
//! * `trace` — runs the golden telemetry day (Golden CO / Jan / HM2 /
//!   MPPT&Opt), writes its JSONL stream under `results/`, renders the
//!   per-period tracking timeline and cross-checks the stream's
//!   tracking-error aggregate against the committed Table 7 artifact.
//! * `chaos` — runs the differential fault-injection campaign over every
//!   scenario under `scenarios/`, enforcing the soundness gates (control
//!   rows bit-transparent, zero false degradation trips) and rewriting
//!   `results/chaos_report.json`; `--smoke` runs a two-scenario subset
//!   with the same gates and writes nothing.
//! * `campaign` — runs the year-scale sharded campaign engine on the
//!   committed `campaigns/year_fleet.toml` spec, proves the report is
//!   byte-identical across thread counts and across a kill/resume cycle,
//!   and rewrites `results/campaign_report.json`; `--smoke` runs a
//!   four-shard inline spec through the same gates and writes nothing.
//! * `profile` — runs the year-scale campaign under the hierarchical
//!   wall-clock profiler and writes `results/profile_report.json`
//!   (deterministic structural section + machine-dependent wall section)
//!   plus flamegraph/Chrome-trace renders under `target/`; `--smoke`
//!   proves structural byte-stability and bit-transparency on the
//!   four-shard spec and writes nothing.
//! * `tdiff` — schema-aware diff of two telemetry/profile/campaign
//!   artifacts: counters by relative delta, histograms by quantile
//!   profile, span trees structurally and by wall-time thresholds;
//!   non-zero exit on any regression.
//! * `docs` — documentation cross-reference pass: every `§N` pointer
//!   resolves to a DESIGN.md heading, every committed `results/*.json`
//!   is catalogued in EXPERIMENTS.md, and the README crate map covers
//!   every workspace crate.
//! * `ci`   — the one-command verification gate, in dependency order:
//!   lint → docs → clippy → analyze → flow → graph → doc → build →
//!   test → determinism → chaos smoke → campaign smoke → profile smoke →
//!   tdiff self-check → bench smoke.
//!
//! Exit status is non-zero when any pass finds a violation, so all
//! commands can gate CI directly.
//!
//! The passes themselves live in the `xtask` library crate (see
//! `src/lib.rs`) so the fixture ui tests can drive them directly.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use xtask::{analyze, bench, docs, flow, graph, lint};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("analyze") => run_analyze(),
        Some("flow") => run_flow(args.iter().any(|a| a == "--bless")),
        Some("graph") => run_graph(),
        Some("determinism") => run_determinism(),
        Some("bench") => {
            let smoke = args.iter().any(|a| a == "--smoke");
            bench::run(&workspace_root(), smoke)
        }
        Some("trace") => run_trace(),
        Some("chaos") => run_chaos(args.iter().any(|a| a == "--smoke")),
        Some("campaign") => run_campaign(args.iter().any(|a| a == "--smoke")),
        Some("profile") => run_profile(args.iter().any(|a| a == "--smoke")),
        Some("tdiff") => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => run_tdiff(a, b),
            _ => {
                eprintln!("usage: cargo xtask tdiff <a.json> <b.json>");
                ExitCode::FAILURE
            }
        },
        Some("docs") => run_docs(),
        Some("ci") => run_ci(),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
        None => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <lint | docs | analyze | flow [--bless] | graph | determinism | \
         bench [--smoke] | trace | chaos [--smoke] | campaign [--smoke] | profile [--smoke] | \
         tdiff <a> <b> | ci>"
    );
    eprintln!("  lint         run the repo-specific static-analysis passes");
    eprintln!("  analyze      run dimensional, determinism and exhaustiveness analysis");
    eprintln!("  flow         run interval, schema-conformance and error-path dataflow passes");
    eprintln!("               (--bless rewrites results/flow_report.json, advancing the ratchet)");
    eprintln!("  graph        run call-graph summary, parallel-sharing and reachability passes");
    eprintln!("  determinism  verify bit-identical day-sim output across thread counts");
    eprintln!("  bench        run the criterion suite and write BENCH_pr3.json");
    eprintln!("  trace        run the golden telemetry day and render its timeline");
    eprintln!(
        "  chaos        run the fault-injection campaign and write results/chaos_report.json"
    );
    eprintln!("               (--smoke runs a two-scenario subset and writes nothing)");
    eprintln!(
        "  campaign     run the year-scale sharded campaign and write \
         results/campaign_report.json"
    );
    eprintln!("               (--smoke runs a four-shard inline spec and writes nothing)");
    eprintln!(
        "  profile      run the year-scale campaign profiled and write \
         results/profile_report.json"
    );
    eprintln!("               (--smoke proves byte-stability/transparency and writes nothing)");
    eprintln!("  tdiff        schema-aware diff of two telemetry/profile/campaign artifacts");
    eprintln!("  docs         check DESIGN.md anchors, the EXPERIMENTS.md catalog, the crate map");
    eprintln!(
        "  ci           lint, docs, clippy, analyze, flow, graph, doc, build, test, \
         determinism, chaos smoke, campaign smoke, profile smoke, tdiff self-check, bench smoke"
    );
}

/// Locates the workspace root (the directory holding the top Cargo.toml).
fn workspace_root() -> PathBuf {
    // cargo sets CARGO_MANIFEST_DIR to <root>/xtask when running this bin.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_owned());
    let dir = PathBuf::from(manifest);
    dir.parent().map(PathBuf::from).unwrap_or(dir)
}

/// Prints a report and converts it to an exit code, shared by the
/// static-analysis commands.
fn finish(command: &str, result: Result<lint::Report, String>) -> ExitCode {
    match result {
        Ok(report) => {
            if report.violations.is_empty() {
                println!(
                    "xtask {command}: clean ({} files scanned, {} waivers in effect)",
                    report.files_scanned, report.waivers_used
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!(
                    "xtask {command}: {} violation(s) in {} file(s) scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("xtask {command}: error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    finish("lint", lint::run(&workspace_root()))
}

fn run_docs() -> ExitCode {
    finish("docs", docs::run(&workspace_root()))
}

fn run_analyze() -> ExitCode {
    finish("analyze", analyze::run(&workspace_root()))
}

fn run_flow(bless: bool) -> ExitCode {
    let root = workspace_root();
    match flow::run(&root) {
        Ok(outcome) => {
            println!("{}", outcome.summary());
            // Gate order: findings, then the ratchet, then artifact
            // freshness — so the most actionable failure prints first.
            let proven_ratio = outcome.proven_ratio;
            let baseline = outcome.baseline;
            let gate_passed = outcome.proof_gate_passed;
            let rendered = flow::report_json(&outcome).render();
            let code = finish("flow", Ok(outcome.report));
            if code != ExitCode::SUCCESS {
                return code;
            }
            if !gate_passed {
                eprintln!(
                    "xtask flow: proven-invariant ratio {:.2}% dropped below the ratchet \
                     baseline {:.2}% (results/flow_report.json); prove more, don't regress",
                    proven_ratio * 100.0,
                    baseline * 100.0
                );
                return ExitCode::FAILURE;
            }
            let report_path = root.join("results").join("flow_report.json");
            if bless {
                let write = std::fs::create_dir_all(root.join("results"))
                    .and_then(|()| std::fs::write(&report_path, &rendered));
                if let Err(err) = write {
                    eprintln!("xtask flow: cannot write {}: {err}", report_path.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "xtask flow: report blessed at {} (ratchet now {:.2}%)",
                    report_path.display(),
                    proven_ratio * 100.0
                );
            } else if std::fs::read_to_string(&report_path).ok().as_deref() != Some(&rendered) {
                eprintln!(
                    "xtask flow: {} is stale (the analysis moved); run `cargo xtask flow \
                     --bless` and commit the report",
                    report_path.display()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("xtask flow: error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_graph() -> ExitCode {
    let root = workspace_root();
    match graph::run(&root) {
        Ok(outcome) => {
            println!("{}", outcome.summary());
            match graph::write_report(&root, &outcome) {
                Ok(path) => println!("xtask graph: report written to {}", path.display()),
                Err(err) => {
                    eprintln!("xtask graph: error: {err}");
                    return ExitCode::FAILURE;
                }
            }
            finish("graph", Ok(outcome.report))
        }
        Err(err) => {
            eprintln!("xtask graph: error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the dynamic reproducibility harness (a bench binary, so xtask does
/// not link the simulation crates).
fn run_determinism() -> ExitCode {
    let root = workspace_root();
    println!("xtask determinism: running determinism_check (release)");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "bench",
            "--bin",
            "determinism_check",
        ])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("xtask determinism: divergence detected (see output above)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask determinism: could not spawn cargo: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the golden-day telemetry report (a bench binary, so xtask does not
/// link the simulation crates).
fn run_trace() -> ExitCode {
    let root = workspace_root();
    println!("xtask trace: running trace_report (release)");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "bench",
            "--bin",
            "trace_report",
        ])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("xtask trace: golden-day cross-check failed (see output above)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask trace: could not spawn cargo: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the differential chaos campaign (a bench binary, so xtask does
/// not link the simulation crates).
fn run_chaos(smoke: bool) -> ExitCode {
    let root = workspace_root();
    let mode = if smoke { " --smoke" } else { "" };
    println!("xtask chaos: running chaos_check{mode} (release)");
    let mut args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "bench",
        "--bin",
        "chaos_check",
    ];
    if smoke {
        args.extend(["--", "--smoke"]);
    }
    let status = Command::new("cargo")
        .args(&args)
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("xtask chaos: campaign gate failed (see output above)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask chaos: could not spawn cargo: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the sharded campaign engine (a bench binary, so xtask does not
/// link the simulation crates).
fn run_campaign(smoke: bool) -> ExitCode {
    let root = workspace_root();
    let mode = if smoke { " --smoke" } else { "" };
    println!("xtask campaign: running campaign{mode} (release)");
    let mut args = vec!["run", "--release", "-q", "-p", "bench", "--bin", "campaign"];
    if smoke {
        args.extend(["--", "--smoke"]);
    }
    let status = Command::new("cargo")
        .args(&args)
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("xtask campaign: determinism/resume gate failed (see output above)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask campaign: could not spawn cargo: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the wall-clock profile report (a bench binary, so xtask does not
/// link the simulation crates).
fn run_profile(smoke: bool) -> ExitCode {
    let root = workspace_root();
    let mode = if smoke { " --smoke" } else { "" };
    println!("xtask profile: running profile_report{mode} (release)");
    let mut args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "bench",
        "--bin",
        "profile_report",
    ];
    if smoke {
        args.extend(["--", "--smoke"]);
    }
    let status = Command::new("cargo")
        .args(&args)
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("xtask profile: transparency/stability gate failed (see output above)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask profile: could not spawn cargo: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Diffs two artifacts via the bench `tdiff` binary; non-zero exit on
/// any regression.
fn run_tdiff(a: &str, b: &str) -> ExitCode {
    let root = workspace_root();
    println!("xtask tdiff: comparing {a} vs {b} (release)");
    let status = Command::new("cargo")
        .args([
            "run", "--release", "-q", "-p", "bench", "--bin", "tdiff", "--", a, b,
        ])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("xtask tdiff: regressions found (see output above)");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask tdiff: could not spawn cargo: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_ci() -> ExitCode {
    let root = workspace_root();

    // Static gates first: they are cheap and fail fast.
    println!("xtask ci: running xtask lint");
    if run_lint() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    println!("xtask ci: running xtask docs");
    if run_docs() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    let clippy: &[&str] = &[
        "clippy",
        "--workspace",
        "--all-targets",
        "--",
        "-D",
        "warnings",
    ];
    println!("xtask ci: running cargo {}", clippy.join(" "));
    if !run_cargo_step(&root, "clippy", clippy) {
        return ExitCode::FAILURE;
    }

    println!("xtask ci: running xtask analyze");
    if run_analyze() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    println!("xtask ci: running xtask flow");
    if run_flow(false) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    println!("xtask ci: running xtask graph");
    if run_graph() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    // Rustdoc gate: crate-level docs and doc links must stay warning-free
    // (the observability contract in `solarcore::telemetry` is rustdoc).
    let doc: &[&str] = &["doc", "--no-deps", "--workspace"];
    println!(
        "xtask ci: running cargo {} (RUSTDOCFLAGS=-D warnings)",
        doc.join(" ")
    );
    let doc_status = Command::new("cargo")
        .args(doc)
        .env("RUSTDOCFLAGS", "-D warnings")
        .current_dir(&root)
        .status();
    match doc_status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask ci: step `doc` failed with {s}");
            return ExitCode::FAILURE;
        }
        Err(err) => {
            eprintln!("xtask ci: could not spawn cargo for `doc`: {err}");
            return ExitCode::FAILURE;
        }
    }

    let build_test: [(&str, &[&str]); 2] = [
        ("build", &["build", "--release", "--workspace"]),
        ("test", &["test", "-q", "--workspace"]),
    ];
    for (name, args) in build_test {
        println!("xtask ci: running cargo {}", args.join(" "));
        if !run_cargo_step(&root, name, args) {
            return ExitCode::FAILURE;
        }
    }

    println!("xtask ci: running xtask determinism");
    if run_determinism() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    // Chaos smoke: proves the fault-injection campaign's soundness gates
    // (control transparency, zero false trips) on a two-scenario subset.
    println!("xtask ci: running xtask chaos --smoke");
    if run_chaos(true) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    // Campaign smoke: proves the sharded campaign engine's determinism
    // and kill/resume gates on a four-shard inline spec.
    println!("xtask ci: running xtask campaign --smoke");
    if run_campaign(true) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    // Profile smoke: proves the wall-clock profiler's structural section
    // is byte-stable across thread counts and that profiling leaves the
    // campaign report bytes untouched.
    println!("xtask ci: running xtask profile --smoke");
    if run_profile(true) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    // tdiff self-check: the committed campaign report diffed against
    // itself must report zero findings — proves the comparison engine
    // parses the real artifact and that "identical" means identical.
    println!("xtask ci: running xtask tdiff (campaign report self-check)");
    if run_tdiff("results/campaign_report.json", "results/campaign_report.json")
        != ExitCode::SUCCESS
    {
        return ExitCode::FAILURE;
    }

    // Benchmark smoke: proves every bench target runs to completion and
    // emits a well-formed BENCH_pr3.json; does not assert timing.
    println!("xtask ci: running xtask bench --smoke");
    if bench::run(&root, true) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }

    println!("xtask ci: all gates passed");
    ExitCode::SUCCESS
}

/// Spawns one cargo step; `true` on success.
fn run_cargo_step(root: &std::path::Path, name: &str, args: &[&str]) -> bool {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("xtask ci: step `{name}` failed with {s}");
            false
        }
        Err(err) => {
            eprintln!("xtask ci: could not spawn cargo for `{name}`: {err}");
            false
        }
    }
}
