//! Repo automation for the SolarCore workspace (`cargo xtask <command>`).
//!
//! Commands:
//!
//! * `lint` — repo-specific static-analysis passes the compiler cannot
//!   express: panic-free library code, unit-newtype discipline on public
//!   APIs, and unchecked-cast detection in conversion-heavy modules.
//! * `ci`   — the one-command verification gate: release build, tests,
//!   clippy with denied warnings, and `lint`.
//!
//! Exit status is non-zero when any pass finds a violation, so both
//! commands can gate CI directly.

mod lint;

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("ci") => run_ci(),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
        None => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage: cargo xtask <lint | ci>");
    eprintln!("  lint  run the repo-specific static-analysis passes");
    eprintln!("  ci    build --release, test, clippy -D warnings, then lint");
}

/// Locates the workspace root (the directory holding the top Cargo.toml).
fn workspace_root() -> PathBuf {
    // cargo sets CARGO_MANIFEST_DIR to <root>/xtask when running this bin.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_owned());
    let dir = PathBuf::from(manifest);
    dir.parent().map(PathBuf::from).unwrap_or(dir)
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    match lint::run(&root) {
        Ok(report) => {
            if report.violations.is_empty() {
                println!(
                    "xtask lint: clean ({} files scanned, {} waivers in effect)",
                    report.files_scanned, report.waivers_used
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!(
                    "xtask lint: {} violation(s) in {} file(s) scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("xtask lint: error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_ci() -> ExitCode {
    let root = workspace_root();
    let steps: [(&str, &[&str]); 3] = [
        ("build", &["build", "--release", "--workspace"]),
        ("test", &["test", "-q", "--workspace"]),
        (
            "clippy",
            &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"],
        ),
    ];
    for (name, args) in steps {
        println!("xtask ci: running cargo {}", args.join(" "));
        let status = Command::new("cargo").args(args).current_dir(&root).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask ci: step `{name}` failed with {s}");
                return ExitCode::FAILURE;
            }
            Err(err) => {
                eprintln!("xtask ci: could not spawn cargo for `{name}`: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("xtask ci: running xtask lint");
    let code = run_lint();
    if code == ExitCode::SUCCESS {
        println!("xtask ci: all gates passed");
    }
    code
}
