//! Pass `panic`: forbids `unwrap()`, `expect(...)` and `panic!` in
//! non-test library code.
//!
//! SolarCore's north star is crash-free operation under production trace
//! loads; a stray `unwrap()` turns a malformed trace sample into an outage.
//! Library code must propagate the crate's typed `Error` enums instead.
//! Justified sites (provably-unreachable states, documented startup
//! validation) carry a `// lint:allow(panic): <reason>` marker or an
//! allowlist entry.

use super::Violation;
use crate::syntax::source::SourceFile;

/// Pass name used in waivers and reports.
pub const PASS: &str = "panic";

/// The pass covers every library source file the driver collects.
pub fn applies_to(_path: &str) -> bool {
    true
}

/// Scans one file for panic-capable calls outside test code.
pub fn check(src: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, code) in src.code.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test_line(line_no) {
            continue;
        }
        for (needle, what) in [
            (".unwrap()", "`unwrap()` can panic"),
            (".expect(", "`expect()` can panic"),
            ("panic!(", "`panic!` in library code"),
            ("unimplemented!(", "`unimplemented!` in library code"),
            ("todo!(", "`todo!` in library code"),
        ] {
            if code.contains(needle) {
                out.push(Violation {
                    pass: PASS,
                    path: src.path.clone(),
                    line: line_no,
                    message: format!(
                        "{what}; propagate the crate's typed error instead \
                         (or mark `// lint:allow(panic): <reason>`)"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Violation> {
        check(&SourceFile::parse("crates/x/src/lib.rs", text))
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let v =
            findings("fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"no\");\n}\n");
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 4);
    }

    #[test]
    fn ignores_tests_comments_and_strings() {
        let text = "\
fn f() {
    // x.unwrap() in a comment
    let s = \"panic!(\";
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let v =
            findings("fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }");
        assert!(v.is_empty());
    }
}
