//! The repo-specific lint driver: walks workspace sources, runs each pass,
//! and applies the waiver mechanisms.
//!
//! Three passes enforce invariants the compiler cannot see (ISSUE 1):
//!
//! * [`panics`] — no `unwrap()`/`expect()`/`panic!` in non-test library
//!   code (crash-free operation under trace anomalies);
//! * [`rawf64`] — public APIs of the physics crates must use `pv::units`
//!   newtypes for physical quantities instead of raw `f64`;
//! * [`casts`] — conversion-heavy modules must not use unchecked `as`
//!   numeric casts that can truncate silently.
//!
//! Two waiver mechanisms exist, both explicit and reviewable:
//!
//! * an inline marker on the offending line:
//!   `// lint:allow(<pass>): <reason>`;
//! * a workspace allowlist file `xtask/lint-allow.txt` with
//!   `<pass> <path-prefix> [# comment]` lines for whole files/directories.
//!
//! Neither mechanism works inside a [`NO_WAIVER_ZONES`] entry: the
//! telemetry crate's sink errors must be `Result`-propagated (a tracing
//! layer that can crash the simulation it observes is worse than no
//! tracing), so `panic` findings under `crates/telemetry/src` cannot be
//! waived — the waiver itself is reported as a violation.

pub mod casts;
pub mod panics;
pub mod rawf64;

use std::fmt;
use std::fs;
use std::path::Path;

use crate::syntax::files;
use crate::syntax::source::SourceFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which pass produced the finding (`panic`, `raw-f64`, `cast`).
    pub pass: &'static str,
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.pass, self.message
        )
    }
}

/// Outcome of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving (non-waived) violations.
    pub violations: Vec<Violation>,
    /// Number of files scanned by at least one pass.
    pub files_scanned: usize,
    /// Findings suppressed by inline markers or the allowlist.
    pub waivers_used: usize,
}

/// The passes `cargo xtask lint` runs (analyze has its own set); used to
/// scope unused-waiver accounting so each command only polices its own
/// markers and allowlist entries.
pub const PASSES: &[&str] = &["panic", "raw-f64", "cast"];

/// `(pass, path-prefix)` pairs where waivers are themselves violations.
///
/// The telemetry crate is the observability layer for every simulation in
/// the workspace; a panic in a sink would take the simulated day down with
/// it. Sink fallibility is part of the contract (`SinkError`, propagated
/// through `CoreError::Telemetry`), so no `unwrap()`/`expect()` waiver is
/// ever acceptable there — return the error instead.
pub const NO_WAIVER_ZONES: &[(&str, &str)] = &[("panic", "crates/telemetry/src")];

/// `true` when a `pass` finding at `path` sits in a no-waiver zone, i.e.
/// waiving it is forbidden.
fn waiver_forbidden(pass: &str, path: &str) -> bool {
    NO_WAIVER_ZONES
        .iter()
        .any(|(p, prefix)| *p == pass && path.starts_with(prefix))
}

/// One `<pass> <path-prefix>` allowlist entry, with usage tracking.
#[derive(Debug)]
struct AllowEntry {
    pass: String,
    prefix: String,
    /// 1-based line in `lint-allow.txt`.
    line: usize,
    /// Set once a finding was suppressed through this entry.
    used: bool,
}

/// A parsed `xtask/lint-allow.txt`.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Loads the allowlist; a missing file is an empty allowlist.
    pub fn load(root: &Path) -> Result<Self, String> {
        let path = root.join("xtask").join("lint-allow.txt");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::default()),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(pass), Some(prefix)) => {
                    entries.push(AllowEntry {
                        pass: pass.to_owned(),
                        prefix: prefix.to_owned(),
                        line: n + 1,
                        used: false,
                    });
                }
                _ => {
                    return Err(format!(
                        "lint-allow.txt:{}: expected `<pass> <path-prefix>`",
                        n + 1
                    ))
                }
            }
        }
        Ok(Self { entries })
    }

    /// `true` if `pass` findings in `path` are waived wholesale; marks the
    /// matching entry as used.
    pub fn allows(&mut self, pass: &str, path: &str) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.pass == pass && path.starts_with(e.prefix.as_str()) {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that try to waive a pass inside a no-waiver zone. Dead on
    /// arrival: reported as violations and marked used so they are not
    /// double-reported as stale.
    pub fn forbidden(&mut self) -> Vec<Violation> {
        let mut out = Vec::new();
        for e in &mut self.entries {
            let hits_zone = NO_WAIVER_ZONES.iter().any(|(pass, zone)| {
                e.pass == *pass
                    && (zone.starts_with(e.prefix.as_str()) || e.prefix.starts_with(zone))
            });
            if hits_zone {
                e.used = true;
                out.push(Violation {
                    pass: "waiver",
                    path: "xtask/lint-allow.txt".to_owned(),
                    line: e.line,
                    message: format!(
                        "allowlist entry `{} {}` reaches into a no-waiver zone: \
                         `{}` findings there must be fixed by propagating the \
                         error as a `Result`, never waived — remove the line",
                        e.pass, e.prefix, e.pass
                    ),
                });
            }
        }
        out
    }

    /// Stale entries for the given pass set: never matched a finding during
    /// this run, so they allow nothing and must be pruned.
    pub fn unused(&self, passes: &[&str]) -> Vec<Violation> {
        self.entries
            .iter()
            .filter(|e| !e.used && passes.contains(&e.pass.as_str()))
            .map(|e| Violation {
                pass: "waiver",
                path: "xtask/lint-allow.txt".to_owned(),
                line: e.line,
                message: format!(
                    "stale allowlist entry `{} {}`: no finding matches it any more — \
                     remove the line",
                    e.pass, e.prefix
                ),
            })
            .collect()
    }
}

/// Applies both waiver mechanisms to one file's findings, feeding `report`;
/// also flags reason-less and unused inline markers belonging to `passes`.
pub fn apply_file_waivers(
    allow: &mut Allowlist,
    src: &SourceFile,
    findings: Vec<Violation>,
    passes: &[&str],
    report: &mut Report,
) {
    let mut inline_hits: Vec<(usize, &'static str)> = Vec::new();
    for v in findings {
        if waiver_forbidden(v.pass, &src.path) {
            // No-waiver zone: the finding survives unconditionally, without
            // consulting (or crediting) either waiver mechanism.
            report.violations.push(v);
        } else if allow.allows(v.pass, &src.path) {
            report.waivers_used += 1;
        } else if src.has_waiver(v.line, v.pass) {
            report.waivers_used += 1;
            inline_hits.push((v.line, v.pass));
        } else {
            report.violations.push(v);
        }
    }
    for m in src.waiver_markers() {
        if !passes.contains(&m.pass.as_str()) {
            continue;
        }
        if waiver_forbidden(&m.pass, &src.path) {
            report.violations.push(Violation {
                pass: "waiver",
                path: src.path.clone(),
                line: m.line,
                message: format!(
                    "`lint:allow({})` is ineffective here: `{}` findings in \
                     this crate must be fixed by propagating the error as a \
                     `Result`, never waived — remove the marker",
                    m.pass, m.pass
                ),
            });
            continue;
        }
        if !m.has_reason {
            report.violations.push(Violation {
                pass: "waiver",
                path: src.path.clone(),
                line: m.line,
                message: format!(
                    "waiver `lint:allow({})` has no reason — write \
                     `// lint:allow({}): <why>`",
                    m.pass, m.pass
                ),
            });
            continue;
        }
        // A marker covers its own line and, as a comment-only line, the
        // line below (matching `SourceFile::has_waiver`).
        let used = inline_hits
            .iter()
            .any(|(l, p)| *p == m.pass && (*l == m.line || *l == m.line + 1));
        if !used {
            report.violations.push(Violation {
                pass: "waiver",
                path: src.path.clone(),
                line: m.line,
                message: format!(
                    "unused waiver `lint:allow({})`: the finding it suppressed no \
                     longer fires — remove the marker",
                    m.pass
                ),
            });
        }
    }
}

/// Runs every pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut allow = Allowlist::load(root)?;
    let mut report = Report::default();
    report.violations.extend(allow.forbidden());

    // Experiment binaries are top-level executables where fail-fast on
    // I/O errors is the desired behaviour, so they are out of scope.
    let files = files::collect_crate_sources(root, false)?;
    report.files_scanned = files.len();

    for path in &files {
        let rel = files::relative(root, path);
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let src = SourceFile::parse(&rel, &text);

        let mut findings = Vec::new();
        if panics::applies_to(&rel) {
            findings.extend(panics::check(&src));
        }
        if rawf64::applies_to(&rel) {
            findings.extend(rawf64::check(&src));
        }
        if casts::applies_to(&rel) {
            findings.extend(casts::check(&src));
        }

        apply_file_waivers(&mut allow, &src, findings, PASSES, &mut report);
    }
    report.violations.extend(allow.unused(PASSES));

    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A telemetry-crate source whose `unwrap()` carries a (well-formed)
    /// inline waiver — both the finding and the waiver must be reported.
    #[test]
    fn panic_waivers_are_ineffective_in_the_telemetry_crate() {
        let path = "crates/telemetry/src/sink.rs";
        let text = "pub fn f(x: Option<u32>) -> u32 {\n    // lint:allow(panic): buffered writes cannot fail\n    x.unwrap()\n}\n";
        let src = SourceFile::parse(path, text);
        let findings = panics::check(&src);
        assert!(!findings.is_empty(), "unwrap() must be found first");

        let mut allow = Allowlist::default();
        let mut report = Report::default();
        apply_file_waivers(&mut allow, &src, findings, PASSES, &mut report);

        assert_eq!(report.waivers_used, 0, "nothing may be waived here");
        assert!(
            report.violations.iter().any(|v| v.pass == "panic"),
            "the unwrap finding must survive: {:?}",
            report.violations
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.pass == "waiver" && v.message.contains("ineffective")),
            "the dead marker must be flagged: {:?}",
            report.violations
        );
    }

    /// The same waiver outside the zone still works (the bench allowlist
    /// mechanism is unchanged).
    #[test]
    fn panic_waivers_still_work_outside_the_zone() {
        let path = "crates/bench/src/report.rs";
        let text = "pub fn f(x: Option<u32>) -> u32 {\n    // lint:allow(panic): report builder, fail-fast is fine\n    x.unwrap()\n}\n";
        let src = SourceFile::parse(path, text);
        let findings = panics::check(&src);
        assert!(!findings.is_empty());

        let mut allow = Allowlist::default();
        let mut report = Report::default();
        apply_file_waivers(&mut allow, &src, findings, PASSES, &mut report);

        assert_eq!(report.waivers_used, 1);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    /// Allowlist entries reaching into the zone — exactly, more deeply, or
    /// via a broader prefix — are violations; sibling crates are not.
    #[test]
    fn allowlist_entries_cannot_reach_into_the_zone() {
        let mut allow = Allowlist {
            entries: vec![
                AllowEntry {
                    pass: "panic".to_owned(),
                    prefix: "crates/telemetry/src".to_owned(),
                    line: 1,
                    used: false,
                },
                AllowEntry {
                    pass: "panic".to_owned(),
                    prefix: "crates/".to_owned(),
                    line: 2,
                    used: false,
                },
                AllowEntry {
                    pass: "panic".to_owned(),
                    prefix: "crates/bench/src".to_owned(),
                    line: 3,
                    used: false,
                },
                AllowEntry {
                    pass: "cast".to_owned(),
                    prefix: "crates/telemetry/src".to_owned(),
                    line: 4,
                    used: false,
                },
            ],
        };
        let forbidden = allow.forbidden();
        let lines: Vec<usize> = forbidden.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 2], "{forbidden:?}");
        // Flagged entries are consumed: they must not re-surface as stale.
        assert!(allow.unused(&["panic"]).iter().all(|v| v.line == 3));
    }
}
