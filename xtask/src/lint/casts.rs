//! Pass `cast`: forbids unchecked narrowing `as` casts in the
//! conversion-heavy modules (`pv::module`, `pv::array`,
//! `solarenv::weather`).
//!
//! Those modules turn trace indices, minute counters and cell counts into
//! physics inputs; a silent `as u32` truncation there corrupts a whole
//! simulated day without any error. Widening to `f64` is always safe and
//! allowed; everything else must go through `TryFrom`/`try_into`, an
//! explicit clamp, or carry a `// lint:allow(cast): <reason>` marker.

use super::Violation;
use crate::syntax::source::SourceFile;

/// Pass name used in waivers and reports.
pub const PASS: &str = "cast";

/// Narrowing / lossy cast targets. `as f64` is widening and allowed.
const LOSSY: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// Scope: the conversion-heavy modules named by the invariant catalog.
pub fn applies_to(path: &str) -> bool {
    matches!(
        path,
        "crates/pv/src/module.rs" | "crates/pv/src/array.rs" | "crates/solarenv/src/weather.rs"
    )
}

/// Scans one file for `as <lossy-type>` casts outside test code.
pub fn check(src: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, code) in src.code.iter().enumerate() {
        let line_no = idx + 1;
        if src.is_test_line(line_no) {
            continue;
        }
        for target in casts_on_line(code) {
            out.push(Violation {
                pass: PASS,
                path: src.path.clone(),
                line: line_no,
                message: format!(
                    "unchecked `as {target}` cast can truncate silently; use \
                     `TryFrom`/`try_into` or an explicit clamp \
                     (or mark `// lint:allow(cast): <reason>`)"
                ),
            });
        }
    }
    out
}

/// Returns the target types of every lossy `as` cast on a masked line.
fn casts_on_line(code: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find(" as ") {
        let after = &rest[pos + 4..];
        let token: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = LOSSY.iter().find(|t| **t == token) {
            out.push(*t);
        }
        rest = after;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Violation> {
        check(&SourceFile::parse("crates/pv/src/module.rs", text))
    }

    #[test]
    fn flags_narrowing_casts() {
        let v = findings("let n = x as u32;\nlet m = y as f32;\n");
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("as u32"));
        assert!(v[1].message.contains("as f32"));
    }

    #[test]
    fn widening_to_f64_is_allowed() {
        assert!(findings("let x = minute as f64;\n").is_empty());
    }

    #[test]
    fn identifiers_containing_as_do_not_trip() {
        assert!(findings("let bias = phase_shift + alias_usize;\n").is_empty());
    }

    #[test]
    fn comments_and_tests_are_ignored() {
        let text = "// x as u32\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = 1.5 as u8; }\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn scope_is_exactly_the_conversion_modules() {
        assert!(applies_to("crates/pv/src/module.rs"));
        assert!(applies_to("crates/pv/src/array.rs"));
        assert!(applies_to("crates/solarenv/src/weather.rs"));
        assert!(!applies_to("crates/pv/src/units.rs"));
        assert!(!applies_to("crates/solarenv/src/trace.rs"));
    }

    #[test]
    fn multiple_casts_on_one_line() {
        let v = findings("let p = (a as usize, b as i64);\n");
        assert_eq!(v.len(), 2);
    }
}
