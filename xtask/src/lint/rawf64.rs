//! Pass `raw-f64`: public APIs of the physics crates (`pv`, `powertrain`,
//! `solarcore`) must carry physical quantities as `pv::units` newtypes,
//! not raw `f64`.
//!
//! The pass is deliberately name-driven: a raw `f64` parameter or return
//! is only flagged when its identifier (or, for returns, the function
//! name) speaks the vocabulary of a unit that *has* a newtype — `voltage`,
//! `power`, `irradiance`, … Dimensionless quantities (ratios, fractions,
//! efficiencies, seeds) stay raw `f64` by design and are never flagged.

use super::Violation;
use crate::syntax::source::SourceFile;

/// Pass name used in waivers and reports.
pub const PASS: &str = "raw-f64";

/// Unit vocabulary: identifier token → the newtype that should carry it.
const VOCAB: &[(&str, &str)] = &[
    ("voltage", "pv::units::Volts"),
    ("volts", "pv::units::Volts"),
    ("current", "pv::units::Amps"),
    ("amps", "pv::units::Amps"),
    ("power", "pv::units::Watts"),
    ("watts", "pv::units::Watts"),
    ("joules", "pv::units::Joules"),
    ("wh", "pv::units::WattHours"),
    ("resistance", "pv::units::Ohms"),
    ("ohms", "pv::units::Ohms"),
    ("irradiance", "pv::units::Irradiance"),
    ("celsius", "pv::units::Celsius"),
    ("temperature", "pv::units::Celsius"),
    ("hertz", "pv::units::Hertz"),
];

/// Scope: the three crates whose public APIs carry physical quantities.
pub fn applies_to(path: &str) -> bool {
    path.starts_with("crates/pv/src/")
        || path.starts_with("crates/powertrain/src/")
        || path.starts_with("crates/solarcore/src/")
}

/// Returns the newtype suggested for an identifier, if any of its `_`
/// separated tokens is unit vocabulary.
fn suggested_newtype(ident: &str) -> Option<&'static str> {
    ident
        .split('_')
        .find_map(|tok| VOCAB.iter().find(|(w, _)| *w == tok).map(|(_, t)| *t))
}

/// Scans public function signatures for raw-`f64` physical quantities.
pub fn check(src: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut idx = 0;
    while idx < src.code.len() {
        let line_no = idx + 1;
        let line = &src.code[idx];
        let is_pub_fn = line.trim_start().starts_with("pub ")
            && line.contains(" fn ")
            && !src.is_test_line(line_no);
        if !is_pub_fn {
            idx += 1;
            continue;
        }

        // Join the signature until its body opens or the item ends.
        let mut sig = String::new();
        let mut end = idx;
        while end < src.code.len() {
            let l = &src.code[end];
            sig.push_str(l);
            sig.push(' ');
            if l.contains('{') || l.trim_end().ends_with(';') {
                break;
            }
            end += 1;
        }
        idx = end + 1;

        let Some(fn_name) = fn_name(&sig) else {
            continue;
        };
        for (param, newtype) in raw_f64_params(&sig) {
            out.push(Violation {
                pass: PASS,
                path: src.path.clone(),
                line: line_no,
                message: format!(
                    "public fn `{fn_name}` takes physical quantity `{param}` as raw \
                     `f64`; use {newtype} (or mark `// lint:allow(raw-f64)`)"
                ),
            });
        }
        if let Some(newtype) = return_violation(&sig, fn_name) {
            out.push(Violation {
                pass: PASS,
                path: src.path.clone(),
                line: line_no,
                message: format!(
                    "public fn `{fn_name}` returns a physical quantity as raw `f64`; \
                     use {newtype} (or mark `// lint:allow(raw-f64)`)"
                ),
            });
        }
    }
    out
}

fn fn_name(sig: &str) -> Option<&str> {
    let after = sig.split(" fn ").nth(1)?;
    let name_end = after.find(['(', '<', ' '])?;
    Some(&after[..name_end])
}

/// Extracts `(param_name, suggested_newtype)` pairs for raw-`f64` params.
fn raw_f64_params(sig: &str) -> Vec<(String, &'static str)> {
    let Some(open) = sig.find('(') else {
        return Vec::new();
    };
    // Find the matching close paren.
    let mut depth = 0i32;
    let mut close = None;
    for (i, c) in sig[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else {
        return Vec::new();
    };
    let params = &sig[open + 1..close];

    let mut out = Vec::new();
    for part in split_top_level(params) {
        let Some((name, ty)) = part.split_once(':') else {
            continue; // self / _ / pattern params
        };
        let name = name.trim().trim_start_matches("mut ").trim();
        if ty.trim() != "f64" {
            continue;
        }
        if let Some(newtype) = suggested_newtype(name) {
            out.push((name.to_owned(), newtype));
        }
    }
    out
}

/// Splits a parameter list at commas not nested in `()`, `<>`, `[]`.
fn split_top_level(params: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in params.chars() {
        match c {
            '(' | '<' | '[' => {
                depth += 1;
                cur.push(c);
            }
            ')' | '>' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// A raw-`f64` return is a violation when the fn name speaks units.
fn return_violation(sig: &str, fn_name: &str) -> Option<&'static str> {
    let ret = sig.split("->").nth(1)?;
    let ret = ret.split(['{', ';']).next()?.trim();
    if ret != "f64" {
        return None;
    }
    suggested_newtype(fn_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Violation> {
        check(&SourceFile::parse("crates/pv/src/x.rs", text))
    }

    #[test]
    fn flags_unit_named_f64_params() {
        let v = findings("pub fn set_voltage(&mut self, bus_voltage: f64) {}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("pv::units::Volts"));
    }

    #[test]
    fn dimensionless_params_pass() {
        let v = findings(
            "pub fn blend(&self, fraction: f64, efficiency: f64, seed: u64) -> f64 { 0.0 }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn newtype_params_pass() {
        let v = findings("pub fn set_voltage(&mut self, v: Volts) {}\n");
        assert!(v.is_empty());
    }

    #[test]
    fn flags_unit_named_f64_return() {
        let v = findings("pub fn panel_power(&self) -> f64 { 0.0 }\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("returns"));
    }

    #[test]
    fn multiline_signatures_are_joined() {
        let text = "pub fn solve(\n    &self,\n    load_current: f64,\n) -> Volts {\n";
        let v = findings(text);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn out_of_scope_paths_are_skipped_by_driver() {
        assert!(applies_to("crates/pv/src/module.rs"));
        assert!(applies_to("crates/solarcore/src/engine.rs"));
        assert!(!applies_to("crates/archsim/src/chip.rs"));
        assert!(!applies_to("crates/bench/src/grid.rs"));
    }
}
