//! Learns the workspace's physical-unit vocabulary and dimensional algebra
//! from `crates/pv/src/units.rs` — no hardcoded unit list, so adding a new
//! quantity or operator impl there automatically teaches the analyzer.
//!
//! Two sources of truth are read:
//!
//! * `quantity!( … Name, "unit" )` invocations declare the newtypes and
//!   imply the macro-generated rules (`U + U = U`, `U * f64 = U`,
//!   `U / U = f64`, …);
//! * explicit `impl Mul<Rhs> for Lhs { type Output = Out; … }` (and `Div`)
//!   blocks declare the cross-unit products (`Volts * Amps = Watts`, …).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::syntax::source::SourceFile;

use crate::syntax::lexer::{self, Token};

/// The scalar pseudo-unit: plain `f64`.
pub const SCALAR: &str = "f64";

/// The learned dimensional system.
#[derive(Debug, Default)]
pub struct UnitAlgebra {
    /// Declared quantity newtypes (`Volts`, `Watts`, …).
    units: BTreeSet<String>,
    /// `(lhs, op, rhs) → output` for `*` and `/`; `+`/`-` are implicit
    /// (same-unit only).
    products: BTreeMap<(String, char, String), String>,
}

impl UnitAlgebra {
    /// Learns the algebra from the workspace's unit-definition file.
    pub fn learn(root: &Path) -> Result<Self, String> {
        let path = root.join("crates/pv/src/units.rs");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let src = SourceFile::parse("crates/pv/src/units.rs", &text);
        Ok(Self::from_source(&src))
    }

    /// Learns the algebra from an already-parsed source file.
    pub fn from_source(src: &SourceFile) -> Self {
        let tokens = lexer::lex(src);
        let mut algebra = UnitAlgebra::default();
        algebra.learn_quantities(&tokens);
        algebra.learn_impls(&tokens);
        algebra.seed_macro_rules();
        algebra
    }

    /// `true` if `name` is a declared quantity newtype.
    pub fn is_unit(&self, name: &str) -> bool {
        self.units.contains(name)
    }

    /// Number of declared quantity newtypes.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The result dimension of `lhs op rhs`, if the combination is declared.
    /// `op` is one of `+ - * /`. Returns `None` for undeclared dimensions.
    pub fn combine(&self, lhs: &str, op: char, rhs: &str) -> Option<&str> {
        match op {
            '+' | '-' => {
                if lhs != rhs {
                    None
                } else if lhs == SCALAR {
                    Some(SCALAR)
                } else {
                    self.units.get(lhs).map(String::as_str)
                }
            }
            '*' | '/' => self
                .products
                .get(&(lhs.to_owned(), op, rhs.to_owned()))
                .map(String::as_str),
            _ => None,
        }
    }

    /// Every `quantity!( … Name, … )` invocation: the declared name is the
    /// first uppercase-initial identifier inside the invocation (doc
    /// comments and the unit string are masked away).
    fn learn_quantities(&mut self, tokens: &[Token]) {
        let mut i = 0;
        while i + 2 < tokens.len() {
            if tokens[i].is_ident("quantity") && tokens[i + 1].is_op("!") {
                if let Some(close) = lexer::matching_close(tokens, i + 2) {
                    if let Some(name) = tokens[i + 3..close].iter().find_map(|t| {
                        t.ident()
                            .filter(|s| s.starts_with(char::is_uppercase))
                            .map(str::to_owned)
                    }) {
                        self.units.insert(name);
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Explicit `impl Mul<Rhs> for Lhs { type Output = Out; … }` blocks.
    fn learn_impls(&mut self, tokens: &[Token]) {
        let mut i = 0;
        while i < tokens.len() {
            if !tokens[i].is_ident("impl") {
                i += 1;
                continue;
            }
            // impl <Trait> '<' Rhs '>' for Lhs '{'
            let Some(trait_tok) = tokens.get(i + 1) else {
                break;
            };
            let op = match trait_tok.ident() {
                Some("Mul") => '*',
                Some("Div") => '/',
                _ => {
                    i += 1;
                    continue;
                }
            };
            if !tokens.get(i + 2).is_some_and(|t| t.is_op("<")) {
                i += 1;
                continue;
            }
            let rhs = tokens.get(i + 3).and_then(Token::ident).map(str::to_owned);
            let lhs = tokens
                .iter()
                .skip(i + 4)
                .take(4)
                .skip_while(|t| !t.is_ident("for"))
                .nth(1)
                .and_then(Token::ident)
                .map(str::to_owned);
            // type Output = Out ;
            let out = tokens[i..]
                .windows(4)
                .take(24)
                .find(|w| w[0].is_ident("type") && w[1].is_ident("Output") && w[2].is_op("="))
                .and_then(|w| w[3].ident())
                .map(str::to_owned);
            if let (Some(rhs), Some(lhs), Some(out)) = (rhs, lhs, out) {
                self.products.insert((lhs, op, rhs), out);
            }
            i += 1;
        }
    }

    /// The rules every `quantity!` expansion provides for each unit `U`:
    /// `U * f64 = U`, `f64 * U = U`, `U / f64 = U`, `U / U = f64`.
    fn seed_macro_rules(&mut self) {
        for u in &self.units {
            let entries = [
                ((u.clone(), '*', SCALAR.to_owned()), u.clone()),
                ((SCALAR.to_owned(), '*', u.clone()), u.clone()),
                ((u.clone(), '/', SCALAR.to_owned()), u.clone()),
                ((u.clone(), '/', u.clone()), SCALAR.to_owned()),
            ];
            for (k, v) in entries {
                self.products.entry(k).or_insert(v);
            }
        }
        // Scalars combine freely.
        self.products
            .entry((SCALAR.to_owned(), '*', SCALAR.to_owned()))
            .or_insert_with(|| SCALAR.to_owned());
        self.products
            .entry((SCALAR.to_owned(), '/', SCALAR.to_owned()))
            .or_insert_with(|| SCALAR.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_UNITS: &str = r#"
quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Current.
    Amps,
    "A"
);
quantity!(
    /// Power.
    Watts,
    "W"
);

impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}
"#;

    fn mini() -> UnitAlgebra {
        UnitAlgebra::from_source(&SourceFile::parse("crates/pv/src/units.rs", MINI_UNITS))
    }

    #[test]
    fn quantities_are_learned_from_macro_invocations() {
        let a = mini();
        assert!(a.is_unit("Volts"));
        assert!(a.is_unit("Amps"));
        assert!(a.is_unit("Watts"));
        assert!(!a.is_unit("Ohms"));
        assert_eq!(a.unit_count(), 3);
    }

    #[test]
    fn cross_unit_products_come_from_impls() {
        let a = mini();
        assert_eq!(a.combine("Volts", '*', "Amps"), Some("Watts"));
        assert_eq!(a.combine("Watts", '/', "Volts"), Some("Amps"));
        // Not declared: Amps * Volts (the real file declares both ways).
        assert_eq!(a.combine("Amps", '*', "Volts"), None);
        assert_eq!(a.combine("Watts", '*', "Watts"), None);
    }

    #[test]
    fn macro_rules_are_implied() {
        let a = mini();
        assert_eq!(a.combine("Watts", '*', SCALAR), Some("Watts"));
        assert_eq!(a.combine(SCALAR, '*', "Watts"), Some("Watts"));
        assert_eq!(a.combine("Watts", '/', "Watts"), Some(SCALAR));
        assert_eq!(a.combine("Watts", '+', "Watts"), Some("Watts"));
        assert_eq!(a.combine("Watts", '+', "Volts"), None);
        assert_eq!(a.combine("Watts", '-', "Amps"), None);
    }

    #[test]
    fn real_units_file_learns_the_full_algebra() {
        // Walk up from the xtask manifest to the workspace root.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .to_path_buf();
        let a = UnitAlgebra::learn(&root).unwrap();
        assert!(a.unit_count() >= 10, "learned {} units", a.unit_count());
        assert_eq!(a.combine("Volts", '*', "Amps"), Some("Watts"));
        assert_eq!(a.combine("Amps", '*', "Volts"), Some("Watts"));
        assert_eq!(a.combine("Watts", '*', "Seconds"), Some("Joules"));
        assert_eq!(a.combine("Joules", '/', "Seconds"), Some("Watts"));
        assert_eq!(a.combine("Volts", '/', "Amps"), Some("Ohms"));
        assert_eq!(a.combine("Watts", '*', "Volts"), None);
    }
}
