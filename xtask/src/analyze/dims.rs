//! Pass `dim`: shadow dimensional analysis over the workspace sources.
//!
//! The `pv::units` newtypes make unit errors compile errors — until a value
//! is laundered to raw `f64`. This pass keeps tracking dimensions *after*
//! the launder: a binding initialized from `voltage.get()` still carries
//! the `Volts` dimension here, so `v + p` (volts plus watts, both `f64` to
//! the compiler) is flagged, and so is a product whose dimension the
//! algebra in `crates/pv/src/units.rs` does not declare.
//!
//! Three findings:
//!
//! * **cross-unit `+`/`-`** — operands of different tracked dimensions;
//! * **undeclared dimension** — `*`/`/` of tracked dimensions with no
//!   declared output (e.g. `Watts * Watts`);
//! * **unit laundering** — raw `.0` tuple-field extraction of a unit value
//!   feeding arithmetic (`.get()` is the sanctioned accessor and stays
//!   dimension-tracked; `.0` bypasses the API).
//!
//! The pass is deliberately conservative: it only reasons about operands it
//! can resolve (locals annotated or initialized with a known quantity, and
//! `.get()` chains off them); a name observed with conflicting dimensions
//! anywhere in a file is dropped from tracking entirely.

use std::collections::BTreeMap;

use crate::lint::Violation;
use crate::syntax::source::SourceFile;

use super::units::{UnitAlgebra, SCALAR};
use crate::syntax::lexer::{self, Tok, Token};

/// Pass name used in waivers and reports.
pub const PASS: &str = "dim";

/// Scope: every crate source except the unit-definition file itself (whose
/// macro bodies legitimately touch `.0`).
pub fn applies_to(path: &str) -> bool {
    path.starts_with("crates/") && path != "crates/pv/src/units.rs"
}

/// A name's tracked dimension within one file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dim {
    /// Single consistent dimension observed.
    Known(String),
    /// Conflicting observations — drop from tracking.
    Conflicted,
}

/// Scans one file against the learned unit algebra.
pub fn check(src: &SourceFile, algebra: &UnitAlgebra) -> Vec<Violation> {
    let tokens = lexer::lex(src);
    let table = build_table(&tokens, algebra);
    let mut out = Vec::new();

    let resolve = |name: &str| -> Option<String> {
        match table.get(name) {
            Some(Dim::Known(u)) => Some(u.clone()),
            _ => None,
        }
    };

    for (i, tok) in tokens.iter().enumerate() {
        if src.is_test_line(tok.line) {
            continue;
        }

        // Unit laundering: `<ident>.0` on a unit-typed name, adjacent to an
        // arithmetic operator on either side.
        if tok.is_op(".")
            && matches!(&tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Num(n)) if n == "0")
        {
            if let Some(name) = tokens.get(i.wrapping_sub(1)).and_then(Token::ident) {
                if let Some(unit) = resolve(name) {
                    let before = i.checked_sub(2).and_then(|k| tokens.get(k));
                    let after = tokens.get(i + 2);
                    if before.is_some_and(is_arith_op) || after.is_some_and(is_arith_op) {
                        out.push(Violation {
                            pass: PASS,
                            path: src.path.clone(),
                            line: tok.line,
                            message: format!(
                                "`{name}.0` launders a `{unit}` into raw arithmetic; keep the \
                                 newtype or use `.get()` at the boundary \
                                 (or mark `// lint:allow(dim): <reason>`)"
                            ),
                        });
                    }
                }
            }
        }

        // Binary arithmetic between two resolvable atoms.
        let Some(op) = arith_op_char(tok) else {
            continue;
        };
        if !is_binary_position(&tokens, i) {
            continue;
        }
        let Some((lhs, lname)) = left_operand(&tokens, i, &resolve, algebra) else {
            continue;
        };
        let Some((rhs, rname)) = right_operand(&tokens, i, op, &resolve, algebra) else {
            continue;
        };
        if lhs == SCALAR && rhs == SCALAR {
            continue;
        }
        let combined = algebra.combine(&lhs, op, &rhs);
        let ok = match tok.tok {
            // Compound assignment must preserve the left dimension.
            Tok::Op("+=" | "-=" | "*=" | "/=") => combined == Some(lhs.as_str()),
            _ => combined.is_some(),
        };
        if !ok {
            let what = if matches!(op, '+' | '-') {
                "cross-unit addition/subtraction"
            } else {
                "product with no declared dimension"
            };
            out.push(Violation {
                pass: PASS,
                path: src.path.clone(),
                line: tok.line,
                message: format!(
                    "{what}: `{lname}` is {lhs}, `{rname}` is {rhs} — `{lhs} {op} {rhs}` is not \
                     declared in pv::units (or mark `// lint:allow(dim): <reason>`)"
                ),
            });
        }
    }
    out
}

/// `true` for tokens that continue arithmetic around a laundered `.0`.
fn is_arith_op(t: &Token) -> bool {
    matches!(
        t.tok,
        Tok::Op("+" | "-" | "*" | "/" | "%" | "+=" | "-=" | "*=" | "/=")
    )
}

/// Maps an operator token to its algebra character.
fn arith_op_char(t: &Token) -> Option<char> {
    match t.tok {
        Tok::Op("+" | "+=") => Some('+'),
        Tok::Op("-" | "-=") => Some('-'),
        Tok::Op("*" | "*=") => Some('*'),
        Tok::Op("/" | "/=") => Some('/'),
        _ => None,
    }
}

/// `true` if the operator at `i` is binary: the previous token must end an
/// operand (otherwise `-x` is negation, `*x` a deref, `&x` a borrow).
fn is_binary_position(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|k| tokens.get(k)) else {
        return false;
    };
    matches!(&prev.tok, Tok::Ident(_) | Tok::Num(_) | Tok::Op(")" | "]"))
}

/// Resolves the full left operand of the operator at `i`, folding the
/// leftward multiplicative chain so precedence is honoured: for the `+` in
/// `a * b + c` the left operand is `(a * b)`, not `b`. Bails (`None`) if
/// any chain element is unresolvable; a chain whose product is undeclared
/// also bails — the offending `*`/`/` is reported at its own position.
fn left_operand(
    tokens: &[Token],
    i: usize,
    resolve: &dyn Fn(&str) -> Option<String>,
    algebra: &UnitAlgebra,
) -> Option<(String, String)> {
    let (dim0, name0, start0) = left_atom(tokens, i, resolve, algebra)?;
    // Collect rightmost-first: atoms[k] sits right of ops[k].
    let mut atoms = vec![dim0];
    let mut ops = Vec::new();
    let mut start = start0;
    while let Some(k) = start.checked_sub(1) {
        let c = match &tokens[k].tok {
            Tok::Op("*") => '*',
            Tok::Op("/") => '/',
            _ => break,
        };
        let (d, _, s) = left_atom(tokens, k, resolve, algebra)?;
        atoms.push(d);
        ops.push(c);
        start = s;
    }
    let folded = atoms.len() > 1;
    // Fold left-associatively from the leftmost atom.
    let mut dim = atoms.pop()?;
    while let (Some(c), Some(d)) = (ops.pop(), atoms.pop()) {
        dim = algebra.combine(&dim, c, &d)?.to_owned();
    }
    let display = if folded {
        format!("…*{name0}")
    } else {
        name0
    };
    Some((dim, display))
}

/// Resolves the full right operand of the operator at `i`. For `+`/`-` the
/// forward multiplicative chain is folded (`c + a * b` adds `(a * b)`);
/// for `*`/`/` the operand is the single next atom (left associativity
/// makes the continuation the next operator's problem).
fn right_operand(
    tokens: &[Token],
    i: usize,
    op: char,
    resolve: &dyn Fn(&str) -> Option<String>,
    algebra: &UnitAlgebra,
) -> Option<(String, String)> {
    let (mut dim, name0, mut end) = right_atom(tokens, i, resolve, algebra)?;
    let mut folded = false;
    if matches!(op, '+' | '-') {
        while let Some(t) = tokens.get(end + 1) {
            let c = match &t.tok {
                Tok::Op("*") => '*',
                Tok::Op("/") => '/',
                _ => break,
            };
            let (d, _, e) = right_atom(tokens, end + 1, resolve, algebra)?;
            dim = algebra.combine(&dim, c, &d)?.to_owned();
            end = e;
            folded = true;
        }
    }
    let display = if folded {
        format!("{name0}*…")
    } else {
        name0
    };
    Some((dim, display))
}

/// Resolves the operand ending at `i - 1`.
/// Returns `(dimension, display, start index)`.
fn left_atom(
    tokens: &[Token],
    i: usize,
    resolve: &dyn Fn(&str) -> Option<String>,
    algebra: &UnitAlgebra,
) -> Option<(String, String, usize)> {
    let last = i.checked_sub(1)?;
    match &tokens[last].tok {
        Tok::Num(n) => Some((SCALAR.to_owned(), n.clone(), last)),
        Tok::Ident(name) => {
            // Skip field accesses (`x.y`) and path tails (`A::y`).
            if last >= 1 && matches!(tokens[last - 1].tok, Tok::Op("." | "::")) {
                return None;
            }
            resolve(name).map(|u| (u, name.clone(), last))
        }
        Tok::Op(")") => {
            // `….get()` off a resolvable name, or `U::new(…)` / a parenthesized
            // expression we do not attempt to type.
            let open = matching_open(tokens, last)?;
            // x.get() — tokens: [Ident x][.][get][(][)]
            if open >= 3 && tokens[open - 1].is_ident("get") && tokens[open - 2].is_op(".") {
                if let Some(name) = tokens[open - 3].ident() {
                    if open >= 4 && matches!(tokens[open - 4].tok, Tok::Op("." | "::")) {
                        return None;
                    }
                    return resolve(name).map(|u| (u, format!("{name}.get()"), open - 3));
                }
                return None;
            }
            // U::new(…) / U::from_*(…)
            if open >= 3 && tokens[open - 2].is_op("::") {
                if let (Some(unit), Some(_ctor)) =
                    (tokens[open - 3].ident(), tokens[open - 1].ident())
                {
                    if algebra.is_unit(unit) {
                        return Some((unit.to_owned(), format!("{unit}::…"), open - 3));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

/// Resolves the operand starting at `i + 1`.
/// Returns `(dimension, display, end index)`.
fn right_atom(
    tokens: &[Token],
    i: usize,
    resolve: &dyn Fn(&str) -> Option<String>,
    algebra: &UnitAlgebra,
) -> Option<(String, String, usize)> {
    let first = tokens.get(i + 1)?;
    match &first.tok {
        Tok::Num(n) => {
            // A bare literal is scalar unless it is a method-call receiver.
            if tokens.get(i + 2).is_some_and(|t| t.is_op(".")) {
                return None;
            }
            Some((SCALAR.to_owned(), n.clone(), i + 1))
        }
        Tok::Ident(name) => {
            match tokens.get(i + 2).map(|t| &t.tok) {
                // `name(` is a call, `name::` a path — except `U::new(…)`.
                Some(Tok::Op("(")) => None,
                Some(Tok::Op("::")) => {
                    let ctor = tokens.get(i + 3)?.ident()?;
                    if algebra.is_unit(name) {
                        if ctor == "ZERO" {
                            return Some((name.clone(), format!("{name}::{ctor}"), i + 3));
                        }
                        if tokens.get(i + 4)?.is_op("(") {
                            let close = lexer::matching_close(tokens, i + 4)?;
                            return Some((name.clone(), format!("{name}::{ctor}"), close));
                        }
                    }
                    None
                }
                // `name.get()` stays the name's dimension; any other method
                // or field access is unresolved.
                Some(Tok::Op(".")) => {
                    if tokens.get(i + 3).is_some_and(|t| t.is_ident("get"))
                        && tokens.get(i + 4).is_some_and(|t| t.is_op("("))
                        && tokens.get(i + 5).is_some_and(|t| t.is_op(")"))
                    {
                        resolve(name).map(|u| (u, format!("{name}.get()"), i + 5))
                    } else {
                        None
                    }
                }
                _ => resolve(name).map(|u| (u, name.clone(), i + 1)),
            }
        }
        _ => None,
    }
}

/// Finds the opening bracket matching the closer at `close`.
fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=close).rev() {
        match tokens[k].tok {
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth += 1,
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Builds the per-file dimension table from annotations and initializers.
fn build_table(tokens: &[Token], algebra: &UnitAlgebra) -> BTreeMap<String, Dim> {
    let mut table: BTreeMap<String, Dim> = BTreeMap::new();
    let mut observe = |name: &str, unit: Option<&str>| match (table.get(name), unit) {
        (None, Some(u)) => {
            table.insert(name.to_owned(), Dim::Known(u.to_owned()));
        }
        (Some(Dim::Known(prev)), Some(u)) if prev == u => {}
        (Some(_), _) => {
            table.insert(name.to_owned(), Dim::Conflicted);
        }
        (None, None) => {}
    };

    // Annotations: `name : [&][mut] [path::]Type` — params, lets, struct
    // fields alike. A non-unit annotation conflicts the name out.
    for i in 0..tokens.len() {
        if !tokens[i].is_op(":") {
            continue;
        }
        let Some(name) = i
            .checked_sub(1)
            .and_then(|k| tokens.get(k))
            .and_then(Token::ident)
        else {
            continue;
        };
        // Only lowercase binding-style names; type names / enum variants in
        // struct patterns are not bindings.
        if !name.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
            continue;
        }
        let mut k = i + 1;
        while tokens
            .get(k)
            .is_some_and(|t| t.is_op("&") || t.is_ident("mut") || matches!(t.tok, Tok::Lifetime(_)))
        {
            k += 1;
        }
        // Walk a path `a::b::C`, keeping the final segment.
        let mut last_ident: Option<&str> = None;
        while let Some(t) = tokens.get(k) {
            match &t.tok {
                Tok::Ident(s) => {
                    last_ident = Some(s);
                    k += 1;
                }
                Tok::Op("::") => k += 1,
                _ => break,
            }
        }
        match last_ident {
            Some(ty) if algebra.is_unit(ty) => observe(name, Some(ty)),
            Some(_) => observe(name, None),
            // `:` followed by punctuation (struct literal value, etc.):
            // no type information either way.
            None => {}
        }
    }

    // Initializers: `let [mut] name = <expr>` where the expression's
    // dimension is derivable (`U::new(…)`, `U::ZERO`, `x.get()`, or a
    // single binary op between two already-resolved atoms).
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name) = tokens.get(k).and_then(Token::ident) else {
            continue;
        };
        // Skip annotated lets (handled above) and pattern lets.
        if !tokens.get(k + 1).is_some_and(|t| t.is_op("=")) {
            continue;
        }
        let resolve = |n: &str| -> Option<String> {
            match table.get(n) {
                Some(Dim::Known(u)) => Some(u.clone()),
                _ => None,
            }
        };
        if let Some(dim) = initializer_dim(&tokens[k + 2..], &resolve, algebra) {
            match (table.get(name), &dim) {
                (None, d) => {
                    table.insert(name.to_owned(), Dim::Known(d.clone()));
                }
                (Some(Dim::Known(prev)), d) if prev == d => {}
                _ => {
                    table.insert(name.to_owned(), Dim::Conflicted);
                }
            }
        }
    }
    table
}

/// Derives the dimension of a `let` initializer when it is one of the
/// simple shapes the pass understands. `rest` starts after the `=`.
fn initializer_dim(
    rest: &[Token],
    resolve: &dyn Fn(&str) -> Option<String>,
    algebra: &UnitAlgebra,
) -> Option<String> {
    let first = rest.first()?;
    let name = first.ident()?;
    // `U::new(…)` / `U::ZERO`
    if algebra.is_unit(name) && rest.get(1).is_some_and(|t| t.is_op("::")) {
        let ctor = rest.get(2)?.ident()?;
        if ctor == "ZERO" || ctor == "new" || ctor.starts_with("from_") {
            return Some(name.to_owned());
        }
        return None;
    }
    // `x.get()` — laundered but tracked.
    if rest.get(1).is_some_and(|t| t.is_op("."))
        && rest.get(2).is_some_and(|t| t.is_ident("get"))
        && rest.get(3).is_some_and(|t| t.is_op("("))
        && rest.get(4).is_some_and(|t| t.is_op(")"))
    {
        let after = rest.get(5)?;
        // Only a terminated statement or a single following binary op.
        if after.is_op(";") {
            return resolve(name);
        }
        if let Some(op) = arith_op_char(after) {
            let lhs = resolve(name)?;
            let (rhs, _, _) = right_atom(rest, 5, resolve, algebra)?;
            return algebra.combine(&lhs, op, &rhs).map(str::to_owned);
        }
        return None;
    }
    // `a <op> b ;` between two resolved atoms.
    if let Some(op_tok) = rest.get(1) {
        if let Some(op) = arith_op_char(op_tok) {
            let lhs = resolve(name)?;
            let (rhs, _, _) = right_atom(rest, 1, resolve, algebra)?;
            if rest.get(3).is_some_and(|t| t.is_op(";"))
                || (rest.get(3).is_some_and(|t| t.is_op("."))
                    && rest.get(4).is_some_and(|t| t.is_ident("get")))
            {
                return algebra.combine(&lhs, op, &rhs).map(str::to_owned);
            }
            return None;
        }
        if op_tok.is_op(";") {
            // Alias: `let y = x;`
            return resolve(name);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn algebra() -> UnitAlgebra {
        let src = SourceFile::parse(
            "crates/pv/src/units.rs",
            r#"
quantity!(Volts, "V");
quantity!(Amps, "A");
quantity!(Watts, "W");
impl Mul<Amps> for Volts { type Output = Watts; }
impl Mul<Volts> for Amps { type Output = Watts; }
impl Div<Volts> for Watts { type Output = Amps; }
"#,
        );
        UnitAlgebra::from_source(&src)
    }

    fn findings(text: &str) -> Vec<Violation> {
        check(&SourceFile::parse("crates/x/src/lib.rs", text), &algebra())
    }

    #[test]
    fn cross_unit_add_on_newtypes_is_flagged() {
        let v =
            findings("fn f(voltage: Volts, power: Watts) {\n    let _x = voltage + power;\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("cross-unit"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn laundered_dimensions_are_still_tracked() {
        let text = "fn f(voltage: Volts, power: Watts) {\n    let v = voltage.get();\n    let p = power.get();\n    let _bad = v + p;\n}\n";
        let v = findings(text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Volts"));
        assert!(v[0].message.contains("Watts"));
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn declared_products_pass() {
        let text = "fn f(voltage: Volts, current: Amps) {\n    let _p = voltage.get() * current.get();\n    let _q = Volts::new(1.0) * Amps::new(2.0);\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn undeclared_product_is_flagged() {
        let text = "fn f(voltage: Volts) {\n    let v = voltage.get();\n    let _sq = v * v;\n}\n";
        let v = findings(text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no declared dimension"));
    }

    #[test]
    fn scalar_multiplication_passes() {
        let text = "fn f(power: Watts) {\n    let _h = power * 0.5;\n    let p = power.get();\n    let _x = p / 60.0;\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn dot_zero_laundering_is_flagged() {
        let text = "fn f(power: Watts) {\n    let _x = power.0 * 2.0;\n}\n";
        let v = findings(text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("launders"));
    }

    #[test]
    fn dot_zero_on_untracked_names_passes() {
        // CoreId-style tuple structs must not trip the launder rule.
        let text = "fn f(id: CoreId) {\n    let _x = id.0 + 1;\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn conflicting_observations_drop_tracking() {
        let text = "fn f(x: Volts) {}\nfn g(x: Watts) {\n    let _y = x + x;\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t(voltage: Volts, power: Watts) { let _ = voltage + power; }\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn unary_minus_is_not_binary() {
        let text = "fn f(power: Watts) -> Watts {\n    -power\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn compound_assign_must_preserve_dimension() {
        let text = "fn f(power: Watts, voltage: Volts) {\n    let mut p = power.get();\n    p += voltage.get();\n}\n";
        let v = findings(text);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn scope_excludes_units_rs() {
        assert!(applies_to("crates/pv/src/cell.rs"));
        assert!(applies_to("crates/solarcore/src/engine.rs"));
        assert!(!applies_to("crates/pv/src/units.rs"));
        assert!(!applies_to("xtask/src/main.rs"));
    }
}
