//! Pass `exhaustive`: state-machine enums must be matched exhaustively,
//! and every declared state must be reachable.
//!
//! The controller/policy enums (`solarcore::controller`,
//! `solarcore::policy`, `archsim::dvfs`) encode the paper's state machines
//! — Table 6 policies, the MPPT perturb/observe phases, DVFS level
//! transitions. A wildcard `_` (or a catch-all binder) arm on one of these
//! silently absorbs any state added later: the compiler stops pointing at
//! every `match` that must be taught about the new state, which is exactly
//! how a new policy ends up simulated with another policy's transition
//! rule. Two finding kinds:
//!
//! * **wildcard arms** — `_ =>` or `name =>` catch-alls in any `match`
//!   whose arms mention a scoped enum; spell out the variants (`A | B =>`
//!   keeps the arm shared *and* exhaustive);
//! * **dead variants** — variants of a scoped enum never referenced by
//!   path (`Enum::Variant`) anywhere outside their declaration: states the
//!   simulation can never enter.

use std::path::Path;

use crate::lint::Violation;
use crate::syntax::source::SourceFile;

use crate::syntax::lexer::{self, Tok, Token};

/// Pass name used in waivers and reports.
pub const PASS: &str = "exhaustive";

/// The modules whose enums are treated as state machines.
const SCOPED_FILES: &[&str] = &[
    "crates/solarcore/src/controller.rs",
    "crates/solarcore/src/policy.rs",
    "crates/archsim/src/dvfs.rs",
];

/// Scope: matches anywhere in crate code can dispatch on a scoped enum.
pub fn applies_to(path: &str) -> bool {
    path.starts_with("crates/")
}

/// One learned state-machine enum.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name (`Policy`).
    pub name: String,
    /// Declaring file, workspace-relative.
    pub path: String,
    /// `(variant name, declaration line)`.
    pub variants: Vec<(String, usize)>,
}

/// The learned set of scoped enums.
#[derive(Debug, Default)]
pub struct Enums {
    /// All enums found in the scoped files.
    pub defs: Vec<EnumDef>,
}

impl Enums {
    /// Learns enum definitions from the scoped state-machine modules.
    /// Missing files are skipped (a module may not exist yet).
    pub fn learn(root: &Path) -> Result<Self, String> {
        let mut defs = Vec::new();
        for rel in SCOPED_FILES {
            let path = root.join(rel);
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
            };
            let src = SourceFile::parse(rel, &text);
            defs.extend(enums_in(&src));
        }
        Ok(Self { defs })
    }

    /// `true` if `name` is a scoped state-machine enum.
    pub fn is_scoped(&self, name: &str) -> bool {
        self.defs.iter().any(|d| d.name == name)
    }
}

/// Extracts every `enum Name { Variant, … }` item from one file.
pub fn enums_in(src: &SourceFile) -> Vec<EnumDef> {
    let tokens = lexer::lex(src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("enum") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        // Skip generics, find the body brace.
        let Some(open) = tokens[i..].iter().position(|t| t.is_op("{")).map(|k| i + k) else {
            break;
        };
        let Some(close) = lexer::matching_close(&tokens, open) else {
            break;
        };
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut expect_variant = true;
        for t in &tokens[open + 1..close] {
            match &t.tok {
                Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                Tok::Op(",") if depth == 0 => expect_variant = true,
                // `#[...]` attributes between variants keep expectation.
                Tok::Op("#") | Tok::Op("=") => {}
                Tok::Ident(v) if depth == 0 && expect_variant => {
                    if v.starts_with(char::is_uppercase) {
                        variants.push((v.clone(), t.line));
                    }
                    expect_variant = false;
                }
                _ => {}
            }
        }
        if !variants.is_empty() {
            out.push(EnumDef {
                name: name.to_owned(),
                path: src.path.clone(),
                variants,
            });
        }
        i = close + 1;
    }
    out
}

/// Flags wildcard/catch-all arms in matches that dispatch on a scoped enum.
pub fn check(src: &SourceFile, enums: &Enums) -> Vec<Violation> {
    let tokens = lexer::lex(src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("match") {
            i += 1;
            continue;
        }
        // The match body is the first `{` after the scrutinee at bracket
        // depth 0 (struct literals cannot appear bare in a scrutinee).
        let mut depth = 0i32;
        let mut open = None;
        for (k, t) in tokens.iter().enumerate().skip(i + 1) {
            match &t.tok {
                Tok::Op("(") | Tok::Op("[") => depth += 1,
                Tok::Op(")") | Tok::Op("]") => depth -= 1,
                Tok::Op("{") if depth == 0 => {
                    open = Some(k);
                    break;
                }
                Tok::Op("{") => depth += 1,
                Tok::Op("}") => depth -= 1,
                _ => {}
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let Some(close) = lexer::matching_close(&tokens, open) else {
            i += 1;
            continue;
        };
        let body = &tokens[open + 1..close];
        let patterns = arm_patterns(body);
        // The match dispatches on a scoped enum iff some arm *pattern*
        // mentions `Enum::Variant` (arm values constructing the enum do
        // not count — `match s { "ic" => Policy::MpptIc, _ => … }` is a
        // match over a string, not the enum).
        let dispatched = patterns.iter().find_map(|&(s, e)| {
            body[s..e].iter().enumerate().find_map(|(k, t)| {
                t.ident()
                    .filter(|n| enums.is_scoped(n))
                    .filter(|_| body[s..e].get(k + 1).is_some_and(|t| t.is_op("::")))
                    .map(str::to_owned)
            })
        });
        if let Some(enum_name) = dispatched {
            for &(s, e) in &patterns {
                flag_catchall(src, &body[s..e], &enum_name, &mut out);
            }
        }
        // Nested matches inside arm bodies get their own visit.
        i += 1;
    }
    out
}

/// Splits a match body into arm pattern spans: `(start, arrow)` token
/// ranges, exclusive of the `=>`.
fn arm_patterns(body: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut in_value = false;
    for (k, t) in body.iter().enumerate() {
        match &t.tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") => depth -= 1,
            Tok::Op("}") => {
                depth -= 1;
                // A block arm value closing back to arm depth ends the arm
                // even without a trailing comma.
                if depth == 0 && in_value {
                    in_value = false;
                    start = k + 1;
                }
            }
            Tok::Op(",") if depth == 0 => {
                if in_value {
                    in_value = false;
                }
                start = k + 1;
            }
            Tok::Op("=>") if depth == 0 && !in_value => {
                out.push((start, k));
                in_value = true;
            }
            _ => {}
        }
    }
    out
}

/// Flags one arm pattern if it is a bare `_` or a single-binder catch-all.
fn flag_catchall(src: &SourceFile, pattern: &[Token], enum_name: &str, out: &mut Vec<Violation>) {
    let [only] = pattern else { return };
    if only.is_op("_") {
        out.push(Violation {
            pass: PASS,
            path: src.path.clone(),
            line: only.line,
            message: format!(
                "wildcard `_` arm on state-machine enum `{enum_name}`: list the \
                 variants (`A | B =>`) so new states fail to compile here \
                 (or mark `// lint:allow(exhaustive): <reason>`)"
            ),
        });
    } else if let Some(name) = only.ident() {
        if name.starts_with(char::is_lowercase) && !is_keyword_pattern(name) {
            out.push(Violation {
                pass: PASS,
                path: src.path.clone(),
                line: only.line,
                message: format!(
                    "catch-all binder `{name} =>` on state-machine enum \
                     `{enum_name}`: list the variants so new states fail to \
                     compile here (or mark `// lint:allow(exhaustive): <reason>`)"
                ),
            });
        }
    }
}

/// Pattern words that look like binders but are not catch-alls.
fn is_keyword_pattern(name: &str) -> bool {
    matches!(name, "true" | "false")
}

/// Records which `Enum::Variant` paths `src` mentions (for dead-variant
/// accounting); declaration lines inside the declaring file are excluded
/// by the caller comparing paths.
pub fn mentions(src: &SourceFile, enums: &Enums) -> Vec<(String, String)> {
    let tokens = lexer::lex(src);
    let mut out = Vec::new();
    for k in 0..tokens.len().saturating_sub(2) {
        let Some(name) = tokens[k].ident() else {
            continue;
        };
        if !enums.is_scoped(name) || !tokens[k + 1].is_op("::") {
            continue;
        }
        if let Some(variant) = tokens[k + 2].ident() {
            if variant.starts_with(char::is_uppercase) {
                out.push((name.to_owned(), variant.to_owned()));
            }
        }
    }
    out
}

/// Emits a violation for every variant never mentioned outside its
/// declaring file. `mentioned` is the union of [`mentions`] over every
/// file except each enum's own declaration file.
pub fn dead_variants(enums: &Enums, mentioned: &[(String, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for def in &enums.defs {
        for (variant, line) in &def.variants {
            let used = mentioned
                .iter()
                .any(|(e, v)| e == &def.name && v == variant);
            if !used {
                out.push(Violation {
                    pass: PASS,
                    path: def.path.clone(),
                    line: *line,
                    message: format!(
                        "dead state: `{}::{variant}` is never referenced outside its \
                         declaration — the simulation can never enter it \
                         (or mark `// lint:allow(exhaustive): <reason>`)",
                        def.name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scoped() -> Enums {
        let src = SourceFile::parse(
            "crates/solarcore/src/policy.rs",
            "pub enum Policy {\n    FixedPower(Watts),\n    MpptIc,\n    MpptRr,\n}\n",
        );
        Enums {
            defs: enums_in(&src),
        }
    }

    #[test]
    fn enum_variants_are_learned() {
        let e = scoped();
        assert_eq!(e.defs.len(), 1);
        assert_eq!(e.defs[0].name, "Policy");
        let names: Vec<&str> = e.defs[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, ["FixedPower", "MpptIc", "MpptRr"]);
    }

    #[test]
    fn tuple_payloads_do_not_become_variants() {
        let src = SourceFile::parse(
            "crates/archsim/src/dvfs.rs",
            "enum Mode {\n    Auto(VfLevel, Watts),\n    Manual { level: VfLevel },\n}\n",
        );
        let defs = enums_in(&src);
        let names: Vec<&str> = defs[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, ["Auto", "Manual"]);
    }

    #[test]
    fn wildcard_arm_on_scoped_enum_is_flagged() {
        let text = "fn f(p: Policy) -> u32 {\n    match p {\n        Policy::MpptIc => 1,\n        _ => 0,\n    }\n}\n";
        let v = check(
            &SourceFile::parse("crates/solarcore/src/engine.rs", text),
            &scoped(),
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("wildcard"));
    }

    #[test]
    fn binder_catchall_is_flagged() {
        let text = "fn f(p: &Policy) {\n    match p {\n        Policy::FixedPower(w) => drop(w),\n        other => drop(other),\n    }\n}\n";
        let v = check(
            &SourceFile::parse("crates/solarcore/src/policy.rs", text),
            &scoped(),
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("catch-all binder `other =>`"));
    }

    #[test]
    fn exhaustive_match_passes() {
        let text = "fn f(p: Policy) -> u32 {\n    match p {\n        Policy::FixedPower(_) => 0,\n        Policy::MpptIc | Policy::MpptRr => 1,\n    }\n}\n";
        let v = check(
            &SourceFile::parse("crates/solarcore/src/engine.rs", text),
            &scoped(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wildcards_on_unscoped_matches_pass() {
        let text =
            "fn f(x: u32) -> u32 {\n    match x {\n        0 => 1,\n        _ => 0,\n    }\n}\n";
        let v = check(
            &SourceFile::parse("crates/bench/src/grid.rs", text),
            &scoped(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn guards_and_payload_binders_are_not_catchalls() {
        let text = "fn f(p: Policy, n: u32) -> u32 {\n    match p {\n        Policy::FixedPower(w) if n > 0 => 1,\n        Policy::MpptIc => 2,\n        Policy::MpptRr => 3,\n        Policy::FixedPower(_) => 4,\n    }\n}\n";
        let v = check(
            &SourceFile::parse("crates/solarcore/src/engine.rs", text),
            &scoped(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn arm_values_constructing_the_enum_do_not_scope_the_match() {
        // A match over a *string* that builds Policy values: its `_` arm
        // is fine — the compiler cannot exhaust strings.
        let text = "fn f(s: &str) -> Policy {\n    match s {\n        \"ic\" => Policy::MpptIc,\n        _ => Policy::MpptRr,\n    }\n}\n";
        let v = check(
            &SourceFile::parse("crates/bench/src/args.rs", text),
            &scoped(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn block_arm_values_do_not_break_arm_splitting() {
        let text = "fn f(p: Policy) -> u32 {\n    match p {\n        Policy::FixedPower(_) => {\n            let x = 1;\n            x\n        }\n        _ => 0,\n    }\n}\n";
        let v = check(
            &SourceFile::parse("crates/solarcore/src/engine.rs", text),
            &scoped(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("wildcard"));
    }

    #[test]
    fn dead_variant_is_reported_and_used_one_is_not() {
        let e = scoped();
        let mentioned = vec![
            ("Policy".to_owned(), "FixedPower".to_owned()),
            ("Policy".to_owned(), "MpptIc".to_owned()),
        ];
        let v = dead_variants(&e, &mentioned);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Policy::MpptRr"));
        assert_eq!(v[0].path, "crates/solarcore/src/policy.rs");
    }

    #[test]
    fn mentions_collects_enum_variant_paths() {
        let src = SourceFile::parse(
            "crates/bench/src/grid.rs",
            "fn f() { let p = Policy::MpptRr; let q = Other::Thing; }\n",
        );
        let m = mentions(&src, &scoped());
        assert_eq!(m, vec![("Policy".to_owned(), "MpptRr".to_owned())]);
    }
}
