//! `cargo xtask analyze`: token-level static analysis the compiler cannot
//! do for us (ISSUE 2).
//!
//! Three passes run over every crate source, experiment binaries included:
//!
//! * [`dims`] — dimensional analysis: learns the unit algebra from
//!   `crates/pv/src/units.rs` and shadows it through arithmetic, catching
//!   cross-unit `+`/`-`, undeclared product dimensions, and `.0` unit
//!   laundering even after values pass through raw `f64` locals;
//! * [`determinism`] — hash-ordered iteration, ambient randomness/time,
//!   and completion-order reductions that would break bitwise
//!   reproducibility of the day simulations;
//! * [`exhaustive`] — wildcard/catch-all arms on the state-machine enums
//!   of `solarcore::{controller,policy}` and `archsim::dvfs`, plus
//!   dead (never-referenced) states.
//!
//! Findings use the same waiver machinery as `cargo xtask lint`: inline
//! `// lint:allow(<pass>): <reason>` markers and `xtask/lint-allow.txt`
//! path prefixes — and like lint, an unused waiver is itself an error.

pub mod determinism;
pub mod dims;
pub mod exhaustive;
pub mod units;

use std::fs;
use std::path::Path;

use crate::lint::{self, Report, Violation};
use crate::syntax::files;
use crate::syntax::source::SourceFile;

/// The passes `cargo xtask analyze` runs; scopes unused-waiver accounting.
pub const PASSES: &[&str] = &[dims::PASS, determinism::PASS, exhaustive::PASS];

/// Runs the three analysis passes over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut allow = lint::Allowlist::load(root)?;
    let algebra = units::UnitAlgebra::learn(root)?;
    if algebra.unit_count() == 0 {
        return Err(
            "no unit newtypes learned from crates/pv/src/units.rs — dimensional \
                    analysis would be vacuous"
                .to_owned(),
        );
    }
    let enums = exhaustive::Enums::learn(root)?;
    let mut report = Report::default();

    // Unlike lint, the experiment binaries are included: their serialized
    // output is exactly what the determinism pass protects.
    let files = files::collect_crate_sources(root, true)?;
    report.files_scanned = files.len();

    // Two-stage run: per-file findings are buffered so the whole-workspace
    // dead-variant pass can append to the declaring files before waiver
    // accounting (a waiver for a dead state must count as used).
    let mut buffered: Vec<(SourceFile, Vec<Violation>)> = Vec::new();
    let mut mentioned: Vec<(String, String)> = Vec::new();

    for path in &files {
        let rel = files::relative(root, path);
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let src = SourceFile::parse(&rel, &text);

        let mut findings = Vec::new();
        if dims::applies_to(&rel) {
            findings.extend(dims::check(&src, &algebra));
        }
        if determinism::applies_to(&rel) {
            findings.extend(determinism::check(&src));
        }
        if exhaustive::applies_to(&rel) {
            findings.extend(exhaustive::check(&src, &enums));
            for (e, v) in exhaustive::mentions(&src, &enums) {
                let declared_here = enums.defs.iter().any(|d| d.name == e && d.path == rel);
                if !declared_here {
                    mentioned.push((e, v));
                }
            }
        }
        buffered.push((src, findings));
    }

    for dead in exhaustive::dead_variants(&enums, &mentioned) {
        if let Some((_, findings)) = buffered.iter_mut().find(|(s, _)| s.path == dead.path) {
            findings.push(dead);
        } else {
            report.violations.push(dead);
        }
    }

    for (src, findings) in buffered {
        lint::apply_file_waivers(&mut allow, &src, findings, PASSES, &mut report);
    }
    report.violations.extend(allow.unused(PASSES));

    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: the analyzer must run clean on the real workspace —
    /// this is the same gate `ci.sh` enforces.
    #[test]
    fn workspace_analyzes_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
        let report = run(root).unwrap();
        assert!(
            report.violations.is_empty(),
            "analyze found {} violation(s):\n{}",
            report.violations.len(),
            report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.files_scanned > 0);
    }
}
