//! Pass `determinism`: statically flags constructs that can make two runs
//! of the same simulation differ — hash-ordered iteration, ambient
//! randomness/time, and completion-order reductions.
//!
//! SolarCore's evaluation artifacts (`results/*.json`, the BENCH
//! trajectory) are only meaningful if a day simulation is bit-identical
//! across thread counts and input orderings. Three finding groups:
//!
//! * **hash-ordered collections** — `HashMap`/`HashSet` iteration order is
//!   randomized per process; anything that aggregates results or feeds
//!   serialized output must use `BTreeMap`/`BTreeSet` or sort before
//!   emission;
//! * **ambient nondeterminism** — `thread_rng`, `OsRng`, `from_entropy`,
//!   `RandomState`, `SystemTime`, `UNIX_EPOCH`, `Instant` inside
//!   simulation logic make replays impossible; all randomness must flow
//!   from explicit seeds and all timestamps from simulated minutes (the
//!   `crates/telemetry` stream is stamped exclusively with sim time, so
//!   any ambient clock there is a contract break, not a convenience);
//! * **completion-order reductions** — folding worker results in the order
//!   they arrive (`recv`, `try_iter`, rayon `reduce`) reorders float
//!   accumulation with thread scheduling; reductions must happen in input
//!   order (as `bench::parallel_map` guarantees).

use crate::lint::Violation;
use crate::syntax::source::SourceFile;

use crate::syntax::lexer::{self};

/// Pass name used in waivers and reports.
pub const PASS: &str = "determinism";

/// Scope: every crate source, including experiment binaries (their output
/// is exactly what must be reproducible).
pub fn applies_to(path: &str) -> bool {
    path.starts_with("crates/")
}

/// Identifier → complaint for ambient-nondeterminism sources.
const AMBIENT: &[(&str, &str)] = &[
    (
        "thread_rng",
        "`thread_rng()` draws from ambient state; thread randomness through an explicit seed",
    ),
    (
        "OsRng",
        "`OsRng` draws from the OS entropy pool; thread randomness through an explicit seed",
    ),
    (
        "from_entropy",
        "`from_entropy()` seeds from ambient entropy; use `seed_from_u64`/explicit seeds",
    ),
    (
        "RandomState",
        "`RandomState` seeds hashing from ambient entropy; use an explicitly seeded hasher",
    ),
    (
        "SystemTime",
        "`SystemTime` makes output depend on the wall clock; pass timestamps in explicitly",
    ),
    (
        "UNIX_EPOCH",
        "`UNIX_EPOCH` arithmetic stamps output with the wall clock; use simulated minutes",
    ),
    (
        "Instant",
        "`Instant` makes control flow depend on elapsed wall time; simulate time explicitly",
    ),
];

/// Identifier → complaint for completion-order reduction primitives.
const COMPLETION_ORDER: &[(&str, &str)] = &[
    (
        "recv",
        "receiving worker results in completion order reorders float accumulation",
    ),
    (
        "try_iter",
        "draining a channel in completion order reorders float accumulation",
    ),
    (
        "recv_timeout",
        "receiving worker results in completion order reorders float accumulation",
    ),
    (
        "into_par_iter",
        "parallel-iterator reductions fold in scheduling order",
    ),
    (
        "par_iter",
        "parallel-iterator reductions fold in scheduling order",
    ),
    (
        "reduce_with",
        "parallel reductions fold in scheduling order",
    ),
];

/// Scans one file for determinism hazards outside test code.
pub fn check(src: &SourceFile) -> Vec<Violation> {
    let tokens = lexer::lex(src);
    let mut out = Vec::new();
    let mut push = |line: usize, message: String| {
        out.push(Violation {
            pass: PASS,
            path: src.path.clone(),
            line,
            message,
        });
    };

    let mut last_flagged_line = 0usize;
    for (i, tok) in tokens.iter().enumerate() {
        if src.is_test_line(tok.line) {
            continue;
        }
        let Some(name) = tok.ident() else { continue };

        if matches!(name, "HashMap" | "HashSet") && tok.line != last_flagged_line {
            last_flagged_line = tok.line;
            push(
                tok.line,
                format!(
                    "`{name}` iteration order is randomized per process; use \
                     `BTree{}` or sort before emission \
                     (or mark `// lint:allow(determinism): <reason>`)",
                    &name[4..]
                ),
            );
            continue;
        }

        if let Some((_, why)) = AMBIENT.iter().find(|(w, _)| *w == name) {
            // `Instant`/`SystemTime` as a path segment or type; the rng
            // names anywhere.
            push(
                tok.line,
                format!("{why} (or mark `// lint:allow(determinism): <reason>`)"),
            );
            continue;
        }

        if let Some((_, why)) = COMPLETION_ORDER.iter().find(|(w, _)| *w == name) {
            // Only as a method call or path item: `x.recv()`, `mpsc::…`.
            let called = tokens.get(i + 1).is_some_and(|t| t.is_op("("));
            let method = i > 0 && tokens[i - 1].is_op(".");
            if called || method {
                push(
                    tok.line,
                    format!(
                        "{why}; reorder to input order before folding \
                         (or mark `// lint:allow(determinism): <reason>`)"
                    ),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<Violation> {
        check(&SourceFile::parse("crates/bench/src/x.rs", text))
    }

    #[test]
    fn hash_collections_are_flagged_once_per_line() {
        let v = findings("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); }\n");
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("BTreeMap"));
    }

    #[test]
    fn hash_set_suggests_btree_set() {
        let v = findings("use std::collections::HashSet;\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("BTreeSet"));
    }

    #[test]
    fn ambient_time_and_rng_are_flagged() {
        let v = findings(
            "fn f() {\n    let t = std::time::Instant::now();\n    let r = rand::thread_rng();\n}\n",
        );
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("wall time"));
        assert!(v[1].message.contains("explicit seed"));
    }

    #[test]
    fn completion_order_receives_are_flagged() {
        let v = findings("fn f(rx: Receiver<f64>) {\n    let mut sum = 0.0;\n    while let Ok(x) = rx.recv() {\n        sum += x;\n    }\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("completion order"));
    }

    #[test]
    fn ordinary_identifiers_do_not_trip() {
        let v = findings(
            "fn f() {\n    let recv_count = 3;\n    let instant_power = 1.0;\n    let _ = recv_count as f64 + instant_power;\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let text = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn btree_collections_pass() {
        assert!(
            findings("use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, f64>) {}\n")
                .is_empty()
        );
    }

    #[test]
    fn scope_is_all_crate_sources() {
        assert!(applies_to("crates/bench/src/grid.rs"));
        assert!(applies_to("crates/bench/src/bin/expt_all.rs"));
        assert!(applies_to("crates/solarcore/src/engine.rs"));
        // The telemetry crate stamps records with sim time only; ambient
        // clocks/entropy there break the observability contract.
        assert!(applies_to("crates/telemetry/src/record.rs"));
        assert!(!applies_to("xtask/src/main.rs"));
    }

    #[test]
    fn ambient_clock_stamps_in_telemetry_are_flagged() {
        let text = "fn stamp() -> u64 {\n    let now = std::time::SystemTime::now();\n    now.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()\n}\n";
        let v = check(&SourceFile::parse("crates/telemetry/src/record.rs", text));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("wall clock"));
        assert!(v[1].message.contains("simulated minutes"));
    }

    #[test]
    fn ambient_hasher_seeding_is_flagged() {
        let v = findings("use std::collections::hash_map::RandomState;\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("explicitly seeded hasher"));
    }
}
