//! Lightweight lexical model of a Rust source file shared by the lint
//! passes: comment/string masking, `#[cfg(test)]` region detection, and
//! inline waiver markers.
//!
//! This is a text-level analysis, not a parse — precise enough for the
//! repo's rustfmt-formatted sources, and honest about it: anything the
//! masking misclassifies shows up as a false positive that a reviewable
//! `// lint:allow(...)` marker or allowlist entry resolves.

/// A preprocessed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Raw lines as written.
    pub raw: Vec<String>,
    /// Lines with comments and string/char literals masked to spaces.
    pub code: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]`-gated module.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Parses `text` into the masked model.
    pub fn parse(path: &str, text: &str) -> Self {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let code = mask(text);
        let in_test = test_regions(&code);
        Self {
            path: path.to_owned(),
            raw,
            code,
            in_test,
        }
    }

    /// `true` if `line` (1-based) carries an inline waiver for `pass`,
    /// either on the line itself or on a comment-only line directly above.
    pub fn has_waiver(&self, line: usize, pass: &str) -> bool {
        let marker = format!("lint:allow({pass})");
        if self
            .raw
            .get(line.wrapping_sub(1))
            .is_some_and(|l| l.contains(&marker))
        {
            return true;
        }
        line >= 2
            && self
                .raw
                .get(line - 2)
                .is_some_and(|l| l.trim_start().starts_with("//") && l.contains(&marker))
    }

    /// `true` if `line` (1-based) is inside a test-gated region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Every inline `lint:allow(<pass>)` marker in the file, for
    /// unused-waiver accounting.
    pub fn waiver_markers(&self) -> Vec<WaiverMarker> {
        const NEEDLE: &str = "lint:allow(";
        let mut out = Vec::new();
        for (idx, raw) in self.raw.iter().enumerate() {
            let mut rest = raw.as_str();
            while let Some(p) = rest.find(NEEDLE) {
                let after = &rest[p + NEEDLE.len()..];
                let Some(end) = after.find(')') else { break };
                let tail = &after[end + 1..];
                out.push(WaiverMarker {
                    line: idx + 1,
                    pass: after[..end].trim().to_owned(),
                    has_reason: tail
                        .trim_start()
                        .strip_prefix(':')
                        .is_some_and(|r| !r.trim().is_empty()),
                });
                rest = tail;
            }
        }
        out
    }
}

/// One inline `// lint:allow(<pass>): <reason>` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverMarker {
    /// 1-based line the marker sits on.
    pub line: usize,
    /// The pass it waives.
    pub pass: String,
    /// `true` if a non-empty `: <reason>` follows the marker.
    pub has_reason: bool,
}

/// Masks comments, string literals and char literals with spaces, line by
/// line, preserving line structure and column positions of real code.
fn mask(text: &str) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }

    let mut out = Vec::new();
    let mut state = State::Code;

    for line in text.lines() {
        let bytes: Vec<char> = line.chars().collect();
        let mut masked = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Code => {
                    let c = bytes[i];
                    let next = bytes.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        // Line comment: mask the rest of the line.
                        for _ in i..bytes.len() {
                            masked.push(' ');
                        }
                        i = bytes.len();
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(1);
                        masked.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = State::Str;
                        masked.push(' ');
                        i += 1;
                    } else if c == 'r' && matches!(next, Some('"') | Some('#')) {
                        // Raw string r"..." / r#"..."#; count the hashes.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            for _ in i..=j {
                                masked.push(' ');
                            }
                            i = j + 1;
                        } else {
                            masked.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal or lifetime. A lifetime has an ident
                        // char after the quote and no closing quote nearby.
                        let close =
                            bytes.get(i + 2) == Some(&'\'') || (bytes.get(i + 1) == Some(&'\\'));
                        if close {
                            let span = if bytes.get(i + 1) == Some(&'\\') {
                                // '\n', '\'', '\\', '\u{...}' — find the close.
                                let mut j = i + 2;
                                while j < bytes.len() && bytes[j] != '\'' {
                                    j += 1;
                                }
                                j.min(bytes.len().saturating_sub(1)) - i + 1
                            } else {
                                3
                            };
                            for _ in 0..span.min(bytes.len() - i) {
                                masked.push(' ');
                            }
                            i += span.min(bytes.len() - i);
                        } else {
                            masked.push(c);
                            i += 1;
                        }
                    } else {
                        masked.push(c);
                        i += 1;
                    }
                }
                State::BlockComment(depth) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        let depth = depth - 1;
                        state = if depth == 0 {
                            State::Code
                        } else {
                            State::BlockComment(depth)
                        };
                        masked.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(depth + 1);
                        masked.push_str("  ");
                        i += 2;
                    } else {
                        masked.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if bytes[i] == '\\' {
                        masked.push(' ');
                        if i + 1 < bytes.len() {
                            masked.push(' ');
                        }
                        i += 2;
                    } else if bytes[i] == '"' {
                        state = State::Code;
                        masked.push(' ');
                        i += 1;
                    } else {
                        masked.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if bytes[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            state = State::Code;
                            for _ in 0..=(hashes as usize) {
                                masked.push(' ');
                            }
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    masked.push(' ');
                    i += 1;
                }
            }
        }
        // Unterminated string state at EOL: normal strings do not span
        // lines unless escaped; reset conservatively for robustness.
        if state == State::Str {
            state = State::Code;
        }
        out.push(masked);
    }
    out
}

/// Marks lines belonging to `#[cfg(test)] mod … { … }` regions (and any
/// item directly under a `#[cfg(test)]` attribute).
#[allow(clippy::cast_possible_truncation)] // per-line brace counts fit i32
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut depth: i32 = 0;
    let mut pending_cfg = false;
    // Brace depth at which the current test region closes again.
    let mut region_close: Option<i32> = None;

    for (idx, line) in code.iter().enumerate() {
        let opens = line.matches('{').count() as i32;
        let closes = line.matches('}').count() as i32;
        let before = depth;
        depth += opens - closes;

        if let Some(close_at) = region_close {
            flags[idx] = true;
            if depth <= close_at {
                region_close = None;
            }
            continue;
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg = true;
            flags[idx] = true;
            continue;
        }
        if pending_cfg {
            flags[idx] = true;
            if opens > 0 {
                pending_cfg = false;
                if depth > before {
                    region_close = Some(before);
                }
                // Balanced braces on one line (`mod t {}`) end immediately.
            } else if line.trim().ends_with(';') {
                // Gated single-line item (e.g. `mod tests;`).
                pending_cfg = false;
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = SourceFile::parse("t.rs", "let a = 1; // unwrap()\n/* panic!( */ let b = 2;");
        assert!(!src.code[0].contains("unwrap"));
        assert!(!src.code[1].contains("panic"));
        assert!(src.code[1].contains("let b"));
    }

    #[test]
    fn masks_strings_but_not_code() {
        let src = SourceFile::parse("t.rs", r#"call("has unwrap() inside").unwrap();"#);
        let code = &src.code[0];
        assert!(code.contains(".unwrap()"));
        assert_eq!(code.matches("unwrap").count(), 1);
    }

    #[test]
    fn cfg_test_region_is_flagged() {
        let text =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let src = SourceFile::parse("t.rs", text);
        assert!(!src.is_test_line(1));
        assert!(src.is_test_line(2));
        assert!(src.is_test_line(3));
        assert!(src.is_test_line(4));
        assert!(src.is_test_line(5));
        assert!(!src.is_test_line(6));
    }

    #[test]
    fn waiver_markers_are_line_scoped() {
        let text = "a.unwrap(); // lint:allow(panic): startup config\nb.unwrap();\n";
        let src = SourceFile::parse("t.rs", text);
        assert!(src.has_waiver(1, "panic"));
        assert!(!src.has_waiver(2, "panic"));
        assert!(!src.has_waiver(1, "cast"));
    }

    #[test]
    fn waiver_on_preceding_comment_line_applies() {
        let text = "// lint:allow(panic): validated at startup\na.unwrap();\nb.unwrap();\n";
        let src = SourceFile::parse("t.rs", text);
        assert!(src.has_waiver(2, "panic"));
        assert!(!src.has_waiver(3, "panic"));
    }

    #[test]
    fn preceding_line_waiver_requires_a_comment_line() {
        // A marker smuggled inside a string on the previous code line must
        // not waive the next line.
        let text = "let s = \"lint:allow(panic)\";\na.unwrap();\n";
        let src = SourceFile::parse("t.rs", text);
        assert!(!src.has_waiver(2, "panic"));
    }

    #[test]
    fn char_literals_do_not_derail_masking() {
        let src = SourceFile::parse("t.rs", "let c = '\"'; x.unwrap();");
        assert!(src.code[0].contains(".unwrap()"));
    }

    #[test]
    fn waiver_markers_are_enumerated_with_reason_state() {
        let text = "a(); // lint:allow(panic): startup config\nb(); // lint:allow(cast)\nc(); // lint:allow(dim):   \n";
        let src = SourceFile::parse("t.rs", text);
        let m = src.waiver_markers();
        assert_eq!(m.len(), 3);
        assert_eq!(
            (m[0].line, m[0].pass.as_str(), m[0].has_reason),
            (1, "panic", true)
        );
        assert_eq!(
            (m[1].line, m[1].pass.as_str(), m[1].has_reason),
            (2, "cast", false)
        );
        assert_eq!(
            (m[2].line, m[2].pass.as_str(), m[2].has_reason),
            (3, "dim", false)
        );
    }
}
