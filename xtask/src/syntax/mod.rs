//! Shared lexical infrastructure for every static-analysis command.
//!
//! `cargo xtask lint`, `analyze` and `flow` are three clients of the same
//! dependency-free source model: [`source::SourceFile`] (comment/string
//! masking, `#[cfg(test)]` regions, waiver markers), the token
//! [`lexer`], and the [`files`] workspace walker. They lived inside
//! `lint`/`analyze` historically; `flow` made a third copy untenable, so
//! the shared layer now has one home.

pub mod files;
pub mod lexer;
pub mod source;

pub use lexer::{lex, matching_close, Tok, Token};
pub use source::{SourceFile, WaiverMarker};
