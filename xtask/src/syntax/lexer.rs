//! A tiny Rust token lexer over the comment/string-masked source model.
//!
//! The lint passes of PR 1 work line by line; the analyze passes need to
//! see *across* lines (multi-line expressions, match arms, impl headers),
//! so this module turns a [`SourceFile`]'s masked code into a flat token
//! stream with line anchors. It understands exactly as much of Rust's
//! lexical grammar as the passes need: identifiers, numeric literals,
//! lifetimes and multi-character operators. Everything inside comments,
//! strings and char literals was already blanked by the masker.

use crate::syntax::source::SourceFile;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`match`, `Watts`, `budget_cap` …).
    Ident(String),
    /// Numeric literal, verbatim (`0`, `1.45`, `0x9e37`, `1_000` …).
    Num(String),
    /// Lifetime token (`'a`, `'static`).
    Lifetime(String),
    /// Operator or punctuation, possibly multi-character (`=>`, `::`, `+=`).
    Op(&'static str),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number in the original file.
    pub line: usize,
}

impl Token {
    /// `true` if the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == word)
    }

    /// `true` if the token is the operator `op`.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(&self.tok, Tok::Op(s) if *s == op)
    }

    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_OPS: &[&str] = &[
    "..=", "<<=", ">>=", "=>", "->", "::", "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
];

/// Single-character operators/punctuation the passes may see.
const SINGLE_OPS: &[(char, &str)] = &[
    ('+', "+"),
    ('-', "-"),
    ('*', "*"),
    ('/', "/"),
    ('%', "%"),
    ('=', "="),
    ('<', "<"),
    ('>', ">"),
    ('!', "!"),
    ('&', "&"),
    ('|', "|"),
    ('^', "^"),
    ('(', "("),
    (')', ")"),
    ('[', "["),
    (']', "]"),
    ('{', "{"),
    ('}', "}"),
    (',', ","),
    (';', ";"),
    (':', ":"),
    ('.', "."),
    ('#', "#"),
    ('?', "?"),
    ('@', "@"),
    ('_', "_"),
    ('$', "$"),
];

/// Lexes the masked code of `src` into a token stream.
///
/// A bare `_` is lexed as `Op("_")` (wildcard pattern); `_name` lexes as an
/// identifier. Attribute bodies (`#[...]`) are lexed like any other tokens;
/// passes that must skip them can match on `#` `[`.
pub fn lex(src: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in src.code.iter().enumerate() {
        let line_no = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            // Identifier / keyword / `_name`.
            if c.is_ascii_alphabetic() || (c == '_' && ident_follows(&chars, i + 1)) {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: line_no,
                });
                continue;
            }
            // Numeric literal (the masker leaves these intact).
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric()
                        || chars[i] == '_'
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                            && !chars[start..i].contains(&'.')))
                {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Num(chars[start..i].iter().collect()),
                    line: line_no,
                });
                continue;
            }
            // Lifetime: `'` followed by an identifier (char literals are
            // masked, so a surviving quote starts a lifetime).
            if c == '\'' {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Lifetime(chars[start..i].iter().collect()),
                    line: line_no,
                });
                continue;
            }
            // Multi-character operator, longest match first.
            if let Some(op) = MULTI_OPS.iter().find(|op| {
                op.chars()
                    .enumerate()
                    .all(|(k, oc)| chars.get(i + k) == Some(&oc))
            }) {
                out.push(Token {
                    tok: Tok::Op(op),
                    line: line_no,
                });
                i += op.len();
                continue;
            }
            if let Some((_, op)) = SINGLE_OPS.iter().find(|(sc, _)| *sc == c) {
                out.push(Token {
                    tok: Tok::Op(op),
                    line: line_no,
                });
            }
            // Anything else (stray unicode) is skipped: masked content.
            i += 1;
        }
    }
    out
}

/// `true` if position `i` continues an identifier (so `_x` is an ident but
/// a bare `_` is the wildcard op).
fn ident_follows(chars: &[char], i: usize) -> bool {
    chars
        .get(i)
        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
}

/// Finds the index of the token matching the bracket at `open` (which must
/// be `(`, `[` or `{`), honouring nesting of all three bracket kinds.
pub fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<Token> {
        lex(&SourceFile::parse("t.rs", text))
    }

    #[test]
    fn lexes_idents_numbers_and_ops() {
        let t = toks("let p: Watts = v * i + 1.5;");
        let kinds: Vec<String> = t
            .iter()
            .map(|t| match &t.tok {
                Tok::Ident(s) => s.clone(),
                Tok::Num(s) => s.clone(),
                Tok::Op(s) => (*s).to_owned(),
                Tok::Lifetime(s) => s.clone(),
            })
            .collect();
        assert_eq!(
            kinds,
            ["let", "p", ":", "Watts", "=", "v", "*", "i", "+", "1.5", ";"]
        );
    }

    #[test]
    fn multi_char_ops_are_single_tokens() {
        let t = toks("a => b :: c += 0..=9");
        assert!(t.iter().any(|t| t.is_op("=>")));
        assert!(t.iter().any(|t| t.is_op("::")));
        assert!(t.iter().any(|t| t.is_op("+=")));
        assert!(t.iter().any(|t| t.is_op("..=")));
    }

    #[test]
    fn wildcard_vs_underscore_ident() {
        let t = toks("_ => _x");
        assert!(t[0].is_op("_"));
        assert!(t[2].is_ident("_x"));
    }

    #[test]
    fn lines_are_tracked_across_breaks() {
        let t = toks("let a =\n    b + c;\n");
        assert_eq!(t[0].line, 1);
        let plus = t.iter().find(|t| t.is_op("+")).unwrap();
        assert_eq!(plus.line, 2);
    }

    #[test]
    fn comments_and_strings_yield_no_tokens() {
        let t = toks("// match _ => nope\nlet s = \"match _\";\n");
        assert!(!t.iter().any(|t| t.is_ident("match")));
        assert!(!t.iter().any(|t| t.is_op("_")));
    }

    #[test]
    fn matching_close_honours_nesting() {
        let t = toks("f(a, (b + c), [d])");
        let open = t.iter().position(|t| t.is_op("(")).unwrap();
        let close = matching_close(&t, open).unwrap();
        assert!(t[close].is_op(")"));
        assert_eq!(close, t.len() - 1);
    }

    #[test]
    fn float_field_access_is_not_a_float_literal() {
        // `x.0 + y` must lex `.` `0`, not a float `0.…`; and tuple index
        // after a number (`1.0.max`) stays sane.
        let t = toks("x.0 + y");
        assert!(t[1].is_op("."));
        assert!(matches!(&t[2].tok, Tok::Num(n) if n == "0"));
    }

    #[test]
    fn lifetimes_lex_as_lifetimes() {
        let t = toks("fn f<'a>(x: &'a str) {}");
        assert!(t
            .iter()
            .any(|t| matches!(&t.tok, Tok::Lifetime(l) if l == "'a")));
    }
}
