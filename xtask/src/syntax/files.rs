//! Workspace source discovery shared by the analysis commands.
//!
//! Every command walks `crates/*/src`; they differ only in whether the
//! experiment binaries under `src/bin/` are in scope. `lint` excludes
//! them (fail-fast on I/O errors is the desired behaviour there) while
//! `analyze` and `flow` include them (their serialized output is exactly
//! what the determinism and schema passes protect). `vendor/` and
//! `target/` are never scanned.

use std::fs;
use std::path::{Path, PathBuf};

/// Collects every `.rs` file under `crates/*/src`, sorted for
/// deterministic reports. `include_bins` keeps or drops files under a
/// `src/bin/` directory.
pub fn collect_crate_sources(root: &Path, include_bins: bool) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let crates = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
    for entry in crates.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut out)?;
        }
    }
    if !include_bins {
        out.retain(|p| {
            let rel = p.to_string_lossy().replace('\\', "/");
            !rel.contains("/src/bin/")
        });
    }
    out.sort();
    Ok(out)
}

/// Collects every `.rs` file of the whole workspace — crate sources plus
/// integration tests, benches, examples and the `tests/` harness crate —
/// sorted for deterministic reports. The call-graph pass uses this wider
/// set: test and bench files are *roots* for reachability and their call
/// sites count toward closed-world parameter derivation. `vendor/` and
/// `target/` stay out of scope.
pub fn collect_workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = collect_crate_sources(root, true)?;
    let crates_dir = root.join("crates");
    let crates = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot list {}: {e}", crates_dir.display()))?;
    for entry in crates.flatten() {
        for sub in ["tests", "benches"] {
            let dir = entry.path().join(sub);
            if dir.is_dir() {
                walk_rs(&dir, &mut out)?;
            }
        }
    }
    for dir in ["examples/src", "tests/src", "tests/tests"] {
        let dir = root.join(dir);
        if dir.is_dir() {
            walk_rs(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` into `out`.
pub fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative path of `path` with forward slashes, as used in
/// every diagnostic.
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
