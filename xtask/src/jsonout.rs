//! Canonical hand-rolled JSON rendering for xtask report artifacts.
//!
//! Reports under `results/` are committed, so two runs over the same
//! sources must produce byte-identical files. This module guarantees that
//! structurally: object keys render in sorted order (a [`BTreeMap`] is the
//! only object representation), floats render via Rust's shortest-roundtrip
//! `{}` formatting (deterministic, locale-free), and indentation is fixed
//! at two spaces. xtask stays dependency-free, so this is the one JSON
//! serializer every report goes through.

use std::collections::BTreeMap;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null` (JSON has no ±∞/NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array, in insertion order.
    Arr(Vec<Json>),
    /// An object; keys render sorted because the map is ordered.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An object builder from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| ≤ 2^53).
    #[allow(clippy::cast_precision_loss)]
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Renders the value as a pretty-printed document with a trailing
    /// newline — the canonical byte form of every committed report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Canonical float formatting: integral values render without a fraction,
/// everything else uses the shortest-roundtrip `{}` form; non-finite
/// values become `null`.
#[allow(clippy::float_cmp)]
fn write_num(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // |v| < 1e15 keeps the cast exact, well inside i64 range.
        #[allow(clippy::cast_possible_truncation)]
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_sorted_regardless_of_insertion_order() {
        let a = Json::obj(vec![("zeta", Json::int(1)), ("alpha", Json::int(2))]);
        let b = Json::obj(vec![("alpha", Json::int(2)), ("zeta", Json::int(1))]);
        assert_eq!(a.render(), b.render());
        assert!(a.render().find("alpha") < a.render().find("zeta"));
    }

    #[test]
    fn floats_render_canonically() {
        let mut s = String::new();
        write_num(&mut s, 0.7407);
        assert_eq!(s, "0.7407");
        s.clear();
        write_num(&mut s, 27.0);
        assert_eq!(s, "27");
        s.clear();
        write_num(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let j = Json::str("a\"b\\c\nd");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn rendering_is_reproducible() {
        let j = Json::obj(vec![
            ("ratio", Json::Num(0.8148)),
            ("items", Json::Arr(vec![Json::str("x"), Json::Null])),
        ]);
        assert_eq!(j.render(), j.render());
    }
}
