//! Repo automation library for the SolarCore workspace.
//!
//! The `cargo xtask` binary is a thin dispatcher over this crate; the
//! passes live here so the fixture-based ui tests under `xtask/tests/`
//! can drive them directly against small seeded inputs.
//!
//! Module map:
//!
//! * [`syntax`] — the shared dependency-free source model: comment/string
//!   masking, waiver markers, the token lexer and the workspace walker.
//! * [`lint`] — line-level policy passes (panic-free library code, raw
//!   `f64` discipline, unchecked casts) plus the waiver machinery every
//!   other command reuses.
//! * [`analyze`] — token-level passes: dimensional analysis, determinism
//!   hazards, enum exhaustiveness/dead states.
//! * [`flow`] — dataflow passes over a per-function CFG: interval/range
//!   analysis of physical quantities, telemetry schema conformance, and
//!   error-path hygiene.
//! * [`graph`] — interprocedural passes over the workspace call graph:
//!   bottom-up function summaries (SCC fixpoint), the seeds cross-check,
//!   `parallel_map` closure-sharing proofs and the reachability report.
//! * [`docs`] — documentation cross-reference pass: DESIGN.md §-anchors,
//!   the EXPERIMENTS.md artifact catalog and the README crate map.
//! * [`jsonout`] — the canonical sorted-key JSON renderer every committed
//!   report artifact serializes through.
//! * [`bench`](mod@bench) — the criterion harness driver and
//!   `BENCH_pr3.json` collector.

pub mod analyze;
pub mod bench;
pub mod docs;
pub mod flow;
pub mod graph;
pub mod jsonout;
pub mod lint;
pub mod syntax;
