//! Repo automation library for the SolarCore workspace.
//!
//! The `cargo xtask` binary is a thin dispatcher over this crate; the
//! passes live here so the fixture-based ui tests under `xtask/tests/`
//! can drive them directly against small seeded inputs.
//!
//! Module map:
//!
//! * [`syntax`] — the shared dependency-free source model: comment/string
//!   masking, waiver markers, the token lexer and the workspace walker.
//! * [`lint`] — line-level policy passes (panic-free library code, raw
//!   `f64` discipline, unchecked casts) plus the waiver machinery every
//!   other command reuses.
//! * [`analyze`] — token-level passes: dimensional analysis, determinism
//!   hazards, enum exhaustiveness/dead states.
//! * [`flow`] — dataflow passes over a per-function CFG: interval/range
//!   analysis of physical quantities, telemetry schema conformance, and
//!   error-path hygiene.
//! * [`bench`] — the criterion harness driver and `BENCH_pr3.json`
//!   collector.

pub mod analyze;
pub mod bench;
pub mod flow;
pub mod lint;
pub mod syntax;
