//! The parallel-closure sharing pass: a race-freedom verdict for every
//! `parallel_map` call site.
//!
//! `parallel_map(inputs, threads, f)` runs `f` on worker threads; the
//! type system already demands `F: Fn(&T) -> U + Sync`, so this pass is
//! the *source-level* witness that complements the type-level one: it
//! names the closure's captures and proves none of them is written to,
//! `&mut`-borrowed, mutated through a `&mut self` workspace method, or an
//! unsynchronized interior-mutability handle (`Rc`/`RefCell`/`Cell`).
//! Each worker's only write is its own indexed output slot, which
//! `parallel_map` itself owns — so a clean capture list is a sharing
//! proof for the whole site.
//!
//! The capture walker is scope-accurate: a name `let`-bound inside the
//! closure before an assignment shadows the capture, but an assignment
//! *before* the shadowing `let` still hits the captured binding and is
//! flagged.

use std::collections::BTreeSet;

use crate::flow::ast::{Arm, Expr, Pat, Stmt};
use crate::lint::Violation;

use super::resolve::local_type_hints;
use super::resolve::{for_each_stmt, Resolution, Workspace, INTERIOR_MUT_TYPES};
use crate::flow::range::CallEvent;

/// Std methods that mutate their receiver through `&mut self`; calling
/// one on a capture is a sharing violation even without workspace
/// resolution.
const STD_MUT_METHODS: &[&str] = &[
    "borrow_mut",
    "clear",
    "dedup",
    "drain",
    "extend",
    "get_mut",
    "insert",
    "iter_mut",
    "lock",
    "pop",
    "push",
    "push_str",
    "remove",
    "retain",
    "set",
    "sort",
    "sort_by",
    "sort_unstable",
    "truncate",
    "write",
];

/// The verdict for one `parallel_map` call site.
#[derive(Debug)]
pub struct ShareVerdict {
    /// File of the call site.
    pub path: String,
    /// 1-based line of the call site.
    pub line: usize,
    /// Names the worker closure captures from the enclosing function.
    pub captures: Vec<String>,
    /// `proven` or `violated`.
    pub verdict: &'static str,
    /// Why the verdict holds (one line per capture finding).
    pub details: Vec<String>,
}

/// Finds every `parallel_map` call site in the workspace and judges its
/// worker argument. Violations use pass `share`.
pub fn check(ws: &Workspace) -> (Vec<ShareVerdict>, Vec<Violation>) {
    let mut verdicts = Vec::new();
    let mut violations = Vec::new();
    for (i, info) in ws.fns.iter().enumerate() {
        let path = ws.files[info.file].path.clone();
        let mut sites: Vec<(usize, &Expr)> = Vec::new();
        for_each_stmt(&info.def.body, &mut |stmt| {
            collect_sites_stmt(stmt, &mut sites);
        });
        // `for_each_stmt` visits nested statements itself; collecting per
        // statement would double-count, so dedup by line.
        sites.sort_by_key(|(line, _)| *line);
        sites.dedup_by_key(|(line, _)| *line);
        for (line, worker) in sites {
            let v = judge_site(ws, i, &path, line, worker);
            if v.verdict == "violated" {
                for d in &v.details {
                    violations.push(Violation {
                        pass: "share",
                        path: path.clone(),
                        line,
                        message: format!("parallel_map worker is not proven race-free: {d}"),
                    });
                }
            }
            verdicts.push(v);
        }
    }
    verdicts.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    (verdicts, violations)
}

/// Collects `parallel_map(…)` worker arguments out of one statement's
/// immediate expressions (nested statements are visited by the caller).
fn collect_sites_stmt<'a>(stmt: &'a Stmt, out: &mut Vec<(usize, &'a Expr)>) {
    let mut exprs: Vec<&Expr> = Vec::new();
    match stmt {
        Stmt::Let { init: Some(e), .. }
        | Stmt::LetElse { init: e, .. }
        | Stmt::Assign { value: e, .. }
        | Stmt::Expr(e)
        | Stmt::Return(Some(e)) => exprs.push(e),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => exprs.push(cond),
        Stmt::For { iter, .. } => exprs.push(iter),
        _ => {}
    }
    while let Some(e) = exprs.pop() {
        if let Expr::Call { path, args, line } = e {
            if path.last().is_some_and(|s| s == "parallel_map") {
                if let Some(worker) = args.get(2) {
                    out.push((*line, worker));
                }
            }
        }
        e.children(&mut exprs);
    }
}

/// Judges one worker argument.
fn judge_site(
    ws: &Workspace,
    fn_ix: usize,
    path: &str,
    line: usize,
    worker: &Expr,
) -> ShareVerdict {
    let Expr::Closure { params, body, .. } = worker else {
        // A named function has no environment at all.
        if matches!(worker, Expr::Path(_)) {
            return ShareVerdict {
                path: path.to_owned(),
                line,
                captures: Vec::new(),
                verdict: "proven",
                details: vec!["worker is a named function; nothing is captured".to_owned()],
            };
        }
        return ShareVerdict {
            path: path.to_owned(),
            line,
            captures: Vec::new(),
            verdict: "violated",
            details: vec![
                "worker expression is not a closure or named function; captures cannot be analyzed"
                    .to_owned(),
            ],
        };
    };

    // Names bound anywhere in the enclosing function (params, self, lets,
    // loop binders); a free name of the closure is a capture iff it is
    // one of these — everything else is a static, const, or item path.
    let enclosing = enclosing_bindings(ws, fn_ix);
    let hints = local_type_hints(&ws.fns[fn_ix]);

    let mut walker = CapWalker::default();
    walker.push_frame();
    for p in params {
        walker.bind_pat(p);
    }
    walker.walk_expr(body);
    walker.pop_frame();

    let captures: Vec<String> = walker
        .free_reads
        .iter()
        .filter(|n| enclosing.contains(*n))
        .cloned()
        .collect();

    let mut details = Vec::new();
    for name in walker.assigned.iter().filter(|n| enclosing.contains(*n)) {
        details.push(format!(
            "captured `{name}` is assigned to inside the worker"
        ));
    }
    for name in walker.mut_refs.iter().filter(|n| enclosing.contains(*n)) {
        details.push(format!(
            "captured `{name}` is borrowed `&mut` inside the worker"
        ));
    }
    for name in &captures {
        if let Some(ty) = hints.get(name) {
            if INTERIOR_MUT_TYPES.contains(&ty.as_str()) {
                details.push(format!(
                    "captured `{name}` is a `{ty}`, whose shared mutation is unsynchronized"
                ));
            }
        }
    }
    for (recv, method, mline) in &walker.method_calls {
        if !enclosing.contains(recv) {
            continue;
        }
        if STD_MUT_METHODS.contains(&method.as_str()) {
            details.push(format!(
                "captured `{recv}` receives mutating method `.{method}()` (line {mline})"
            ));
            continue;
        }
        // Resolve against the workspace: a `&mut self` method on a
        // capture is a write to shared state.
        let event = CallEvent {
            line: *mline,
            path: vec![method.clone()],
            is_method: true,
            recv: Some(recv.clone()),
            args: Vec::new(),
        };
        let recv_ty = hints.get(recv).map(String::as_str);
        let info = &ws.fns[fn_ix];
        let hits: Vec<usize> =
            match ws.resolve(info.file, info.self_type.as_deref(), &event, recv_ty) {
                Resolution::Unique(j) => vec![j],
                Resolution::Candidates(js) => js,
                Resolution::External => Vec::new(),
            };
        if hits.iter().any(|&j| ws.fns[j].def.self_mut) {
            details.push(format!(
                "captured `{recv}` receives workspace `&mut self` method `.{method}()` (line {mline})"
            ));
        }
    }

    if details.is_empty() {
        details.push(match captures.len() {
            0 => "no captures".to_owned(),
            n => format!("{n} capture(s), all read-only and synchronization-free"),
        });
        ShareVerdict {
            path: path.to_owned(),
            line,
            captures,
            verdict: "proven",
            details,
        }
    } else {
        ShareVerdict {
            path: path.to_owned(),
            line,
            captures,
            verdict: "violated",
            details,
        }
    }
}

/// Every name the enclosing function binds, flat: parameters, `self`,
/// and all `let`/`for`/match binders anywhere in the body.
fn enclosing_bindings(ws: &Workspace, fn_ix: usize) -> BTreeSet<String> {
    let info = &ws.fns[fn_ix];
    let mut names = BTreeSet::new();
    if info.def.has_self {
        names.insert("self".to_owned());
    }
    for p in &info.def.params {
        if let Some(n) = &p.name {
            names.insert(n.clone());
        }
    }
    for_each_stmt(&info.def.body, &mut |stmt| {
        let mut buf = Vec::new();
        match stmt {
            Stmt::Let { pat, .. }
            | Stmt::LetElse { pat, .. }
            | Stmt::For { pat, .. }
            | Stmt::Havoc(pat) => pat.bound_names(&mut buf),
            _ => {}
        }
        names.extend(buf);
    });
    names
}

/// Scope-accurate free-variable walker over a closure body.
#[derive(Default)]
struct CapWalker {
    scopes: Vec<Vec<String>>,
    free_reads: BTreeSet<String>,
    assigned: BTreeSet<String>,
    mut_refs: BTreeSet<String>,
    /// `(receiver, method, line)` for method calls on free receivers.
    method_calls: Vec<(String, String, usize)>,
}

impl CapWalker {
    fn push_frame(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_frame(&mut self) {
        self.scopes.pop();
    }

    fn bind_pat(&mut self, pat: &Pat) {
        let mut names = Vec::new();
        pat.bound_names(&mut names);
        if let Some(frame) = self.scopes.last_mut() {
            frame.extend(names);
        }
    }

    fn is_bound(&self, name: &str) -> bool {
        self.scopes.iter().any(|f| f.iter().any(|n| n == name))
    }

    fn walk_stmts(&mut self, stmts: &[Stmt]) {
        self.push_frame();
        for s in stmts {
            self.walk_stmt(s);
        }
        self.pop_frame();
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { pat, init } => {
                if let Some(e) = init {
                    self.walk_expr(e);
                }
                self.bind_pat(pat);
            }
            Stmt::LetElse {
                pat,
                init,
                else_body,
            } => {
                self.walk_expr(init);
                self.walk_stmts(else_body);
                self.bind_pat(pat);
            }
            Stmt::Assign { name, value, .. } => {
                self.walk_expr(value);
                if !self.is_bound(name) {
                    self.assigned.insert(name.clone());
                }
            }
            Stmt::Expr(e) => self.walk_expr(e),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.walk_expr(cond);
                self.walk_stmts(then_body);
                self.walk_stmts(else_body);
            }
            Stmt::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_stmts(body);
            }
            Stmt::Loop { body } | Stmt::Block(body) => self.walk_stmts(body),
            Stmt::For { pat, iter, body } => {
                self.walk_expr(iter);
                self.push_frame();
                self.bind_pat(pat);
                for s in body {
                    self.walk_stmt(s);
                }
                self.pop_frame();
            }
            Stmt::Return(Some(e)) => self.walk_expr(e),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            Stmt::Havoc(pat) => self.bind_pat(pat),
            Stmt::Opaque { kills } => {
                // `kills` are names passed by `&mut` to something the
                // grammar does not model — treat free ones as mutable
                // borrows.
                for k in kills {
                    if !self.is_bound(k) {
                        self.mut_refs.insert(k.clone());
                    }
                }
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match e {
            Expr::Path(segs) => {
                if segs.len() == 1 && !starts_upper(&segs[0]) && !self.is_bound(&segs[0]) {
                    self.free_reads.insert(segs[0].clone());
                }
            }
            Expr::Ref { mutable, expr } => {
                if *mutable {
                    if let Expr::Path(segs) = expr.as_ref() {
                        if segs.len() == 1 && !self.is_bound(&segs[0]) {
                            self.mut_refs.insert(segs[0].clone());
                        }
                    }
                }
                self.walk_expr(expr);
            }
            Expr::Method {
                recv,
                name,
                args,
                line,
            } => {
                if let Expr::Path(segs) = recv.as_ref() {
                    if segs.len() == 1 && !self.is_bound(&segs[0]) {
                        self.method_calls
                            .push((segs[0].clone(), name.clone(), *line));
                    }
                }
                self.walk_expr(recv);
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Block { stmts, value } => {
                self.push_frame();
                for s in stmts {
                    self.walk_stmt(s);
                }
                if let Some(v) = value {
                    self.walk_expr(v);
                }
                self.pop_frame();
            }
            Expr::Closure { params, body, .. } => {
                self.push_frame();
                for p in params {
                    self.bind_pat(p);
                }
                self.walk_expr(body);
                self.pop_frame();
            }
            Expr::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                for Arm { pat, guard, body } in arms {
                    self.push_frame();
                    self.bind_pat(pat);
                    if let Some(g) = guard {
                        self.walk_expr(g);
                    }
                    self.walk_expr(body);
                    self.pop_frame();
                }
            }
            _ => {
                let mut kids = Vec::new();
                e.children(&mut kids);
                for k in kids {
                    self.walk_expr(k);
                }
            }
        }
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::source::SourceFile;

    fn verdicts(text: &str) -> Vec<ShareVerdict> {
        let sources = vec![SourceFile::parse("crates/a/src/lib.rs", text)];
        let ws = Workspace::build(&sources);
        check(&ws).0
    }

    #[test]
    fn read_only_captures_are_proven() {
        let v = verdicts(
            "fn go(mixes: &[Mix]) {\n    let out = parallel_map(items, 4, |x| x + mixes.len() as f64);\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].verdict, "proven");
        assert_eq!(v[0].captures, vec!["mixes".to_owned()]);
    }

    #[test]
    fn assignment_to_capture_is_violated() {
        let v = verdicts(
            "fn go() {\n    let mut total = 0.0;\n    parallel_map(items, 4, |x| { total += x; x });\n}\n",
        );
        assert_eq!(v[0].verdict, "violated");
        assert!(v[0].details[0].contains("total"));
    }

    #[test]
    fn shadowed_locals_are_not_captures() {
        // `acc` inside the closure is its own let-binding.
        let v = verdicts(
            "fn go() {\n    let acc = 1.0;\n    parallel_map(items, 4, |x| { let acc = x; acc += 1.0; acc });\n}\n",
        );
        assert_eq!(v[0].verdict, "proven");
    }

    #[test]
    fn assignment_before_shadowing_let_still_counts() {
        let v = verdicts(
            "fn go() {\n    let mut acc = 1.0;\n    parallel_map(items, 4, |x| { acc += x; let acc = 0.0; acc });\n}\n",
        );
        assert_eq!(v[0].verdict, "violated");
    }

    #[test]
    fn interior_mutability_capture_is_violated() {
        let v = verdicts(
            "fn go() {\n    let shared = Rc::new(0.0);\n    parallel_map(items, 4, |x| { shared.clone(); x });\n}\n",
        );
        assert_eq!(v[0].verdict, "violated");
        assert!(v[0].details[0].contains("Rc"));
    }

    #[test]
    fn closure_local_refcell_is_fine() {
        let v = verdicts(
            "fn go() {\n    parallel_map(items, 4, |x| { let sink = RefCell::new(0.0); x });\n}\n",
        );
        assert_eq!(v[0].verdict, "proven");
    }

    #[test]
    fn mutating_std_method_on_capture_is_violated() {
        let v = verdicts(
            "fn go(log: Vec<f64>) {\n    parallel_map(items, 4, |x| { log.push(x); x });\n}\n",
        );
        assert_eq!(v[0].verdict, "violated");
        assert!(v[0].details[0].contains("push"));
    }

    #[test]
    fn mut_self_workspace_method_on_capture_is_violated() {
        let v = verdicts(
            "struct Acc;\nimpl Acc {\n    fn absorb(&mut self, x: f64) {}\n}\nfn go(acc: Acc) {\n    parallel_map(items, 4, |x| { acc.absorb(x); x });\n}\n",
        );
        assert_eq!(v[0].verdict, "violated");
        assert!(v[0].details[0].contains("absorb"));
    }

    #[test]
    fn named_function_worker_is_proven() {
        let v = verdicts(
            "fn work(x: &f64) -> f64 { *x }\nfn go() {\n    parallel_map(items, 4, work);\n}\n",
        );
        assert_eq!(v[0].verdict, "proven");
        assert!(v[0].captures.is_empty());
    }
}
