//! Strongly connected components of the call graph, via an iterative
//! Tarjan walk.
//!
//! Tarjan emits each component only after every component reachable from
//! it has been emitted, so the output order is already **reverse
//! topological** over the condensation — exactly the order the summary
//! pass needs to compute callees before callers. The walk is iterative
//! (explicit stack) so a pathological call chain cannot overflow the real
//! stack.

/// Computes the SCCs of a graph given as adjacency lists, returned in
/// reverse topological order of the condensation (callees first). Every
/// node appears in exactly one component.
pub fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, next-child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort_unstable();
                out.push(comp);
            }
        }
    }
    out
}

/// `true` when component `comp` contains a cycle: more than one member,
/// or a single member with a self-edge.
pub fn is_cyclic(comp: &[usize], adj: &[Vec<usize>]) -> bool {
    comp.len() > 1 || comp.first().is_some_and(|&v| adj[v].contains(&v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_emits_callees_first() {
        // 0 → 1 → 2
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = sccs(&adj);
        assert_eq!(comps, vec![vec![2], vec![1], vec![0]]);
        assert!(!is_cyclic(&comps[0], &adj));
    }

    #[test]
    fn cycles_collapse_into_one_component() {
        // 0 → 1 → 2 → 1, 0 → 3
        let adj = vec![vec![1, 3], vec![2], vec![1], vec![]];
        let comps = sccs(&adj);
        assert!(comps.contains(&vec![1, 2]));
        assert!(is_cyclic(&[1, 2], &adj));
        // The cyclic pair precedes its caller.
        let pos = |c: &[usize]| comps.iter().position(|x| x == c).unwrap();
        assert!(pos(&[1, 2]) < pos(&[0]));
        assert!(pos(&[3]) < pos(&[0]));
    }

    #[test]
    fn self_recursion_is_cyclic() {
        let adj = vec![vec![0]];
        assert_eq!(sccs(&adj), vec![vec![0]]);
        assert!(is_cyclic(&[0], &adj));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 50_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let comps = sccs(&adj);
        assert_eq!(comps.len(), n);
        assert_eq!(comps[0], vec![n - 1]);
    }
}
