//! Bottom-up interprocedural function summaries and the seeds
//! cross-check.
//!
//! Every function is interpreted once intra-procedurally to collect its
//! call events, the events are resolved into edges, and the condensation
//! is walked in reverse topological order re-interpreting each function
//! with the facts of its (already summarized) callees. Cyclic components
//! start their members at ⊤ and iterate downward to a fixpoint — each
//! iterate over-approximates the least fixpoint, so stopping early at the
//! iteration cap is sound, only imprecise.
//!
//! The derived summaries then face the hand-written contracts in
//! `flow/seeds.rs`: every seed must be **checked, not trusted**. A seed
//! whose derived return interval is provably disjoint from it is a
//! mismatch (CI failure); one the derivation confirms is `confirmed`;
//! the rest stay `trusted` (consistent but not independently provable).

use std::collections::BTreeMap;

use crate::flow::ast::FnDef;
use crate::flow::interval::Interval;
use crate::flow::range::{interpret_fn, CallEvent, CallFacts, CallOracle};
use crate::flow::seeds::Seeds;
use crate::lint::Violation;
use crate::syntax::source::SourceFile;

use super::resolve::{local_type_hints, Resolution, Workspace};
use super::scc;

/// Iteration cap for cyclic components (descending from ⊤, every iterate
/// is sound; the cap only bounds precision).
const SCC_ITERATION_CAP: usize = 8;

/// The derived interprocedural summary of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnSummary {
    /// Join of all non-`Err` returned values; `None` means ⊤ / no
    /// observable return value.
    pub ret: Option<Interval>,
    /// Body contains a panic source, or some workspace callee does
    /// (transitively). External calls are out of scope by choice: std is
    /// assumed panic-free here, so this tracks *workspace* panic paths.
    pub may_panic: bool,
    /// Takes `&mut self` or a `&mut` parameter.
    pub mutates: bool,
    /// Mutates, or transitively calls a workspace function that does.
    /// "Pure" in reports means the negation; external I/O is out of scope.
    pub impure: bool,
    /// Declared return type mentions `Result`.
    pub fallible: bool,
}

/// The interprocedural knowledge handed to the interval interpreter:
/// per-call-site facts and per-function derived parameter intervals.
#[derive(Debug, Default)]
pub struct Oracle {
    /// `(caller path, call line, callee name)` → facts about the call.
    pub facts: BTreeMap<(String, usize, String), CallFacts>,
    /// `(fn path, fn line)` → derived parameter intervals.
    pub params: BTreeMap<(String, usize), BTreeMap<String, Interval>>,
}

impl CallOracle for Oracle {
    fn call_return(&self, path: &str, line: usize, callee: &str) -> Option<CallFacts> {
        self.facts
            .get(&(path.to_owned(), line, callee.to_owned()))
            .copied()
    }

    fn params_for(&self, path: &str, fn_line: usize) -> Option<&BTreeMap<String, Interval>> {
        self.params.get(&(path.to_owned(), fn_line))
    }
}

/// One seed-contract cross-check result.
#[derive(Debug)]
pub struct SeedCheck {
    /// The seed contract being checked (method name or `Type::new`).
    pub contract: String,
    /// Subject implementation, `Type::name` form.
    pub subject: String,
    /// File of the implementation.
    pub path: String,
    /// Line of the implementation.
    pub line: usize,
    /// `confirmed` (derived ⊆ seed), `trusted` (consistent, not
    /// independently provable), or `mismatch` (derived disjoint from
    /// seed — also a violation).
    pub verdict: &'static str,
    /// The derived return interval, when one exists.
    pub derived: Option<Interval>,
    /// The seed interval, for contracts that carry one.
    pub seed: Option<Interval>,
}

/// Everything the summary pass computes.
#[derive(Debug)]
pub struct SummaryResult {
    /// Per-function summaries, parallel to `Workspace::fns`.
    pub summaries: Vec<FnSummary>,
    /// Final call events per function.
    pub events: Vec<Vec<CallEvent>>,
    /// Resolutions parallel to `events`.
    pub resolutions: Vec<Vec<Resolution>>,
    /// The facts + derived-params oracle for downstream passes.
    pub oracle: Oracle,
    /// Seed cross-check results, one per (contract, implementation).
    pub seed_checks: Vec<SeedCheck>,
    /// Mismatches and drift findings (pass `summary`).
    pub violations: Vec<Violation>,
    /// Strongly connected components, reverse topological order.
    pub sccs: Vec<Vec<usize>>,
}

/// Runs the whole summary pass over a parsed workspace.
pub fn compute(ws: &Workspace, seeds: &Seeds, sources: &[SourceFile]) -> SummaryResult {
    let hints: Vec<BTreeMap<String, String>> = ws.fns.iter().map(local_type_hints).collect();
    let paths: Vec<&str> = ws
        .fns
        .iter()
        .map(|f| ws.files[f.file].path.as_str())
        .collect();

    // Phase 1: intra-procedural event collection (no oracle).
    let mut events: Vec<Vec<CallEvent>> = ws
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| interpret_fn(paths[i], &f.def, seeds, None, None).calls)
        .collect();
    let mut resolutions: Vec<Vec<Resolution>> = resolve_all(ws, &hints, &events);

    // Edges over unique resolutions.
    let adj: Vec<Vec<usize>> = resolutions
        .iter()
        .map(|rs| {
            let mut targets: Vec<usize> = rs
                .iter()
                .filter_map(|r| match r {
                    Resolution::Unique(j) => Some(*j),
                    _ => None,
                })
                .collect();
            targets.sort_unstable();
            targets.dedup();
            targets
        })
        .collect();

    let comps = scc::sccs(&adj);

    // Each call site's (path, line, name) key maps to every target it can
    // uniquely resolve to; the oracle serves the join over that set, so a
    // key shared by two same-named sites on one line stays sound.
    let mut site_targets: BTreeMap<(String, usize, String), Vec<usize>> = BTreeMap::new();
    for (i, evs) in events.iter().enumerate() {
        for (k, e) in evs.iter().enumerate() {
            if let Resolution::Unique(j) = resolutions[i][k] {
                let key = (paths[i].to_owned(), e.line, event_name(e).to_owned());
                let targets = site_targets.entry(key).or_default();
                if !targets.contains(&j) {
                    targets.push(j);
                }
            }
        }
    }

    // Phase 2: bottom-up summaries with an SCC fixpoint. Facts refresh
    // after every round, so a cyclic component iterates Jacobi-style:
    // round k's summaries see round k-1's facts, descending from ⊤.
    let mut oracle = Oracle::default();
    let mut summaries: Vec<Option<FnSummary>> = vec![None; ws.fns.len()];
    for comp in &comps {
        let rounds = if scc::is_cyclic(comp, &adj) {
            SCC_ITERATION_CAP
        } else {
            1
        };
        for _ in 0..rounds {
            let mut changed = false;
            for &m in comp {
                let flow = interpret_fn(paths[m], &ws.fns[m].def, seeds, Some(&oracle), None);
                let calls = flow.calls;
                let res = resolve_fn(ws, &hints[m], m, &calls);
                let own_mut = fn_mutates(&ws.fns[m].def);
                let mut may_panic = ws.fns[m].def.panicky;
                let mut impure = own_mut;
                for r in &res {
                    if let Resolution::Unique(j) = r {
                        if let Some(s) = summaries[*j].as_ref() {
                            may_panic |= s.may_panic;
                            impure |= s.impure;
                        }
                    }
                }
                let next = FnSummary {
                    ret: flow.ret,
                    may_panic,
                    mutates: own_mut,
                    impure,
                    fallible: ws.fns[m].def.fallible,
                };
                if summaries[m].as_ref() != Some(&next) {
                    changed = true;
                }
                summaries[m] = Some(next);
                events[m] = calls;
                resolutions[m] = res;
            }
            refresh_facts(ws, &site_targets, &summaries, &mut oracle);
            if !changed {
                break;
            }
        }
    }
    let summaries: Vec<FnSummary> = summaries.into_iter().map(Option::unwrap).collect();

    // Phase 3: a final forward pass under the complete facts map, so the
    // recorded argument intervals are the sharpest available before
    // deriving parameter envelopes from them.
    for (i, f) in ws.fns.iter().enumerate() {
        let flow = interpret_fn(paths[i], &f.def, seeds, Some(&oracle), None);
        events[i] = flow.calls;
        resolutions[i] = resolve_fn(ws, &hints[i], i, &events[i]);
    }

    derive_params(ws, &events, &resolutions, &mut oracle);

    let mut violations = Vec::new();
    let seed_checks = cross_check_seeds(ws, seeds, &summaries, sources, &mut violations);

    SummaryResult {
        summaries,
        events,
        resolutions,
        oracle,
        seed_checks,
        violations,
        sccs: comps,
    }
}

fn fn_mutates(def: &FnDef) -> bool {
    def.self_mut || def.params.iter().any(|p| p.by_mut_ref)
}

fn resolve_all(
    ws: &Workspace,
    hints: &[BTreeMap<String, String>],
    events: &[Vec<CallEvent>],
) -> Vec<Vec<Resolution>> {
    events
        .iter()
        .enumerate()
        .map(|(i, evs)| resolve_fn(ws, &hints[i], i, evs))
        .collect()
}

fn resolve_fn(
    ws: &Workspace,
    hints: &BTreeMap<String, String>,
    i: usize,
    events: &[CallEvent],
) -> Vec<Resolution> {
    let info = &ws.fns[i];
    events
        .iter()
        .map(|e| {
            let recv_ty = e
                .recv
                .as_ref()
                .and_then(|r| hints.get(r))
                .map(String::as_str);
            ws.resolve(info.file, info.self_type.as_deref(), e, recv_ty)
        })
        .collect()
}

/// Rebuilds the facts map from the current summaries: each site key gets
/// the join over its possible targets, with ⊤ for targets not yet
/// summarized (sound start for in-progress components).
fn refresh_facts(
    ws: &Workspace,
    site_targets: &BTreeMap<(String, usize, String), Vec<usize>>,
    summaries: &[Option<FnSummary>],
    oracle: &mut Oracle,
) {
    oracle.facts.clear();
    for (key, targets) in site_targets {
        let mut ret: Option<Interval> = None;
        let mut mutates = false;
        for &t in targets {
            let r = summaries[t]
                .as_ref()
                .and_then(|s| s.ret)
                .unwrap_or(Interval::TOP);
            ret = Some(match ret {
                Some(a) => a.join(&r),
                None => r,
            });
            mutates |= ws.fns[t].def.self_mut;
        }
        oracle.facts.insert(
            key.clone(),
            CallFacts {
                ret: ret.unwrap_or(Interval::TOP),
                mutates_receiver: mutates,
            },
        );
    }
}

/// Derives parameter envelopes under closed-world accounting: a function's
/// parameter interval is the join of the corresponding argument intervals
/// over **all** call sites, which is only sound when every textual mention
/// of the name is accounted for as its definition, a `use` import, or a
/// uniquely resolved call event.
fn derive_params(
    ws: &Workspace,
    events: &[Vec<CallEvent>],
    resolutions: &[Vec<Resolution>],
    oracle: &mut Oracle,
) {
    for (name, defs) in &ws.by_name {
        if defs.len() != 1 {
            continue;
        }
        let t = defs[0];
        let def = &ws.fns[t].def;
        if def.params.is_empty() {
            continue;
        }
        let mut sites: Vec<(&CallEvent, &Resolution)> = Vec::new();
        for (i, evs) in events.iter().enumerate() {
            for (k, e) in evs.iter().enumerate() {
                if event_name(e) == name {
                    sites.push((e, &resolutions[i][k]));
                }
            }
        }
        if sites.is_empty() {
            continue;
        }
        let accounted = ws.def_counts.get(name).copied().unwrap_or(0)
            + ws.use_mentions.get(name).copied().unwrap_or(0)
            + sites.len();
        if ws.mentions.get(name).copied().unwrap_or(0) != accounted {
            continue;
        }
        let aligned = sites.iter().all(|(e, r)| {
            matches!(r, Resolution::Unique(j) if *j == t)
                && e.is_method == def.has_self
                && e.args.len() == def.params.len()
        });
        if !aligned {
            continue;
        }
        let mut env = BTreeMap::new();
        for (k, p) in def.params.iter().enumerate() {
            let Some(pname) = &p.name else { continue };
            let joined = sites
                .iter()
                .map(|(e, _)| e.args[k])
                .reduce(|a, b| a.join(&b))
                .unwrap_or(Interval::TOP);
            if !joined.is_top() {
                env.insert(pname.clone(), joined);
            }
        }
        if !env.is_empty() {
            let path = ws.files[ws.fns[t].file].path.clone();
            oracle.params.insert((path, def.line), env);
        }
    }
}

/// The callee name of an event (last path segment; the single segment for
/// methods).
pub fn event_name(e: &CallEvent) -> &str {
    e.path.last().map_or("", String::as_str)
}

/// `a ⊆ b` over the interval lattice (NaN is a member iff the flag is
/// set; an open infinite bound means "unbounded but finite").
#[allow(clippy::float_cmp)]
pub fn subset(a: &Interval, b: &Interval) -> bool {
    if a.nan && !b.nan {
        return false;
    }
    let lo_ok = b.lo < a.lo || (b.lo == a.lo && (!b.lo_open || a.lo_open));
    let hi_ok = b.hi > a.hi || (b.hi == a.hi && (!b.hi_open || a.hi_open));
    lo_ok && hi_ok
}

/// `a ∩ b = ∅` — no concrete value lies in both.
#[allow(clippy::float_cmp)]
pub fn disjoint(a: &Interval, b: &Interval) -> bool {
    if a.nan && b.nan {
        return false;
    }
    let a_below = a.hi < b.lo || (a.hi == b.lo && (a.hi_open || b.lo_open));
    let b_below = b.hi < a.lo || (b.hi == a.lo && (b.hi_open || a.lo_open));
    a_below || b_below
}

/// Cross-checks every hand-written seed contract against the derived
/// summaries. Seeds are *checked, not trusted*: a contract that no longer
/// matches any implementation is drift, and a derived summary provably
/// disjoint from its seed is a mismatch — both are violations.
fn cross_check_seeds(
    ws: &Workspace,
    seeds: &Seeds,
    summaries: &[FnSummary],
    sources: &[SourceFile],
    violations: &mut Vec<Violation>,
) -> Vec<SeedCheck> {
    let mut checks = Vec::new();
    for &contract in Seeds::contract_method_names() {
        let seed = seeds.method_summary(contract);
        let impls: Vec<usize> = ws
            .by_name
            .get(contract)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| ws.fns[i].def.has_self)
                    .collect()
            })
            .unwrap_or_default();
        if impls.is_empty() {
            violations.push(Violation {
                pass: "summary",
                path: "crates/solarcore/src/invariants.rs".to_owned(),
                line: 1,
                message: format!(
                    "seed contract `{contract}` matches no workspace method — the seed has drifted from the code"
                ),
            });
            continue;
        }
        for i in impls {
            let derived = summaries[i].ret;
            let verdict = match (&derived, &seed) {
                (Some(d), Some(s)) if disjoint(d, s) => "mismatch",
                (Some(d), Some(s)) if subset(d, s) => "confirmed",
                _ => "trusted",
            };
            let path = ws.files[ws.fns[i].file].path.clone();
            let line = ws.fns[i].def.line;
            if verdict == "mismatch" {
                violations.push(Violation {
                    pass: "summary",
                    path: path.clone(),
                    line,
                    message: format!(
                        "derived return interval {} of `{}` is disjoint from seed contract `{contract}` {} — seed or code is wrong",
                        derived.expect("mismatch requires derived"),
                        ws.fns[i].qname(),
                        seed.expect("mismatch requires seed"),
                    ),
                });
            }
            checks.push(SeedCheck {
                contract: contract.to_owned(),
                subject: ws.fns[i].qname(),
                path,
                line,
                verdict,
                derived,
                seed,
            });
        }
    }
    checks.extend(check_unit_constructors(ws, sources, violations));
    checks.sort_by(|a, b| (&a.contract, &a.path, a.line).cmp(&(&b.contract, &b.path, b.line)));
    checks
}

/// Verifies the `transparent_constructor` seed: each unit type must be
/// declared in a file whose `fn new` is literally `Self(value)` — the
/// shape the macro-generated newtype constructors share. A unit type with
/// no such backing file means the seed wrongly treats an arbitrary
/// constructor as the identity.
fn check_unit_constructors(
    ws: &Workspace,
    sources: &[SourceFile],
    violations: &mut Vec<Violation>,
) -> Vec<SeedCheck> {
    use crate::flow::ast::{Expr, Stmt};
    // Files containing a transparent `new`.
    let mut transparent_files: Vec<usize> = ws
        .fns
        .iter()
        .filter(|f| {
            if f.def.name != "new" || f.def.params.len() != 1 {
                return false;
            }
            let Some(p) = f.def.params[0].name.as_deref() else {
                return false;
            };
            matches!(
                f.def.body.as_slice(),
                [Stmt::Expr(Expr::Call { path, args, .. })]
                    if path.last().is_some_and(|s| s == "Self")
                        && matches!(args.as_slice(),
                            [Expr::Path(segs)] if segs.len() == 1 && segs[0] == p)
            )
        })
        .map(|f| f.file)
        .collect();
    transparent_files.dedup();

    let mut checks = Vec::new();
    for &ty in Seeds::unit_type_names() {
        let backing = transparent_files.iter().copied().find(|&fi| {
            sources
                .iter()
                .find(|s| s.path == ws.files[fi].path)
                .is_some_and(|s| s.code.iter().any(|l| l.contains(ty)))
        });
        let (verdict, path, line) = match backing {
            Some(fi) => ("confirmed", ws.files[fi].path.clone(), 1),
            None => ("mismatch", "crates/pv/src/units.rs".to_owned(), 1),
        };
        if verdict == "mismatch" {
            violations.push(Violation {
                pass: "summary",
                path: path.clone(),
                line,
                message: format!(
                    "unit type `{ty}` has no transparent `new` (`Self(value)`) backing the transparent-constructor seed"
                ),
            });
        }
        checks.push(SeedCheck {
            contract: format!("{ty}::new"),
            subject: format!("{ty}::new"),
            path,
            line,
            verdict,
            derived: None,
            seed: None,
        });
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> (Workspace, SummaryResult) {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let ws = Workspace::build(&sources);
        let seeds = Seeds::for_tests();
        let result = compute(&ws, &seeds, &sources);
        (ws, result)
    }

    #[test]
    fn return_intervals_flow_through_calls() {
        let (ws, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "fn base() -> f64 { 2.0 }\nfn wrap() -> f64 { base() + 1.0 }\n",
        )]);
        let base = ws.by_name["base"][0];
        let wrap = ws.by_name["wrap"][0];
        assert_eq!(r.summaries[base].ret.unwrap().as_const(), Some(2.0));
        assert_eq!(r.summaries[wrap].ret.unwrap().as_const(), Some(3.0));
    }

    #[test]
    fn recursion_reaches_a_sound_fixpoint() {
        let (ws, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "fn tick(n: f64) -> f64 { if n > 0.0 { tick(n - 1.0) } else { 0.0 } }\n",
        )]);
        let t = ws.by_name["tick"][0];
        // One cyclic SCC; the derived return must contain the actual 0.0.
        assert!(r.sccs.iter().any(|c| c == &vec![t]));
        let ret = r.summaries[t].ret.unwrap();
        assert!(ret.lo <= 0.0 && 0.0 <= ret.hi);
    }

    #[test]
    fn panic_propagates_transitively() {
        let (ws, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "fn boom() { panic!(\"no\"); }\nfn mid() { boom(); }\nfn top() { mid(); }\nfn clean() -> f64 { 1.0 }\n",
        )]);
        assert!(r.summaries[ws.by_name["top"][0]].may_panic);
        assert!(r.summaries[ws.by_name["mid"][0]].may_panic);
        assert!(!r.summaries[ws.by_name["clean"][0]].may_panic);
    }

    #[test]
    fn mutation_makes_callers_impure() {
        let (ws, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "fn bump(x: &mut f64) { }\nfn driver() { bump(v); }\nfn calm() -> f64 { 0.0 }\n",
        )]);
        let bump = ws.by_name["bump"][0];
        let driver = ws.by_name["driver"][0];
        assert!(r.summaries[bump].mutates);
        assert!(r.summaries[driver].impure);
        assert!(!r.summaries[driver].mutates);
        assert!(!r.summaries[ws.by_name["calm"][0]].impure);
    }

    #[test]
    fn closed_world_params_derive_from_all_sites() {
        let (ws, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "fn sink(w: f64) -> f64 { w }\nfn a() { sink(10.0); }\nfn b() { sink(60.0); }\n",
        )]);
        let t = ws.by_name["sink"][0];
        let env = &r.oracle.params[&("crates/a/src/lib.rs".to_owned(), ws.fns[t].def.line)];
        let w = env["w"];
        assert!((w.lo, w.hi) == (10.0, 60.0));
    }

    #[test]
    fn unaccounted_mentions_block_param_derivation() {
        // `sink` is also mentioned as a value (function pointer), so the
        // closed-world count cannot balance and no envelope is derived.
        let (ws, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "fn sink(w: f64) -> f64 { w }\nfn a() { sink(10.0); }\nfn b() { let f = sink; }\n",
        )]);
        let t = ws.by_name["sink"][0];
        assert!(!r
            .oracle
            .params
            .contains_key(&("crates/a/src/lib.rs".to_owned(), ws.fns[t].def.line)));
    }

    #[test]
    fn seed_mismatch_is_a_violation() {
        // `efficiency` must be in (0, 1]; a method returning a plain -5
        // derives a disjoint interval.
        let (_, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "struct P;\nimpl P {\n    fn efficiency(&self) -> f64 { -5.0 }\n}\n",
        )]);
        assert!(r
            .seed_checks
            .iter()
            .any(|c| c.contract == "efficiency" && c.verdict == "mismatch"));
        assert!(r
            .violations
            .iter()
            .any(|v| v.pass == "summary" && v.message.contains("efficiency")));
    }

    #[test]
    fn seed_within_contract_is_confirmed() {
        let (_, r) = analyze(&[(
            "crates/a/src/lib.rs",
            "struct P;\nimpl P {\n    fn efficiency(&self) -> f64 { 0.5 }\n}\n",
        )]);
        assert!(r
            .seed_checks
            .iter()
            .any(|c| c.contract == "efficiency" && c.verdict == "confirmed"));
    }

    #[test]
    fn interval_subset_and_disjoint_respect_open_bounds() {
        let closed = Interval::closed(0.0, 1.0);
        let open_hi = Interval {
            lo: 0.0,
            hi: 1.0,
            lo_open: false,
            hi_open: true,
            nan: false,
        };
        assert!(subset(&open_hi, &closed));
        assert!(!subset(&closed, &open_hi));
        let above = Interval {
            lo: 1.0,
            hi: 2.0,
            lo_open: false,
            hi_open: false,
            nan: false,
        };
        // [0,1) and [1,2] share no point; [0,1] and [1,2] share 1.
        assert!(disjoint(&open_hi, &above));
        assert!(!disjoint(&closed, &above));
    }
}
