//! Reachability over the call graph and the dead-`pub` report.
//!
//! Roots are everything with an external entry point: `main` functions,
//! `#[cfg(test)]` functions, and every function defined outside the
//! library trees (integration tests, benches, examples, binaries). The
//! traversal follows unique **and** candidate edges — an ambiguous call
//! keeps all its possible targets alive, so unreachability is never an
//! artifact of resolver imprecision.
//!
//! A `pub` library function that the traversal cannot reach is only
//! reported when the textual closed-world check agrees: its name must
//! occur *nowhere* in the workspace beyond its own definitions. Trait
//! methods invoked generically, macro references and re-exports all leave
//! extra mentions, so they can never be misreported.

use crate::lint::Violation;

use super::resolve::{Resolution, Workspace};

/// The reachability report.
#[derive(Debug)]
pub struct ReachReport {
    /// Number of root functions.
    pub roots: usize,
    /// Number of reachable functions (roots included).
    pub reachable: usize,
    /// `Type::name @ path:line` of unreachable pub library functions that
    /// pass the textual closed-world check.
    pub dead_pub: Vec<String>,
}

/// Runs the traversal. Dead-pub findings use pass `reach`.
pub fn check(ws: &Workspace, resolutions: &[Vec<Resolution>]) -> (ReachReport, Vec<Violation>) {
    let n = ws.fns.len();
    let mut reachable = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut roots = 0usize;
    for (i, f) in ws.fns.iter().enumerate() {
        let is_root = !ws.files[f.file].in_crate_src || f.def.name == "main" || f.def.in_test;
        if is_root {
            roots += 1;
            reachable[i] = true;
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        for r in &resolutions[i] {
            let targets: &[usize] = match r {
                Resolution::Unique(j) => std::slice::from_ref(j),
                Resolution::Candidates(js) => js,
                Resolution::External => &[],
            };
            for &j in targets {
                if !reachable[j] {
                    reachable[j] = true;
                    stack.push(j);
                }
            }
        }
    }

    let mut dead_pub = Vec::new();
    let mut violations = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if reachable[i] || !f.def.is_pub || !ws.files[f.file].in_crate_src {
            continue;
        }
        let name = &f.def.name;
        let mentions = ws.mentions.get(name).copied().unwrap_or(0);
        let defs = ws.def_counts.get(name).copied().unwrap_or(0);
        if mentions != defs {
            continue;
        }
        let path = &ws.files[f.file].path;
        dead_pub.push(format!("{} @ {path}:{}", f.qname(), f.def.line));
        violations.push(Violation {
            pass: "reach",
            path: path.clone(),
            line: f.def.line,
            message: format!(
                "`{}` is pub but unreachable from any binary, test or bench root, and its name appears nowhere else in the workspace",
                f.qname()
            ),
        });
    }
    dead_pub.sort();

    (
        ReachReport {
            roots,
            reachable: reachable.iter().filter(|r| **r).count(),
            dead_pub,
        },
        violations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::range::interpret_fn;
    use crate::flow::seeds::Seeds;
    use crate::graph::resolve::local_type_hints;
    use crate::syntax::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> (Workspace, ReachReport, Vec<Violation>) {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let ws = Workspace::build(&sources);
        let seeds = Seeds::for_tests();
        let resolutions: Vec<Vec<Resolution>> = ws
            .fns
            .iter()
            .map(|f| {
                let path = &ws.files[f.file].path;
                let hints = local_type_hints(f);
                interpret_fn(path, &f.def, &seeds, None, None)
                    .calls
                    .iter()
                    .map(|e| {
                        let recv_ty = e
                            .recv
                            .as_ref()
                            .and_then(|r| hints.get(r))
                            .map(String::as_str);
                        ws.resolve(f.file, f.self_type.as_deref(), e, recv_ty)
                    })
                    .collect()
            })
            .collect();
        let (report, violations) = check(&ws, &resolutions);
        (ws, report, violations)
    }

    #[test]
    fn test_roots_keep_their_callees_alive() {
        let (_, report, violations) = run(&[(
            "crates/a/src/lib.rs",
            "pub fn used() -> f64 { 1.0 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { used(); }\n}\n",
        )]);
        assert!(report.dead_pub.is_empty(), "{violations:?}");
        assert_eq!(report.reachable, 2);
    }

    #[test]
    fn unmentioned_pub_fn_is_dead() {
        let (_, report, violations) = run(&[(
            "crates/a/src/lib.rs",
            "pub fn orphan() -> f64 { 1.0 }\nfn main() {}\n",
        )]);
        assert_eq!(report.dead_pub.len(), 1);
        assert!(report.dead_pub[0].contains("orphan"));
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn extra_textual_mentions_suppress_the_report() {
        // `helper` is unreachable but re-exported; the mention count
        // keeps it off the dead list.
        let (_, report, _) = run(&[(
            "crates/a/src/lib.rs",
            "pub fn helper() -> f64 { 1.0 }\npub use helper as h;\nfn main() {}\n",
        )]);
        assert!(report.dead_pub.is_empty());
    }

    #[test]
    fn bench_files_are_roots() {
        let (_, report, _) = run(&[
            ("crates/a/src/lib.rs", "pub fn hot() -> f64 { 1.0 }\n"),
            ("crates/a/benches/b.rs", "fn main() { hot(); }\n"),
        ]);
        assert!(report.dead_pub.is_empty());
        assert_eq!(report.reachable, 2);
    }
}
