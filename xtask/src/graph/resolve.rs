//! The workspace model behind the call graph: every parsed function with
//! its enclosing module path, `impl` self-type, and per-file `use` maps —
//! plus the conservative call-site resolver built on them.
//!
//! Resolution is deliberately biased toward **refusing to resolve**: a
//! call only becomes a graph edge when the target is unambiguous under
//! the name, the (use-expanded) path, the receiver's self-type where one
//! is derivable, and a deny-list of std-colliding names. An unresolved
//! call stays [`Resolution::External`] and contributes ⊤ facts — so a
//! resolver shortfall can only lose precision, never soundness.

use std::collections::BTreeMap;

use crate::flow::ast::{self, Expr, FnDef, Pat, Stmt};
use crate::flow::range::CallEvent;
use crate::syntax::lexer::{lex, matching_close, Tok, Token};
use crate::syntax::source::SourceFile;

/// Method names that collide with std/core inherent or trait methods: a
/// workspace method with one of these names is never claimed as the
/// unique target of an unhinted method call.
pub const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "as_str",
    "borrow",
    "borrow_mut",
    "ceil",
    "chain",
    "chunks",
    "clamp",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "err",
    "exp",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "from_bits",
    "get",
    "get_mut",
    "hash",
    "hypot",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "ln",
    "lock",
    "log10",
    "map",
    "map_err",
    "max",
    "max_by",
    "min",
    "min_by",
    "mul_add",
    "next",
    "ok",
    "or",
    "or_else",
    "parse",
    "partial_cmp",
    "position",
    "powf",
    "powi",
    "push",
    "push_str",
    "read",
    "rem_euclid",
    "remove",
    "replace",
    "rev",
    "round",
    "signum",
    "skip",
    "sort",
    "sort_by",
    "split",
    "sqrt",
    "sum",
    "swap",
    "take",
    "to_bits",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trunc",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "windows",
    "write",
    "zip",
];

/// Free-function names too generic to claim from a bare (unqualified)
/// call even when the workspace defines exactly one.
const FREE_FN_DENY: &[&str] = &[
    "abs", "clamp", "default", "drop", "format", "from", "into", "main", "max", "min", "new",
    "replace", "swap", "take",
];

/// One source file's resolution context.
#[derive(Debug)]
pub struct FileInfo {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// `use` aliases visible in the file: last/`as` segment → full path.
    pub uses: BTreeMap<String, Vec<String>>,
    /// Base paths of `use …::*;` imports.
    pub globs: Vec<Vec<String>>,
    /// Module path of items defined here (`crates/pv/src/units.rs` →
    /// `[pv, units]`; non-library files use their file stem).
    pub module: Vec<String>,
    /// `true` for library sources under `crates/*/src` (excluding
    /// `src/bin/`) — the set the dead-pub report polices.
    pub in_crate_src: bool,
}

/// One parsed function with its resolution context.
#[derive(Debug)]
pub struct FnInfo {
    /// The parsed definition (signature + body).
    pub def: FnDef,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Self type of the innermost enclosing `impl`, when inside one.
    pub self_type: Option<String>,
}

impl FnInfo {
    /// Display name: `Type::name` for methods/assoc fns, `name` otherwise.
    pub fn qname(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// Outcome of resolving one call event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Exactly one workspace function is the target.
    Unique(usize),
    /// Several same-named workspace functions could be (used by
    /// reachability, never for facts).
    Candidates(Vec<usize>),
    /// Out of the workspace (std, vendored) or too ambiguous to claim.
    External,
}

/// The parsed workspace: files, functions, and name-occurrence accounting.
#[derive(Debug)]
pub struct Workspace {
    /// Per-file resolution context, indexed by [`FnInfo::file`].
    pub files: Vec<FileInfo>,
    /// Every parsed function.
    pub fns: Vec<FnInfo>,
    /// Function name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Total ident-token occurrences per name, across all files.
    pub mentions: BTreeMap<String, usize>,
    /// Ident-token occurrences inside `use` statements, per name.
    pub use_mentions: BTreeMap<String, usize>,
    /// `fn <name>` definition tokens, per name.
    pub def_counts: BTreeMap<String, usize>,
}

impl Workspace {
    /// Parses every source file into the workspace model.
    pub fn build(sources: &[SourceFile]) -> Workspace {
        let mut files = Vec::new();
        let mut fns: Vec<FnInfo> = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut mentions: BTreeMap<String, usize> = BTreeMap::new();
        let mut use_mentions: BTreeMap<String, usize> = BTreeMap::new();
        let mut def_counts: BTreeMap<String, usize> = BTreeMap::new();

        for src in sources {
            let tokens = lex(src);
            let (uses, globs) = parse_uses(&tokens, &mut use_mentions);
            let spans = impl_spans(&tokens);
            let file_ix = files.len();
            files.push(FileInfo {
                path: src.path.clone(),
                uses,
                globs,
                module: module_of(&src.path),
                in_crate_src: is_crate_src(&src.path),
            });
            for t in &tokens {
                if let Tok::Ident(w) = &t.tok {
                    *mentions.entry(w.clone()).or_insert(0) += 1;
                }
            }
            for def in ast::parse_fns(src) {
                // Innermost impl span containing the fn line.
                let self_type = spans
                    .iter()
                    .filter(|s| s.open_line <= def.line && def.line <= s.close_line)
                    .min_by_key(|s| s.close_line - s.open_line)
                    .map(|s| s.self_type.clone());
                *def_counts.entry(def.name.clone()).or_insert(0) += 1;
                by_name.entry(def.name.clone()).or_default().push(fns.len());
                fns.push(FnInfo {
                    def,
                    file: file_ix,
                    self_type,
                });
            }
        }
        Workspace {
            files,
            fns,
            by_name,
            mentions,
            use_mentions,
            def_counts,
        }
    }

    /// Resolves one call event observed in `file`, from a function whose
    /// self type is `caller_self` (substituted for `Self` paths), with an
    /// optional receiver type hint for method calls.
    pub fn resolve(
        &self,
        file: usize,
        caller_self: Option<&str>,
        event: &CallEvent,
        recv_type: Option<&str>,
    ) -> Resolution {
        if event.is_method {
            return self.resolve_method(&event.path[0], recv_type);
        }
        let mut segs: Vec<String> = event.path.clone();
        if segs.first().is_some_and(|s| s == "Self") {
            if let Some(t) = caller_self {
                segs[0] = t.to_owned();
            }
        }
        // Expand a leading `use` alias.
        if let Some(full) = self.files[file].uses.get(&segs[0]) {
            let mut expanded = full.clone();
            expanded.extend(segs[1..].iter().cloned());
            segs = expanded;
        }
        let Some(name) = segs.last().cloned() else {
            return Resolution::External;
        };
        if segs.len() == 1 {
            return self.resolve_bare(file, &name);
        }
        let prefix: Vec<&str> = segs[..segs.len() - 1]
            .iter()
            .map(String::as_str)
            .filter(|s| *s != "crate" && *s != "self" && *s != "super")
            .collect();
        // `Type::assoc(…)`: the segment before the name is a type.
        if let Some(ty) = prefix.last().filter(|s| starts_upper(s)) {
            let cands: Vec<usize> = self
                .named(&name)
                .iter()
                .copied()
                .filter(|&i| self.fns[i].self_type.as_deref() == Some(*ty))
                .collect();
            return pick(cands);
        }
        // Module-qualified: the definition's module path must end with the
        // written prefix.
        let cands: Vec<usize> = self
            .named(&name)
            .iter()
            .copied()
            .filter(|&i| {
                let m = &self.files[self.fns[i].file].module;
                m.len() >= prefix.len()
                    && m[m.len() - prefix.len()..]
                        .iter()
                        .zip(&prefix)
                        .all(|(a, b)| a == b)
            })
            .collect();
        pick(cands)
    }

    fn resolve_method(&self, name: &str, recv_type: Option<&str>) -> Resolution {
        if STD_METHODS.contains(&name) {
            return Resolution::External;
        }
        let cands: Vec<usize> = self
            .named(name)
            .iter()
            .copied()
            .filter(|&i| self.fns[i].def.has_self)
            .collect();
        if let Some(ty) = recv_type {
            let hinted: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].self_type.as_deref() == Some(ty))
                .collect();
            // A hint that matches nothing means the receiver's methods are
            // out of the workspace — do not fall back to name matching.
            return pick(hinted);
        }
        pick(cands)
    }

    fn resolve_bare(&self, file: usize, name: &str) -> Resolution {
        if FREE_FN_DENY.contains(&name) {
            return Resolution::External;
        }
        let cands: Vec<usize> = self
            .named(name)
            .iter()
            .copied()
            .filter(|&i| !self.fns[i].def.has_self)
            .collect();
        // Same-file definitions shadow imports.
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| self.fns[i].file == file)
            .collect();
        if local.len() == 1 {
            return Resolution::Unique(local[0]);
        }
        pick(cands)
    }

    fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

fn pick(cands: Vec<usize>) -> Resolution {
    match cands.len() {
        0 => Resolution::External,
        1 => Resolution::Unique(cands[0]),
        _ => Resolution::Candidates(cands),
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

/// `true` for library sources under `crates/*/src`, excluding binaries.
fn is_crate_src(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/") && !path.contains("/src/bin/")
}

/// Module path of the items a file defines.
fn module_of(path: &str) -> Vec<String> {
    let parts: Vec<&str> = path.split('/').collect();
    // crates/<c>/src/a/b.rs → [<c>, a, b]; lib.rs/mod.rs/main.rs drop
    // their own segment.
    if parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" && !path.contains("/src/bin/")
    {
        let mut m = vec![parts[1].to_owned()];
        for p in &parts[3..] {
            let stem = p.trim_end_matches(".rs");
            if stem == "lib" || stem == "mod" || stem == "main" {
                continue;
            }
            m.push(stem.to_owned());
        }
        return m;
    }
    // Binaries, tests, benches, examples: each file is its own crate root.
    let stem = parts
        .last()
        .map(|p| p.trim_end_matches(".rs"))
        .unwrap_or_default();
    vec![stem.to_owned()]
}

/// One `impl` block's line span and self type.
#[derive(Debug)]
struct ImplSpan {
    open_line: usize,
    close_line: usize,
    self_type: String,
}

/// Scans the token stream for `impl` blocks: `impl<…> Type {…}` and
/// `impl<…> Trait for Type {…}` — the self type is the path segment
/// immediately before the body (after `for` when present).
fn impl_spans(tokens: &[Token]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_op("<")) {
            j = ast::skip_angles(tokens, j);
        }
        // Walk to the body `{`, remembering the last type-ish ident seen
        // at the top level (a `for` resets it to the type being implemented
        // on; generic argument lists are skipped).
        let mut self_type: Option<String> = None;
        let mut found = None;
        while let Some(t) = tokens.get(j) {
            match &t.tok {
                Tok::Op("{") => {
                    found = Some(j);
                    break;
                }
                Tok::Op(";") => break,
                Tok::Op("<") => {
                    j = ast::skip_angles(tokens, j);
                    continue;
                }
                Tok::Ident(w) if w == "for" => {
                    self_type = None;
                }
                Tok::Ident(w) if w == "where" => {
                    // `where` clauses may mention other types; stop
                    // updating and scan on for the `{`.
                    while let Some(t) = tokens.get(j) {
                        if t.is_op("{") {
                            break;
                        }
                        if t.is_op("<") {
                            j = ast::skip_angles(tokens, j);
                            continue;
                        }
                        j += 1;
                    }
                    continue;
                }
                Tok::Ident(w) if starts_upper(w) => {
                    self_type = Some(w.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let (Some(open), Some(ty)) = (found, self_type) else {
            i = j.max(i + 1);
            continue;
        };
        let Some(close) = matching_close(tokens, open) else {
            break;
        };
        out.push(ImplSpan {
            open_line: tokens[open].line,
            close_line: tokens[close].line,
            self_type: ty,
        });
        // Continue inside: nested impls in fn bodies are found too.
        i = open + 1;
    }
    out
}

/// Parses every `use` statement into alias and glob maps, counting the
/// ident tokens it contains into `use_mentions`.
fn parse_uses(
    tokens: &[Token],
    use_mentions: &mut BTreeMap<String, usize>,
) -> (BTreeMap<String, Vec<String>>, Vec<Vec<String>>) {
    let mut aliases = BTreeMap::new();
    let mut globs = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("use") {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut end = start;
        while end < tokens.len() && !tokens[end].is_op(";") {
            end += 1;
        }
        for t in &tokens[start..end] {
            if let Tok::Ident(w) = &t.tok {
                if w != "as" && w != "crate" && w != "self" && w != "super" {
                    *use_mentions.entry(w.clone()).or_insert(0) += 1;
                }
            }
        }
        parse_use_tree(&tokens[start..end], &[], &mut aliases, &mut globs);
        i = end + 1;
    }
    (aliases, globs)
}

/// Recursively expands one use tree (`a::b::{c, d as e, f::*}`).
fn parse_use_tree(
    toks: &[Token],
    prefix: &[String],
    aliases: &mut BTreeMap<String, Vec<String>>,
    globs: &mut Vec<Vec<String>>,
) {
    let mut path: Vec<String> = prefix.to_vec();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(w) if w == "as" => {
                if let Some(alias) = toks.get(i + 1).and_then(Token::ident) {
                    aliases.insert(alias.to_owned(), path.clone());
                }
                return;
            }
            Tok::Ident(w) => {
                if w != "crate" && w != "self" && w != "super" {
                    path.push(w.clone());
                }
                i += 1;
            }
            Tok::Op("::") => {
                i += 1;
            }
            Tok::Op("*") => {
                globs.push(path);
                return;
            }
            Tok::Op("{") => {
                let Some(close) = matching_close(toks, i) else {
                    return;
                };
                for part in split_commas(&toks[i + 1..close]) {
                    parse_use_tree(part, &path, aliases, globs);
                }
                return;
            }
            _ => {
                i += 1;
            }
        }
    }
    if let Some(last) = path.last().cloned() {
        aliases.insert(last, path);
    }
}

/// Splits on commas at bracket depth 0.
fn split_commas(tokens: &[Token]) -> Vec<&[Token]> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
            Tok::Op(",") if depth == 0 => {
                parts.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < tokens.len() {
        parts.push(&tokens[start..]);
    }
    parts
}

/// Types whose shared-reference mutation is unsynchronized — capturing a
/// local of such a type in a parallel closure is a sharing violation.
pub const INTERIOR_MUT_TYPES: &[&str] = &["Cell", "Rc", "RefCell", "UnsafeCell"];

/// Best-effort local-name → type-name hints for one function: parameter
/// type ascriptions, `Type::ctor(…)` initializers, and the `self`
/// receiver. Used for method-receiver disambiguation and the
/// interior-mutability capture check; a missing hint resolves to
/// [`Resolution::External`], never a wrong edge.
pub fn local_type_hints(f: &FnInfo) -> BTreeMap<String, String> {
    let mut hints = BTreeMap::new();
    if let Some(t) = &f.self_type {
        hints.insert("self".to_owned(), t.clone());
    }
    for p in &f.def.params {
        if let Some(name) = &p.name {
            if let Some(ty) = first_upper_word(&p.ty) {
                hints.insert(name.clone(), ty);
            }
        }
    }
    for_each_stmt(&f.def.body, &mut |stmt| {
        if let Stmt::Let {
            pat: Pat::Bind(name),
            init: Some(init),
        } = stmt
        {
            if let Some(ty) = ctor_type(init) {
                hints.insert(name.clone(), ty);
            }
        }
    });
    hints
}

/// The first capitalized word of a rendered type string (`& mut Vec < f64 >`
/// → `Vec`).
fn first_upper_word(ty: &str) -> Option<String> {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .find(|w| starts_upper(w))
        .map(str::to_owned)
}

/// The constructed type of `Type::ctor(…)` initializers (looking through
/// a trailing `?`/method chain is deliberately not attempted).
fn ctor_type(e: &Expr) -> Option<String> {
    match e {
        Expr::Call { path, .. } if path.len() >= 2 => {
            let ty = &path[path.len() - 2];
            starts_upper(ty).then(|| ty.clone())
        }
        Expr::Try(inner) => ctor_type(inner),
        _ => None,
    }
}

/// Depth-first visit of every statement in `stmts`, including nested
/// bodies and value-position blocks/closures. The callback receives
/// references at the lifetime of `stmts`, so it may retain them.
pub fn for_each_stmt<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    for_each_stmt_expr(e, f);
                }
            }
            Stmt::LetElse {
                init, else_body, ..
            } => {
                for_each_stmt_expr(init, f);
                for_each_stmt(else_body, f);
            }
            Stmt::Assign { value, .. } => for_each_stmt_expr(value, f),
            Stmt::Expr(e) => for_each_stmt_expr(e, f),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                for_each_stmt_expr(cond, f);
                for_each_stmt(then_body, f);
                for_each_stmt(else_body, f);
            }
            Stmt::While { cond, body } => {
                for_each_stmt_expr(cond, f);
                for_each_stmt(body, f);
            }
            Stmt::Loop { body } | Stmt::Block(body) => for_each_stmt(body, f),
            Stmt::For { iter, body, .. } => {
                for_each_stmt_expr(iter, f);
                for_each_stmt(body, f);
            }
            Stmt::Return(Some(e)) => for_each_stmt_expr(e, f),
            Stmt::Return(None)
            | Stmt::Break
            | Stmt::Continue
            | Stmt::Havoc(_)
            | Stmt::Opaque { .. } => {}
        }
    }
}

/// Visits statements nested in an expression (blocks, closures, arms).
fn for_each_stmt_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Stmt)) {
    match e {
        Expr::Neg(a) | Expr::Try(a) | Expr::Cast(a) | Expr::Ref { expr: a, .. } => {
            for_each_stmt_expr(a, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            for_each_stmt_expr(lhs, f);
            for_each_stmt_expr(rhs, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                for_each_stmt_expr(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            for_each_stmt_expr(recv, f);
            for a in args {
                for_each_stmt_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => for_each_stmt_expr(recv, f),
        Expr::Tuple(es) | Expr::Array(es) => {
            for a in es {
                for_each_stmt_expr(a, f);
            }
        }
        Expr::If {
            cond,
            then_e,
            else_e,
        } => {
            for_each_stmt_expr(cond, f);
            for_each_stmt_expr(then_e, f);
            if let Some(e) = else_e {
                for_each_stmt_expr(e, f);
            }
        }
        Expr::Match { scrutinee, arms } => {
            for_each_stmt_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    for_each_stmt_expr(g, f);
                }
                for_each_stmt_expr(&arm.body, f);
            }
        }
        Expr::Block { stmts, value } => {
            for_each_stmt(stmts, f);
            if let Some(v) = value {
                for_each_stmt_expr(v, f);
            }
        }
        Expr::Closure { body, .. } => for_each_stmt_expr(body, f),
        Expr::Num(_) | Expr::Path(_) | Expr::Opaque => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        Workspace::build(&sources)
    }

    fn call(path: &[&str]) -> CallEvent {
        CallEvent {
            line: 1,
            path: path.iter().map(|s| (*s).to_owned()).collect(),
            is_method: false,
            recv: None,
            args: Vec::new(),
        }
    }

    fn method(name: &str) -> CallEvent {
        CallEvent {
            line: 1,
            path: vec![name.to_owned()],
            is_method: true,
            recv: None,
            args: Vec::new(),
        }
    }

    #[test]
    fn bare_calls_resolve_same_file_then_workspace() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn go() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "fn solo() {}\n"),
        ]);
        assert!(matches!(
            w.resolve(0, None, &call(&["helper"]), None),
            Resolution::Unique(0)
        ));
        // `solo` is unique workspace-wide even from another file.
        assert!(matches!(
            w.resolve(0, None, &call(&["solo"]), None),
            Resolution::Unique(_)
        ));
        assert_eq!(
            w.resolve(0, None, &call(&["nothing"]), None),
            Resolution::External
        );
    }

    #[test]
    fn use_expansion_and_module_suffix_match() {
        let w = ws(&[
            ("crates/bench/src/parallel.rs", "pub fn parallel_map() {}\n"),
            (
                "crates/bench/src/bin/go.rs",
                "use bench::parallel::parallel_map;\nfn main() { parallel_map(); }\n",
            ),
        ]);
        assert!(matches!(
            w.resolve(1, None, &call(&["parallel_map"]), None),
            Resolution::Unique(0)
        ));
        assert!(matches!(
            w.resolve(1, None, &call(&["parallel", "parallel_map"]), None),
            Resolution::Unique(0)
        ));
        assert_eq!(
            w.resolve(1, None, &call(&["other", "parallel_map"]), None),
            Resolution::External
        );
    }

    #[test]
    fn methods_need_uniqueness_and_dodge_std_names() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct Chip;\nimpl Chip {\n    fn power_if(&self) {}\n    fn len(&self) {}\n}\n",
        )]);
        assert!(matches!(
            w.resolve(0, None, &method("power_if"), None),
            Resolution::Unique(_)
        ));
        // `len` collides with std; never claimed.
        assert_eq!(
            w.resolve(0, None, &method("len"), None),
            Resolution::External
        );
        // A hint that matches nothing stays external.
        assert_eq!(
            w.resolve(0, None, &method("power_if"), Some("Vec")),
            Resolution::External
        );
        assert!(matches!(
            w.resolve(0, None, &method("power_if"), Some("Chip")),
            Resolution::Unique(_)
        ));
    }

    #[test]
    fn assoc_fns_resolve_by_self_type() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct A;\nstruct B;\nimpl A {\n    fn build() {}\n}\nimpl B {\n    fn build() {}\n}\n",
        )]);
        assert!(matches!(
            w.resolve(0, None, &call(&["A", "build"]), None),
            Resolution::Unique(_)
        ));
        // Bare `build` is ambiguous.
        assert!(matches!(
            w.resolve(0, None, &call(&["build"]), None),
            Resolution::Candidates(_)
        ));
        // `Self::build` resolves through the caller's impl.
        assert!(matches!(
            w.resolve(0, Some("B"), &call(&["Self", "build"]), None),
            Resolution::Unique(_)
        ));
    }

    #[test]
    fn impl_spans_assign_self_types() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl Display for Gauge {\n    fn render(&self) {}\n}\nfn free() {}\n",
        )]);
        assert_eq!(w.fns[0].self_type.as_deref(), Some("Gauge"));
        assert_eq!(w.fns[1].self_type, None);
        assert_eq!(w.fns[0].qname(), "Gauge::render");
    }

    #[test]
    fn mention_accounting_tracks_defs_and_uses() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "pub fn alpha() {}\n"),
            (
                "crates/b/src/lib.rs",
                "use a::alpha;\nfn go() { alpha(); }\n",
            ),
        ]);
        assert_eq!(w.mentions["alpha"], 3);
        assert_eq!(w.def_counts["alpha"], 1);
        assert_eq!(w.use_mentions["alpha"], 1);
    }

    #[test]
    fn type_hints_come_from_params_and_ctors() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl Grid {\n    fn go(&self, chip: &mut Chip) {\n        let sink = JsonlSink::create(dir)?;\n    }\n}\n",
        )]);
        let hints = local_type_hints(&w.fns[0]);
        assert_eq!(hints["self"], "Grid");
        assert_eq!(hints["chip"], "Chip");
        assert_eq!(hints["sink"], "JsonlSink");
    }
}
