//! `cargo xtask graph`: interprocedural call-graph analysis (ISSUE 7).
//!
//! Where `flow` interprets one function at a time, `graph` connects them:
//!
//! * [`resolve`] — the workspace model: every function with its module
//!   path, `impl` self type and per-file `use` map, plus a conservative
//!   call resolver (unique target or nothing — ambiguity never makes an
//!   edge that facts flow across).
//! * [`scc`] — Tarjan condensation; reverse topological order drives the
//!   bottom-up summary computation.
//! * [`summary`] — derived function summaries (return interval, panic and
//!   purity bits, fallibility) via an SCC fixpoint, the seeds cross-check
//!   (hand-written contracts are *checked, not trusted*), and closed-world
//!   parameter derivation feeding facts back into `cargo xtask flow`.
//! * [`sharing`] — a race-freedom verdict for every `parallel_map` worker
//!   closure (capture analysis).
//! * [`reach`] — reachability from binary/test/bench roots and the
//!   dead-`pub` report.
//!
//! Findings use the shared diagnostic format and waiver machinery of
//! [`crate::lint`]; [`write_report`] serialises the run into
//! `results/graph_report.json` through [`crate::jsonout`], so the
//! committed artifact is byte-stable.

pub mod reach;
pub mod resolve;
pub mod scc;
#[allow(clippy::float_cmp)]
pub mod sharing;
#[allow(clippy::float_cmp)]
pub mod summary;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::flow::seeds::Seeds;
use crate::jsonout::Json;
use crate::lint::{self, Report, Violation};
use crate::syntax::files;
use crate::syntax::source::SourceFile;

use resolve::{Resolution, Workspace};

/// The passes `cargo xtask graph` runs; scopes unused-waiver accounting.
pub const PASSES: &[&str] = &["summary", "share", "reach"];

/// The complete result of analyzing one set of sources (no I/O — the ui
/// fixtures drive this directly).
#[derive(Debug)]
pub struct Analysis {
    /// The parsed workspace.
    pub ws: Workspace,
    /// Summaries, seed checks, derived facts/params.
    pub summary: summary::SummaryResult,
    /// One verdict per `parallel_map` site.
    pub sharing: Vec<sharing::ShareVerdict>,
    /// Reachability + dead-pub report.
    pub reach: reach::ReachReport,
    /// All pre-waiver findings of the three passes, sorted.
    pub findings: Vec<Violation>,
}

/// Runs the three graph passes over already-parsed sources.
pub fn analyze(sources: &[SourceFile], seeds: &Seeds) -> Analysis {
    let ws = Workspace::build(sources);
    let summary = summary::compute(&ws, seeds, sources);
    let (share_verdicts, share_violations) = sharing::check(&ws);
    let (reach_report, reach_violations) = reach::check(&ws, &summary.resolutions);
    let mut findings = summary.violations.clone();
    findings.extend(share_violations);
    findings.extend(reach_violations);
    findings.sort_by(|a, b| (&a.path, a.line, a.pass).cmp(&(&b.path, b.line, b.pass)));
    Analysis {
        ws,
        summary,
        sharing: share_verdicts,
        reach: reach_report,
        findings,
    }
}

/// Everything a `cargo xtask graph` run produced.
#[derive(Debug)]
pub struct GraphOutcome {
    /// Post-waiver violations in the shared diagnostic format.
    pub report: Report,
    /// The full analysis (feeds the report artifact).
    pub analysis: Analysis,
    /// Distinct caller→callee edges over unique resolutions.
    pub edges: usize,
    /// Call events by resolution kind.
    pub unique_calls: usize,
    /// Events resolving to several candidates.
    pub candidate_calls: usize,
    /// Events left external/unresolved.
    pub external_calls: usize,
}

impl GraphOutcome {
    /// Human-readable per-pass summary lines.
    pub fn summary(&self) -> String {
        let a = &self.analysis;
        let (confirmed, trusted, mismatched) = seed_verdict_counts(a);
        let proven_sites = a.sharing.iter().filter(|v| v.verdict == "proven").count();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "xtask graph [summary]: {} functions, {} edges ({} unique / {} candidate / {} external calls), {} SCCs (largest {}), {} derived param envelopes",
            a.ws.fns.len(),
            self.edges,
            self.unique_calls,
            self.candidate_calls,
            self.external_calls,
            a.summary.sccs.len(),
            a.summary.sccs.iter().map(Vec::len).max().unwrap_or(0),
            a.summary.oracle.params.len(),
        );
        let _ = writeln!(
            out,
            "xtask graph [seeds]: {} contract checks — {confirmed} confirmed, {trusted} trusted, {mismatched} mismatched",
            a.summary.seed_checks.len(),
        );
        let _ = writeln!(
            out,
            "xtask graph [share]: {}/{} parallel_map sites proven race-free",
            proven_sites,
            a.sharing.len(),
        );
        let _ = write!(
            out,
            "xtask graph [reach]: {} roots reach {}/{} functions, {} dead pub",
            a.reach.roots,
            a.reach.reachable,
            a.ws.fns.len(),
            a.reach.dead_pub.len(),
        );
        out
    }
}

fn seed_verdict_counts(a: &Analysis) -> (usize, usize, usize) {
    let count = |v: &str| {
        a.summary
            .seed_checks
            .iter()
            .filter(|c| c.verdict == v)
            .count()
    };
    (count("confirmed"), count("trusted"), count("mismatch"))
}

/// Reads every workspace source file (crate sources, tests, benches,
/// examples) relative to `root`.
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let paths = files::collect_workspace_sources(root)?;
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = files::relative(root, path);
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push(SourceFile::parse(&rel, &text));
    }
    Ok(sources)
}

/// Runs the graph passes over the workspace rooted at `root`, with the
/// shared waiver machinery applied.
pub fn run(root: &Path) -> Result<GraphOutcome, String> {
    let mut allow = lint::Allowlist::load(root)?;
    let seeds = Seeds::learn(root)?;
    let sources = load_sources(root)?;
    let files_scanned = sources.len();
    let analysis = analyze(&sources, &seeds);

    let mut report = Report {
        files_scanned,
        ..Report::default()
    };
    let mut by_file: BTreeMap<&str, Vec<Violation>> = BTreeMap::new();
    for v in &analysis.findings {
        by_file.entry(v.path.as_str()).or_default().push(v.clone());
    }
    for src in &sources {
        let findings = by_file.remove(src.path.as_str()).unwrap_or_default();
        lint::apply_file_waivers(&mut allow, src, findings, PASSES, &mut report);
    }
    // Findings against paths outside the scanned set (e.g. seed drift
    // anchored at the seeds file) cannot be waived inline.
    for (_, findings) in by_file {
        report.violations.extend(findings);
    }
    report.violations.extend(allow.unused(PASSES));
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    let mut edge_set: Vec<(usize, usize)> = Vec::new();
    let (mut unique_calls, mut candidate_calls, mut external_calls) = (0, 0, 0);
    for (i, rs) in analysis.summary.resolutions.iter().enumerate() {
        for r in rs {
            match r {
                Resolution::Unique(j) => {
                    unique_calls += 1;
                    edge_set.push((i, *j));
                }
                Resolution::Candidates(_) => candidate_calls += 1,
                Resolution::External => external_calls += 1,
            }
        }
    }
    edge_set.sort_unstable();
    edge_set.dedup();

    Ok(GraphOutcome {
        report,
        analysis,
        edges: edge_set.len(),
        unique_calls,
        candidate_calls,
        external_calls,
    })
}

/// Renders the whole run as the canonical report document.
pub fn report_json(outcome: &GraphOutcome) -> Json {
    let a = &outcome.analysis;
    let iv = |i: &crate::flow::interval::Interval| Json::str(format!("{i}"));
    let opt_iv = |i: &Option<crate::flow::interval::Interval>| i.as_ref().map_or(Json::Null, iv);

    let mut summaries = Vec::new();
    let mut order: Vec<usize> = (0..a.ws.fns.len()).collect();
    order.sort_by(|&x, &y| {
        let fx = &a.ws.fns[x];
        let fy = &a.ws.fns[y];
        (&a.ws.files[fx.file].path, fx.def.line).cmp(&(&a.ws.files[fy.file].path, fy.def.line))
    });
    for i in order {
        let f = &a.ws.fns[i];
        let s = &a.summary.summaries[i];
        summaries.push(Json::obj(vec![
            ("fn", Json::str(f.qname())),
            ("path", Json::str(&a.ws.files[f.file].path)),
            ("line", Json::int(f.def.line)),
            ("ret", opt_iv(&s.ret)),
            ("may_panic", Json::Bool(s.may_panic)),
            ("pure", Json::Bool(!s.impure)),
            ("mutates", Json::Bool(s.mutates)),
            ("fallible", Json::Bool(s.fallible)),
        ]));
    }

    let seed_checks: Vec<Json> = a
        .summary
        .seed_checks
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("contract", Json::str(&c.contract)),
                ("subject", Json::str(&c.subject)),
                ("path", Json::str(&c.path)),
                ("line", Json::int(c.line)),
                ("verdict", Json::str(c.verdict)),
                ("derived", opt_iv(&c.derived)),
                ("seed", opt_iv(&c.seed)),
            ])
        })
        .collect();

    let derived_params: BTreeMap<String, Json> = a
        .summary
        .oracle
        .params
        .iter()
        .map(|((path, line), env)| {
            let obj: BTreeMap<String, Json> = env.iter().map(|(k, v)| (k.clone(), iv(v))).collect();
            (format!("{path}:{line}"), Json::Obj(obj))
        })
        .collect();

    let sharing: Vec<Json> = a
        .sharing
        .iter()
        .map(|v| {
            Json::obj(vec![
                ("path", Json::str(&v.path)),
                ("line", Json::int(v.line)),
                (
                    "captures",
                    Json::Arr(v.captures.iter().map(Json::str).collect()),
                ),
                ("verdict", Json::str(v.verdict)),
                (
                    "details",
                    Json::Arr(v.details.iter().map(Json::str).collect()),
                ),
            ])
        })
        .collect();

    Json::obj(vec![
        ("generated_by", Json::str("cargo xtask graph")),
        (
            "call_graph",
            Json::obj(vec![
                ("functions", Json::int(a.ws.fns.len())),
                ("files", Json::int(a.ws.files.len())),
                ("edges", Json::int(outcome.edges)),
                ("unique_calls", Json::int(outcome.unique_calls)),
                ("candidate_calls", Json::int(outcome.candidate_calls)),
                ("external_calls", Json::int(outcome.external_calls)),
                ("scc_count", Json::int(a.summary.sccs.len())),
                (
                    "largest_scc",
                    Json::int(a.summary.sccs.iter().map(Vec::len).max().unwrap_or(0)),
                ),
            ]),
        ),
        ("summaries", Json::Arr(summaries)),
        ("seed_checks", Json::Arr(seed_checks)),
        ("derived_params", Json::Obj(derived_params)),
        ("sharing", Json::Arr(sharing)),
        (
            "reach",
            Json::obj(vec![
                ("roots", Json::int(a.reach.roots)),
                ("reachable", Json::int(a.reach.reachable)),
                ("functions", Json::int(a.ws.fns.len())),
                (
                    "dead_pub",
                    Json::Arr(a.reach.dead_pub.iter().map(Json::str).collect()),
                ),
            ]),
        ),
        ("violations", Json::int(outcome.report.violations.len())),
    ])
}

/// Serialises `outcome` to `results/graph_report.json` (canonical sorted-
/// key JSON). Returns the path written.
pub fn write_report(root: &Path, outcome: &GraphOutcome) -> Result<PathBuf, String> {
    let dir = root.join("results");
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("graph_report.json");
    fs::write(&path, report_json(outcome).render())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask has a parent")
            .to_path_buf()
    }

    /// The graph gate over the real workspace: clean, every seed contract
    /// cross-checked without mismatch, every `parallel_map` site proven.
    #[test]
    fn workspace_is_graph_clean() {
        let outcome = run(&workspace_root()).expect("graph runs");
        assert!(
            outcome.report.violations.is_empty(),
            "workspace must be graph-clean:\n{}",
            outcome
                .report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        let a = &outcome.analysis;
        assert!(
            !a.summary.seed_checks.is_empty(),
            "seed contracts must be checked"
        );
        assert!(
            a.summary
                .seed_checks
                .iter()
                .all(|c| c.verdict != "mismatch"),
            "no seed contract may mismatch its derived summary"
        );
        assert!(!a.sharing.is_empty(), "parallel_map sites must be found");
        assert!(
            a.sharing.iter().all(|v| v.verdict == "proven"),
            "every parallel_map site needs a race-freedom proof: {:#?}",
            a.sharing
        );
        assert!(
            a.reach.dead_pub.is_empty(),
            "dead pub: {:?}",
            a.reach.dead_pub
        );
    }

    /// Satellite (b): rendering the report twice over two fresh runs
    /// produces identical bytes.
    #[test]
    fn report_is_byte_stable_across_runs() {
        let a = run(&workspace_root()).expect("graph runs");
        let b = run(&workspace_root()).expect("graph runs again");
        assert_eq!(report_json(&a).render(), report_json(&b).render());
    }
}
