//! `cargo xtask bench [--smoke]`: run the criterion suite and collect the
//! per-benchmark medians into a machine-readable `BENCH_pr3.json`.
//!
//! The vendored criterion stub appends one JSON line per benchmark to the
//! path named by `SOLARCORE_BENCH_JSON`; this command points that at a
//! scratch file, runs `cargo bench -p bench`, validates the lines, and
//! writes the aggregate report (sorted by name, plus the derived
//! cold-vs-warm day-simulation speedup) to the repository root.
//!
//! Failure modes — a panicking benchmark, no output, malformed lines,
//! non-finite medians, or a missing cold/warm or telemetry comparison
//! pair — exit non-zero so CI can gate on `--smoke` runs. The measured
//! ratios themselves (cache speedup, telemetry overhead) are *reported*,
//! not gated: smoke runs on loaded CI machines are too noisy to assert a
//! ratio. The full-mode `BENCH_pr3.json` is where the <3% null-sink
//! telemetry overhead acceptance figure is recorded.

use std::path::Path;
use std::process::{Command, ExitCode};

/// One parsed benchmark record from the stub's JSONL stream.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    median_ns: f64,
    iters: u64,
    samples: u64,
}

/// The benchmark pair whose ratio seeds the perf trajectory.
const RATIO_BASELINE: &str = "day_sim_cache/uncached";
const RATIO_FAST: &str = "day_sim_cache/warm";

/// The telemetry-overhead pair: the same day simulated with a disabled
/// handle vs. fully instrumented into a `telemetry::NullSink`. Their ratio
/// is the cost of the instrumentation itself (field assembly, dispatch)
/// with encoding excluded — the figure the <3% acceptance bound is about.
const TELEMETRY_BASELINE: &str = "day_sim_telemetry/disabled";
const TELEMETRY_NULL: &str = "day_sim_telemetry/null_sink";

/// Minimum number of named benchmarks a healthy run must emit.
const MIN_BENCHMARKS: usize = 5;

/// Runs the suite and writes `BENCH_pr3.json`; non-zero on any failure.
pub fn run(root: &Path, smoke: bool) -> ExitCode {
    let scratch = root.join("target").join("bench-report.jsonl");
    if let Some(parent) = scratch.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::remove_file(&scratch);

    let mode = if smoke { "smoke" } else { "full" };
    println!("xtask bench: running cargo bench -p bench ({mode} mode)");
    let mut cmd = Command::new("cargo");
    cmd.args(["bench", "-p", "bench"])
        .current_dir(root)
        .env("SOLARCORE_BENCH_JSON", &scratch);
    if smoke {
        cmd.env("SOLARCORE_BENCH_SMOKE", "1");
    }
    match cmd.status() {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask bench: cargo bench failed with {s}");
            return ExitCode::FAILURE;
        }
        Err(err) => {
            eprintln!("xtask bench: could not spawn cargo: {err}");
            return ExitCode::FAILURE;
        }
    }

    let raw = match std::fs::read_to_string(&scratch) {
        Ok(raw) => raw,
        Err(err) => {
            eprintln!("xtask bench: no benchmark output at {scratch:?}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let records = match parse_records(&raw) {
        Ok(records) => records,
        Err(err) => {
            eprintln!("xtask bench: malformed benchmark output: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = validate(&records) {
        eprintln!("xtask bench: {err}");
        return ExitCode::FAILURE;
    }

    let report = render_report(&records, mode);
    let out = root.join("BENCH_pr3.json");
    if let Err(err) = std::fs::write(&out, report) {
        eprintln!("xtask bench: cannot write {out:?}: {err}");
        return ExitCode::FAILURE;
    }
    let fmt = |r: Option<f64>, suffix: &str| {
        r.map_or_else(|| "n/a".to_owned(), |r| format!("{r:.2}{suffix}"))
    };
    println!(
        "xtask bench: {} benchmarks -> {} (day-sim uncached/warm = {}, telemetry null/disabled = {})",
        records.len(),
        out.display(),
        fmt(speedup(&records), "x"),
        fmt(telemetry_overhead(&records), "x"),
    );
    ExitCode::SUCCESS
}

/// Parses the stub's JSONL stream. Each line is one flat object emitted by
/// a process we control, so a targeted field scanner is sufficient — xtask
/// deliberately has no dependencies.
fn parse_records(raw: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record = parse_line(line)
            .ok_or_else(|| format!("line {}: unparseable record `{line}`", lineno + 1))?;
        records.push(record);
    }
    Ok(records)
}

fn parse_line(line: &str) -> Option<BenchRecord> {
    let name = string_field(line, "name")?;
    let median_ns = number_field(line, "median_ns")?;
    // Counts are written as plain integers; reject fractional or absurd
    // values instead of truncating.
    let count = |key: &str| {
        let n = number_field(line, key)?;
        if n.fract() == 0.0 && (0.0..9e15).contains(&n) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n as u64)
        } else {
            None
        }
    };
    Some(BenchRecord {
        name,
        median_ns,
        iters: count("iters")?,
        samples: count("samples")?,
    })
}

/// Extracts `"key":"value"` (with `\"`/`\\` unescaping).
fn string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
}

/// Extracts a bare numeric `"key":123.4` field.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn validate(records: &[BenchRecord]) -> Result<(), String> {
    if records.len() < MIN_BENCHMARKS {
        return Err(format!(
            "only {} benchmark(s) emitted; expected at least {MIN_BENCHMARKS}",
            records.len()
        ));
    }
    for r in records {
        if !r.median_ns.is_finite() || r.median_ns <= 0.0 {
            return Err(format!(
                "benchmark `{}` has bad median {}",
                r.name, r.median_ns
            ));
        }
        if r.iters == 0 || r.samples == 0 {
            return Err(format!("benchmark `{}` ran zero iterations", r.name));
        }
    }
    for required in [
        RATIO_BASELINE,
        RATIO_FAST,
        TELEMETRY_BASELINE,
        TELEMETRY_NULL,
    ] {
        if !records.iter().any(|r| r.name == required) {
            return Err(format!(
                "required benchmark `{required}` missing from output"
            ));
        }
    }
    Ok(())
}

/// Looks up one benchmark's median by exact name.
fn median_of(records: &[BenchRecord], name: &str) -> Option<f64> {
    records.iter().find(|r| r.name == name).map(|r| r.median_ns)
}

/// The headline cold-vs-warm full-day-sim speedup, when both ends ran.
fn speedup(records: &[BenchRecord]) -> Option<f64> {
    let baseline = median_of(records, RATIO_BASELINE)?;
    let fast = median_of(records, RATIO_FAST)?;
    (fast > 0.0).then(|| baseline / fast)
}

/// Instrumented-over-disabled day-sim cost ratio (1.0 = free; the
/// acceptance bound for the null sink is < 1.03).
fn telemetry_overhead(records: &[BenchRecord]) -> Option<f64> {
    let disabled = median_of(records, TELEMETRY_BASELINE)?;
    let null = median_of(records, TELEMETRY_NULL)?;
    (disabled > 0.0).then(|| null / disabled)
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the aggregate report (stable order: sorted by benchmark name).
fn render_report(records: &[BenchRecord], mode: &str) -> String {
    let mut sorted: Vec<&BenchRecord> = records.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"unit\": \"ns/iter (median)\",\n");
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in sorted.iter().enumerate() {
        let comma = if i + 1 == sorted.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.3}, \"iters\": {}, \"samples\": {}}}{comma}\n",
            escape_json(&r.name),
            r.median_ns,
            r.iters,
            r.samples
        ));
    }
    out.push_str("  ],\n");
    let render = |r: Option<f64>| r.map_or_else(|| "null".to_owned(), |r| format!("{r:.3}"));
    out.push_str("  \"derived\": {\n");
    out.push_str(&format!(
        "    \"day_sim_uncached_over_warm\": {},\n",
        render(speedup(records))
    ));
    out.push_str(&format!(
        "    \"day_sim_telemetry_null_over_disabled\": {}\n",
        render(telemetry_overhead(records))
    ));
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, median: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_owned(),
            median_ns: median,
            iters: 10,
            samples: 3,
        }
    }

    #[test]
    fn parses_stub_lines() {
        let raw =
            "{\"name\":\"day_sim_cache/warm\",\"median_ns\":123.456,\"iters\":10,\"samples\":7}\n";
        let records = parse_records(raw).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "day_sim_cache/warm");
        assert!((records[0].median_ns - 123.456).abs() < 1e-9);
        assert_eq!(records[0].iters, 10);
        assert_eq!(records[0].samples, 7);
    }

    #[test]
    fn unescapes_names() {
        let raw = "{\"name\":\"a\\\"b\",\"median_ns\":1,\"iters\":1,\"samples\":1}\n";
        assert_eq!(parse_records(raw).unwrap()[0].name, "a\"b");
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(parse_records("not json\n").is_err());
        assert!(parse_records("{\"name\":\"x\"}\n").is_err());
    }

    /// The four benchmarks validation insists on, with healthy medians.
    fn required_records() -> Vec<BenchRecord> {
        vec![
            record(RATIO_BASELINE, 300.0),
            record(RATIO_FAST, 100.0),
            record(TELEMETRY_BASELINE, 200.0),
            record(TELEMETRY_NULL, 204.0),
        ]
    }

    #[test]
    fn validate_requires_count_and_ratio_pairs() {
        let mut records: Vec<BenchRecord> =
            (0..5).map(|i| record(&format!("b{i}"), 10.0)).collect();
        assert!(validate(&records).unwrap_err().contains("required"));
        records.extend(required_records());
        assert!(validate(&records).is_ok());
        assert!(validate(&records[..4])
            .unwrap_err()
            .contains("expected at least"));

        // Dropping either telemetry end breaks validation: the overhead
        // figure must stay in every future BENCH report.
        let missing: Vec<BenchRecord> = records
            .iter()
            .filter(|r| r.name != TELEMETRY_NULL)
            .cloned()
            .collect();
        assert!(validate(&missing).unwrap_err().contains(TELEMETRY_NULL));
    }

    #[test]
    fn validate_rejects_bad_medians() {
        let mut records: Vec<BenchRecord> =
            (0..4).map(|i| record(&format!("b{i}"), 10.0)).collect();
        records.extend(required_records());
        records.push(record("bad", f64::NAN));
        assert!(validate(&records).unwrap_err().contains("bad median"));
    }

    #[test]
    fn speedup_is_baseline_over_fast() {
        let records = vec![record(RATIO_BASELINE, 300.0), record(RATIO_FAST, 100.0)];
        assert!((speedup(&records).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn telemetry_overhead_is_instrumented_over_disabled() {
        let records = vec![
            record(TELEMETRY_BASELINE, 200.0),
            record(TELEMETRY_NULL, 204.0),
        ];
        assert!((telemetry_overhead(&records).unwrap() - 1.02).abs() < 1e-12);
    }

    #[test]
    fn report_is_sorted_and_carries_ratios() {
        let mut records = required_records();
        records.push(record("z/last", 5.0));
        let report = render_report(&records, "smoke");
        let a = report.find(RATIO_BASELINE).unwrap();
        let z = report.find("z/last").unwrap();
        assert!(a < z, "benchmarks must be name-sorted");
        assert!(report.contains("\"day_sim_uncached_over_warm\": 3.000"));
        assert!(report.contains("\"day_sim_telemetry_null_over_disabled\": 1.020"));
        assert!(report.contains("\"mode\": \"smoke\""));
    }
}
