//! Documentation cross-reference pass (`cargo xtask docs`).
//!
//! The repo's prose is part of its contract: README.md routes readers
//! into DESIGN.md by section number, EXPERIMENTS.md catalogs every
//! committed `results/*.json` artifact, and the crate map names every
//! workspace crate. All three decay silently as the code grows — a
//! renumbered DESIGN section, a new results artifact, a new crate —
//! so this pass re-checks them on every CI run:
//!
//! 1. **anchors** — every `§N` reference in README.md, EXPERIMENTS.md
//!    and `docs/*.md` resolves to a `## N.` heading in DESIGN.md;
//! 2. **catalog** — every committed `results/*.json` file is mentioned
//!    in EXPERIMENTS.md;
//! 3. **crate-map** — every directory under `crates/` has a
//!    `crates/<name>` row in README.md's workspace table, and README
//!    links the operator's handbook (`docs/HANDBOOK.md`).
//!
//! Violations reuse the [`Report`] shape so the `finish()` printer and
//! exit-code policy are shared with every other pass.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lint::{Report, Violation};

/// The pass label on every violation this module emits.
pub const PASS: &str = "docs";

/// Runs the documentation cross-reference pass over the workspace.
///
/// # Errors
///
/// Returns a message when a required file (README.md, DESIGN.md,
/// EXPERIMENTS.md) cannot be read; missing *references* are violations,
/// missing *documents* are errors.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;

    let read = |name: &str| -> Result<String, String> {
        std::fs::read_to_string(root.join(name)).map_err(|e| format!("{name}: {e}"))
    };
    let readme = read("README.md")?;
    let design = read("DESIGN.md")?;
    let experiments = read("EXPERIMENTS.md")?;
    files_scanned += 3;

    let sections = design_sections(&design);
    if sections.is_empty() {
        return Err("DESIGN.md: no `## N.` section headings found".to_owned());
    }

    // Pass 1: §N anchors. Check README, EXPERIMENTS and everything under
    // docs/ against DESIGN.md's actual heading numbers.
    let mut anchored: Vec<(String, String)> = vec![
        ("README.md".to_owned(), readme.clone()),
        ("EXPERIMENTS.md".to_owned(), experiments.clone()),
    ];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        let mut names: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        names.sort();
        for path in names {
            let rel = format!(
                "docs/{}",
                path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default()
            );
            let text = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
            anchored.push((rel, text));
        }
    }
    for (rel, text) in &anchored {
        files_scanned += usize::from(!matches!(rel.as_str(), "README.md" | "EXPERIMENTS.md"));
        check_anchors(rel, text, &sections, &mut violations);
    }

    // Pass 2: every committed results/*.json is catalogued.
    let results = root.join("results");
    if let Ok(entries) = std::fs::read_dir(&results) {
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".json"))
            .collect();
        names.sort();
        for name in names {
            files_scanned += 1;
            if !experiments.contains(&name) {
                violations.push(Violation {
                    pass: PASS,
                    path: format!("results/{name}"),
                    line: 1,
                    message:
                        "committed results artifact is not catalogued in EXPERIMENTS.md".to_owned(),
                });
            }
        }
    }

    // Pass 3: the crate map covers every workspace crate, and README
    // routes operators to the handbook.
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            if !readme.contains(&format!("crates/{name}")) {
                violations.push(Violation {
                    pass: PASS,
                    path: "README.md".to_owned(),
                    line: 1,
                    message: format!("workspace crate `crates/{name}` has no crate-map row"),
                });
            }
        }
    }
    if !readme.contains("docs/HANDBOOK.md") {
        violations.push(Violation {
            pass: PASS,
            path: "README.md".to_owned(),
            line: 1,
            message: "README does not link the operator's handbook (docs/HANDBOOK.md)".to_owned(),
        });
    }

    Ok(Report {
        violations,
        files_scanned,
        waivers_used: 0,
    })
}

/// The set of `N` with a `## N.` heading in DESIGN.md.
fn design_sections(design: &str) -> BTreeSet<u32> {
    design
        .lines()
        .filter_map(|l| l.strip_prefix("## "))
        .filter_map(|rest| {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            (!digits.is_empty() && rest[digits.len()..].starts_with('.'))
                .then(|| digits.parse().ok())
                .flatten()
        })
        .collect()
}

/// Flags every `§N` whose `N` is not a DESIGN.md heading. Ranges (`§9–10`)
/// check both endpoints.
fn check_anchors(rel: &str, text: &str, sections: &BTreeSet<u32>, out: &mut Vec<Violation>) {
    for (idx, line) in text.lines().enumerate() {
        for piece in line.split('§').skip(1) {
            let digits: String = piece.chars().take_while(char::is_ascii_digit).collect();
            let Ok(first) = digits.parse::<u32>() else {
                continue;
            };
            let mut referenced = vec![first];
            // A range like `§9–10` (en dash or hyphen) names two anchors.
            let rest = &piece[digits.len()..];
            if let Some(tail) = rest.strip_prefix('–').or_else(|| rest.strip_prefix('-')) {
                let tail_digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
                if let Ok(second) = tail_digits.parse::<u32>() {
                    referenced.push(second);
                }
            }
            for n in referenced {
                if !sections.contains(&n) {
                    out.push(Violation {
                        pass: PASS,
                        path: rel.to_owned(),
                        line: idx + 1,
                        message: format!("§{n} does not resolve to a `## {n}.` DESIGN.md heading"),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_headings_parse() {
        let design = "## 1. Intro\ntext\n## 12. Harness\n### 2.1 not a section\n## X. no\n";
        let s = design_sections(design);
        assert!(s.contains(&1) && s.contains(&12));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn dangling_anchor_is_flagged_with_its_line() {
        let sections: BTreeSet<u32> = [1, 2].into_iter().collect();
        let mut out = Vec::new();
        check_anchors("README.md", "ok §1\nbad §7 here\n", &sections, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("§7"));
    }

    #[test]
    fn ranges_check_both_endpoints() {
        let sections: BTreeSet<u32> = [9].into_iter().collect();
        let mut out = Vec::new();
        check_anchors("README.md", "§9–10\n", &sections, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("§10"));
    }
}
