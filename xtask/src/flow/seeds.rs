//! Learned facts the range pass starts from: platform bound constants and
//! summaries of the simulation APIs it treats as contracts.
//!
//! The authoritative numeric ranges live in `solarcore::invariants::bounds`
//! (plain `f64` constants, pinned to the runtime structures by unit tests
//! over there). This module re-learns them at the token level — no
//! compilation, keeping xtask dependency-free — and cross-checks the V/F
//! entries against the `VF_POINTS` ladder in `archsim::dvfs`. Drift between
//! the two files is a hard error, so a seed can never silently outlive the
//! structure it summarizes.
//!
//! Summaries are the *trusted base* of every static proof: a method listed
//! here is believed to honour its documented contract (e.g. `total_power`
//! returns a finite non-negative wattage). `cargo xtask flow` then proves
//! that the *flow* from those contracts into each sanitizer call site
//! preserves the checked property. The split is reported per site — see
//! `DESIGN.md` §15.

use std::collections::BTreeMap;
use std::path::Path;

use crate::flow::interval::Interval;
use crate::syntax::lexer::{lex, Tok};
use crate::syntax::source::SourceFile;

/// Names of the unit newtypes in `pv::units` whose `new` wraps its operand
/// verbatim (so `Watts::new(e)` is numerically transparent).
const UNIT_TYPES: &[&str] = &[
    "Watts",
    "Volts",
    "Amps",
    "Ohms",
    "Hertz",
    "Seconds",
    "Joules",
    "WattHours",
    "Celsius",
];

/// Everything the range pass knows before looking at a function body.
#[derive(Debug, Clone)]
pub struct Seeds {
    /// Named constants usable in expressions (`POWER_SLACK_W`,
    /// `bounds::VDD_MAX_V`, …), keyed by their final path segment.
    consts: BTreeMap<String, f64>,
}

impl Seeds {
    /// Learns the seed constants from the workspace sources and
    /// cross-checks them against the structures they summarize.
    pub fn learn(root: &Path) -> Result<Seeds, String> {
        let inv_path = root.join("crates/solarcore/src/invariants.rs");
        let inv_text = std::fs::read_to_string(&inv_path)
            .map_err(|e| format!("cannot read {}: {e}", inv_path.display()))?;
        let inv = SourceFile::parse("crates/solarcore/src/invariants.rs", &inv_text);
        let consts = learn_consts(&inv);

        for required in [
            "POWER_SLACK_W",
            "VDD_MIN_V",
            "VDD_MAX_V",
            "FREQ_MIN_GHZ",
            "FREQ_MAX_GHZ",
            "RATIO_K_MIN",
            "RATIO_K_MAX",
            "RATIO_K_STEP",
            "EFFICIENCY_MAX",
        ] {
            if !consts.contains_key(required) {
                return Err(format!(
                    "seed constant `{required}` not found in {}",
                    inv_path.display()
                ));
            }
        }

        let dvfs_path = root.join("crates/archsim/src/dvfs.rs");
        let dvfs_text = std::fs::read_to_string(&dvfs_path)
            .map_err(|e| format!("cannot read {}: {e}", dvfs_path.display()))?;
        let dvfs = SourceFile::parse("crates/archsim/src/dvfs.rs", &dvfs_text);
        let ladder = learn_vf_points(&dvfs)
            .ok_or_else(|| format!("VF_POINTS table not found in {}", dvfs_path.display()))?;

        let mut consts = consts;
        // Synthesized from the ladder itself (used by the `from_index`
        // sink); not a bounds constant, so not in the required list above.
        #[allow(clippy::cast_precision_loss)] // ladder length is tiny
        consts.insert("VF_LEVEL_COUNT".to_owned(), ladder.len() as f64);

        let seeds = Seeds { consts };
        seeds.cross_check(&ladder)?;
        Ok(seeds)
    }

    /// Fixed seeds for the fixture ui tests (no file IO; same values the
    /// real workspace carries today).
    pub fn for_tests() -> Seeds {
        let mut consts = BTreeMap::new();
        for (name, value) in [
            ("POWER_SLACK_W", 0.5),
            ("VDD_MIN_V", 0.95),
            ("VDD_MAX_V", 1.45),
            ("FREQ_MIN_GHZ", 1.0),
            ("FREQ_MAX_GHZ", 2.5),
            ("RATIO_K_MIN", 0.8),
            ("RATIO_K_MAX", 8.0),
            ("RATIO_K_STEP", 0.05),
            ("EFFICIENCY_MAX", 1.0),
            ("VF_LEVEL_COUNT", 6.0),
        ] {
            consts.insert(name.to_owned(), value);
        }
        Seeds { consts }
    }

    /// Fails if the learned bound constants disagree with the V/F ladder.
    fn cross_check(&self, ladder: &[(f64, f64)]) -> Result<(), String> {
        let fold = |sel: fn(&(f64, f64)) -> f64, f: fn(f64, f64) -> f64, init: f64| {
            ladder.iter().map(sel).fold(init, f)
        };
        let checks = [
            ("VDD_MIN_V", fold(|p| p.1, f64::min, f64::INFINITY)),
            ("VDD_MAX_V", fold(|p| p.1, f64::max, f64::NEG_INFINITY)),
            ("FREQ_MIN_GHZ", fold(|p| p.0, f64::min, f64::INFINITY)),
            ("FREQ_MAX_GHZ", fold(|p| p.0, f64::max, f64::NEG_INFINITY)),
        ];
        for (name, expected) in checks {
            let got = self.consts[name];
            if got.to_bits() != expected.to_bits() {
                return Err(format!(
                    "seed drift: invariants::bounds::{name} = {got} but the \
                     archsim VF_POINTS ladder implies {expected}; update the \
                     bounds module (its unit tests pin the same values)"
                ));
            }
        }
        Ok(())
    }

    /// The numeric value of a named constant path (`POWER_SLACK_W`,
    /// `bounds::VDD_MAX_V`, `f64::INFINITY`, `Watts::ZERO`), if known.
    pub fn const_value(&self, path: &[String]) -> Option<Interval> {
        let last = path.last()?;
        if let Some(v) = self.consts.get(last) {
            return Some(Interval::constant(*v));
        }
        match last.as_str() {
            "ZERO" if path.len() == 2 && UNIT_TYPES.contains(&path[0].as_str()) => {
                Some(Interval::constant(0.0))
            }
            "INFINITY" => Some(Interval {
                lo: f64::INFINITY,
                hi: f64::INFINITY,
                lo_open: false,
                hi_open: false,
                nan: false,
            }),
            "NEG_INFINITY" => Some(Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::NEG_INFINITY,
                lo_open: false,
                hi_open: false,
                nan: false,
            }),
            "NAN" => Some(Interval::TOP),
            "EPSILON" => Some(Interval::constant(f64::EPSILON)),
            "PI" => Some(Interval::constant(std::f64::consts::PI)),
            _ => None,
        }
    }

    /// `true` when `Type::new(x)` wraps `x` verbatim (the pv unit
    /// newtypes), making the call numerically transparent.
    pub fn transparent_constructor(&self, path: &[String]) -> bool {
        path.len() == 2 && path[1] == "new" && UNIT_TYPES.contains(&path[0].as_str())
    }

    /// Contract summary for a method call, by method name: the interval its
    /// return value is trusted to inhabit. `None` means no contract (the
    /// evaluator falls back to ⊤ or a structural rule).
    pub fn method_summary(&self, name: &str) -> Option<Interval> {
        // Finite and non-negative: `[0, ∞)` — the open infinite bound is
        // exactly "unbounded above but never +∞", and no NaN.
        let nonneg = Interval {
            lo: 0.0,
            hi: f64::INFINITY,
            lo_open: false,
            hi_open: true,
            nan: false,
        };
        match name {
            // Powers produced by the simulation structs are finite and
            // non-negative by construction (their own unit tests and the
            // runtime sanitizer in debug builds enforce it at the source).
            "total_power" | "power_if" | "panel_power" | "output_power" | "power" => Some(nonneg),
            // The degraded-mode budget: documented (and property-tested)
            // to be finite, non-negative and capped by the measured
            // potential — the cap is not representable here, so only the
            // `[0, ∞)` part is trusted.
            "fallback_budget" => Some(nonneg),
            // Solved node voltages: finite, non-negative.
            "output_voltage" | "open_circuit_voltage" => Some(nonneg),
            // The VID ladder pins core voltages to its end points.
            "voltage" => Some(Interval::closed(
                self.consts["VDD_MIN_V"],
                self.consts["VDD_MAX_V"],
            )),
            // Converter contracts (constructor-validated in powertrain).
            "efficiency" => Some(Interval {
                lo: 0.0,
                hi: self.consts["EFFICIENCY_MAX"],
                lo_open: true,
                hi_open: false,
                nan: false,
            }),
            "ratio" => Some(Interval::closed(
                self.consts["RATIO_K_MIN"],
                self.consts["RATIO_K_MAX"],
            )),
            "ratio_step" => Some(Interval::constant(self.consts["RATIO_K_STEP"])),
            _ => None,
        }
    }

    /// Contract summary for a field access, by field name.
    pub fn field_summary(&self, name: &str) -> Option<Interval> {
        let nonneg = Interval {
            lo: 0.0,
            hi: f64::INFINITY,
            lo_open: false,
            hi_open: true,
            nan: false,
        };
        match name {
            // `MppPoint.power`: the MPP oracle emits finite, non-negative
            // power (zero at night).
            "power" => Some(nonneg),
            // `OperatingPoint.output_voltage`: a solved bus node voltage.
            "output_voltage" => Some(nonneg),
            _ => None,
        }
    }

    /// The reachable DC/DC transfer-ratio range (the `set_ratio` sink).
    pub fn ratio_bounds(&self) -> Interval {
        Interval::closed(self.consts["RATIO_K_MIN"], self.consts["RATIO_K_MAX"])
    }

    /// Number of V/F ladder levels (the `from_index` sink).
    pub fn vf_level_count(&self) -> f64 {
        self.consts["VF_LEVEL_COUNT"]
    }

    /// Contract summary for a tuple-variant payload bound in a pattern, by
    /// variant name.
    pub fn payload_summary(&self, variant: &str) -> Option<Interval> {
        match variant {
            // `Policy::FixedPower(budget)`: `DaySimulation::build()` rejects
            // non-finite or negative budgets, so any payload that reaches
            // the engine is in `[0, ∞)`.
            "FixedPower" => Some(Interval {
                lo: 0.0,
                hi: f64::INFINITY,
                lo_open: false,
                hi_open: true,
                nan: false,
            }),
            _ => None,
        }
    }

    /// The slack constant used by the relational sanitizer checks.
    pub fn power_slack(&self) -> f64 {
        self.consts["POWER_SLACK_W"]
    }

    /// Every method name carrying a trusted contract in
    /// [`Seeds::method_summary`], enumerated so the interprocedural pass
    /// can cross-check each one against its derived summary
    /// (seeds-as-checked-not-trusted; see `DESIGN.md` §16).
    pub fn contract_method_names() -> &'static [&'static str] {
        &[
            "total_power",
            "power_if",
            "panel_power",
            "output_power",
            "power",
            "fallback_budget",
            "output_voltage",
            "open_circuit_voltage",
            "voltage",
            "efficiency",
            "ratio",
            "ratio_step",
        ]
    }

    /// The unit newtypes whose `new` is trusted to wrap its operand
    /// verbatim; the interprocedural pass verifies each body is literally
    /// `Self(value)`.
    pub fn unit_type_names() -> &'static [&'static str] {
        UNIT_TYPES
    }
}

/// Collects every `pub? const NAME: f64 = <number>;` in the file.
fn learn_consts(src: &SourceFile) -> BTreeMap<String, f64> {
    let tokens = lex(src);
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i + 5 < tokens.len() {
        if tokens[i].is_ident("const") {
            let name = tokens[i + 1].ident();
            let is_f64 = tokens[i + 2].is_op(":") && tokens[i + 3].is_ident("f64");
            if let (Some(name), true) = (name, is_f64) {
                if tokens[i + 4].is_op("=") {
                    if let Some(v) = parse_signed_num(&tokens[i + 5].tok, tokens.get(i + 6)) {
                        out.insert(name.to_owned(), v);
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Parses `<num>` or `-<num>` starting at `first`.
fn parse_signed_num(first: &Tok, next: Option<&crate::syntax::lexer::Token>) -> Option<f64> {
    match first {
        Tok::Num(n) => n.replace('_', "").parse().ok(),
        Tok::Op("-") => match next.map(|t| &t.tok) {
            Some(Tok::Num(n)) => n.replace('_', "").parse::<f64>().ok().map(|v| -v),
            _ => None,
        },
        _ => None,
    }
}

/// Extracts the `(frequency, voltage)` pairs of the `VF_POINTS` table.
fn learn_vf_points(src: &SourceFile) -> Option<Vec<(f64, f64)>> {
    let tokens = lex(src);
    let at = tokens.iter().position(|t| t.is_ident("VF_POINTS"))?;
    // Skip to the `=` then collect numeric pairs until the closing `]`.
    let eq = tokens[at..].iter().position(|t| t.is_op("="))? + at;
    let open = tokens[eq..].iter().position(|t| t.is_op("["))? + eq;
    let close = crate::syntax::lexer::matching_close(&tokens, open)?;
    let mut pairs = Vec::new();
    let mut nums: Vec<f64> = Vec::new();
    for t in &tokens[open + 1..close] {
        if let Tok::Num(n) = &t.tok {
            if let Ok(v) = n.replace('_', "").parse::<f64>() {
                nums.push(v);
            }
        }
    }
    let mut it = nums.chunks_exact(2);
    for pair in &mut it {
        pairs.push((pair[0], pair[1]));
    }
    if pairs.is_empty() {
        return None;
    }
    Some(pairs)
}

#[cfg(test)]
// Seeds are exact constants; the tests compare them bit-for-bit on purpose.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn repo_root() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask has a parent")
            .to_path_buf()
    }

    #[test]
    fn workspace_seeds_learn_and_cross_check() {
        let seeds = Seeds::learn(&repo_root()).expect("seeds learn");
        assert_eq!(seeds.power_slack(), 0.5);
        let vdd = seeds.method_summary("voltage").unwrap();
        assert_eq!((vdd.lo, vdd.hi), (0.95, 1.45));
        assert!(vdd.proves_finite());
    }

    #[test]
    fn test_seeds_match_workspace_seeds() {
        let learned = Seeds::learn(&repo_root()).expect("seeds learn");
        let fixed = Seeds::for_tests();
        assert_eq!(learned.consts, fixed.consts);
    }

    #[test]
    fn const_lookup_knows_units_and_float_specials() {
        let s = Seeds::for_tests();
        let zero = s
            .const_value(&["Watts".to_owned(), "ZERO".to_owned()])
            .unwrap();
        assert_eq!((zero.lo, zero.hi), (0.0, 0.0));
        assert!(zero.proves_finite());
        let inf = s
            .const_value(&["f64".to_owned(), "INFINITY".to_owned()])
            .unwrap();
        assert!(!inf.proves_finite());
        assert!(inf.proves_ge(0.0));
        let slack = s.const_value(&["POWER_SLACK_W".to_owned()]).unwrap();
        assert_eq!(slack.lo, 0.5);
        assert!(s
            .const_value(&["bounds".to_owned(), "RATIO_K_MAX".to_owned()])
            .is_some());
        assert!(s.const_value(&["NO_SUCH".to_owned()]).is_none());
    }

    #[test]
    fn drift_between_bounds_and_ladder_is_fatal() {
        let mut s = Seeds::for_tests();
        s.consts.insert("VDD_MAX_V".to_owned(), 1.5);
        let ladder = [(2.5, 1.45), (1.0, 0.95)];
        assert!(s.cross_check(&ladder).unwrap_err().contains("seed drift"));
    }

    #[test]
    fn efficiency_summary_is_half_open() {
        let s = Seeds::for_tests();
        let eta = s.method_summary("efficiency").unwrap();
        assert!(eta.proves_gt(0.0));
        assert!(eta.proves_le(1.0));
        assert!(!eta.proves_ge(0.1));
    }
}
