//! `cargo xtask flow`: dataflow analysis over per-function abstract
//! interpretation (ISSUE 6).
//!
//! Where `lint` matches lines and `analyze` matches token shapes, `flow`
//! evaluates *values*: it parses each function into a lightweight AST
//! ([`ast`]), runs a big-step abstract interpreter over the interval
//! domain ([`interval`], [`range`]) seeded with the workspace's physical
//! contracts ([`seeds`]), and reports three kinds of findings:
//!
//! * [`range`] — interval/range analysis of physical quantities. Every
//!   `invariants::assert_*` sanitizer call is decomposed into elementary
//!   checks, each classified **proven** (the runtime check can never
//!   fire), **runtime** (kept, it guards something real) or **violated**
//!   (statically refuted — a diagnostic). Out-of-range flows into
//!   `Converter::set_ratio` and `VfLevel::from_index` are flagged too.
//! * [`schema`] — telemetry schema conformance: every emission site
//!   names its stream via a declared `schema::` constant, and every
//!   declared constant is referenced somewhere (dead-schema report).
//! * [`errpath`] — error-path hygiene: dropped `Result`s from
//!   unambiguously fallible calls (`let _ =`, `.ok();`, bare calls).
//!
//! All findings use the shared diagnostic format and waiver machinery of
//! [`crate::lint`] (inline `// lint:allow(<pass>): <reason>` markers and
//! `xtask/lint-allow.txt` prefixes, with unused waivers failing the run).
//! `cargo xtask flow` additionally enforces a *proof-coverage gate*: at
//! least [`PROVEN_RATIO_GATE`] of the sanitizer checks must be statically
//! proven, so the pass keeps earning its place as the code evolves.
//! [`write_report`] serialises the run into `results/flow_report.json`.

pub mod ast;
pub mod errpath;
// The domain and interpreter compare exact f64 interval endpoints (bounds
// are propagated bit-exactly, never computed approximately), so equality
// on them is meaningful.
#[allow(clippy::float_cmp)]
pub mod interval;
#[allow(clippy::float_cmp)]
pub mod range;
pub mod schema;
pub mod seeds;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lint::{self, Report, Violation};
use crate::syntax::files;
use crate::syntax::source::SourceFile;

/// The passes `cargo xtask flow` runs; scopes unused-waiver accounting.
pub const PASSES: &[&str] = &[range::PASS, schema::PASS, errpath::PASS];

/// Minimum fraction of elementary sanitizer checks that must be proven
/// statically for the flow gate to pass.
pub const PROVEN_RATIO_GATE: f64 = 0.70;

/// Per-crate proven/unproven/violated check counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrateStats {
    /// Checks proven statically dischargeable.
    pub proven: usize,
    /// Checks left to the runtime sanitizer.
    pub unproven: usize,
    /// Checks statically refuted.
    pub violated: usize,
}

/// Everything a `cargo xtask flow` run produced.
#[derive(Debug)]
pub struct FlowOutcome {
    /// Violations (post-waiver) in the shared diagnostic format.
    pub report: Report,
    /// Every sanitizer site the range pass classified.
    pub sites: Vec<range::SiteRecord>,
    /// Range-check counts per crate.
    pub per_crate: BTreeMap<String, CrateStats>,
    /// Telemetry emission sites inspected by the schema pass.
    pub emission_sites: usize,
    /// Constants declared in the telemetry schema.
    pub schema_constants: usize,
    /// Declared schema constants never referenced in code.
    pub dead_schema: usize,
    /// Unambiguously fallible function names the must-use pass checks.
    pub fallible_names: usize,
    /// Fraction of elementary sanitizer checks proven statically.
    pub proven_ratio: f64,
    /// `proven_ratio >= PROVEN_RATIO_GATE`.
    pub proof_gate_passed: bool,
}

impl FlowOutcome {
    /// Total elementary checks across all sites.
    pub fn checks(&self) -> usize {
        self.sites.iter().map(|s| s.checks.len()).sum()
    }

    fn count(&self, status: range::CheckStatus) -> usize {
        self.sites
            .iter()
            .flat_map(|s| &s.checks)
            .filter(|c| c.status == status)
            .count()
    }

    /// Human-readable per-pass summary lines.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "xtask flow [range]: {} sanitizer sites, {} elementary checks — \
             {} proven, {} runtime, {} violated ({:.1}% proven)",
            self.sites.len(),
            self.checks(),
            self.count(range::CheckStatus::Proven),
            self.count(range::CheckStatus::Runtime),
            self.count(range::CheckStatus::Violated),
            self.proven_ratio * 100.0,
        );
        let _ = writeln!(
            out,
            "xtask flow [schema]: {} emission sites against {} declared constants, \
             {} dead",
            self.emission_sites, self.schema_constants, self.dead_schema,
        );
        let _ = write!(
            out,
            "xtask flow [must-use]: {} unambiguously fallible names tracked",
            self.fallible_names,
        );
        out
    }
}

/// Runs the three dataflow passes over the workspace rooted at `root`.
///
/// Side-effect free: writing `results/flow_report.json` is a separate,
/// explicit step ([`write_report`]) so tests can run the analysis without
/// touching the filesystem.
pub fn run(root: &Path) -> Result<FlowOutcome, String> {
    let mut allow = lint::Allowlist::load(root)?;
    let seeds = seeds::Seeds::learn(root)?;
    let schema_decl = schema::Schema::learn(root)?;

    // Experiment binaries are in scope: their telemetry streams and error
    // paths are exactly what the schema and must-use passes protect.
    let paths = files::collect_crate_sources(root, true)?;
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = files::relative(root, path);
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push(SourceFile::parse(&rel, &text));
    }
    let fallible = errpath::FallibleSet::learn_from(&sources);

    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };

    // Two-stage run: per-file findings are buffered so the whole-workspace
    // dead-schema results can be appended to the declaring file before
    // waiver accounting (a waiver for a dead constant must count as used).
    let mut buffered: Vec<(SourceFile, Vec<Violation>)> = Vec::new();
    let mut used_schema = std::collections::BTreeSet::new();
    let mut sites = Vec::new();
    let mut emission_sites = 0;

    for src in sources {
        let mut findings = Vec::new();
        if range::applies_to(&src.path) {
            let (file_sites, file_violations) = range::check(&src, &seeds);
            sites.extend(file_sites);
            findings.extend(file_violations);
        }
        if schema::applies_to(&src.path) {
            let (file_sites, file_violations) = schema::check(&src, &schema_decl);
            emission_sites += file_sites;
            findings.extend(file_violations);
        }
        used_schema.extend(schema::collect_uses(&src));
        if errpath::applies_to(&src.path) {
            findings.extend(errpath::check(&src, &fallible));
        }
        buffered.push((src, findings));
    }

    let dead = schema_decl.dead(&used_schema);
    let dead_schema = dead.len();
    match buffered
        .iter_mut()
        .find(|(src, _)| src.path == schema::DECL_PATH)
    {
        Some((_, findings)) => findings.extend(dead),
        None => report.violations.extend(dead),
    }

    for (src, findings) in buffered {
        lint::apply_file_waivers(&mut allow, &src, findings, PASSES, &mut report);
    }
    report.violations.extend(allow.unused(PASSES));
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    let mut per_crate: BTreeMap<String, CrateStats> = BTreeMap::new();
    for site in &sites {
        let stats = per_crate.entry(crate_of(&site.path)).or_default();
        for check in &site.checks {
            match check.status {
                range::CheckStatus::Proven => stats.proven += 1,
                range::CheckStatus::Runtime => stats.unproven += 1,
                range::CheckStatus::Violated => stats.violated += 1,
            }
        }
    }

    let checks: usize = sites.iter().map(|s| s.checks.len()).sum();
    let proven = sites
        .iter()
        .flat_map(|s| &s.checks)
        .filter(|c| c.status == range::CheckStatus::Proven)
        .count();
    // With no sanitizer sites there is nothing to prove; the gate is
    // vacuously satisfied (the schema/must-use passes still ran).
    #[allow(clippy::cast_precision_loss)] // check counts are tiny
    let proven_ratio = if checks == 0 {
        1.0
    } else {
        proven as f64 / checks as f64
    };

    Ok(FlowOutcome {
        report,
        sites,
        per_crate,
        emission_sites,
        schema_constants: schema_decl.len(),
        dead_schema,
        fallible_names: fallible.len(),
        proven_ratio,
        proof_gate_passed: proven_ratio >= PROVEN_RATIO_GATE,
    })
}

/// Serialises `outcome` to `results/flow_report.json` (hand-rolled JSON —
/// xtask is dependency-free by design). Returns the path written.
pub fn write_report(root: &Path, outcome: &FlowOutcome) -> Result<PathBuf, String> {
    let dir = root.join("results");
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("flow_report.json");
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"cargo xtask flow\",");
    let _ = writeln!(json, "  \"gate\": {PROVEN_RATIO_GATE},");
    let _ = writeln!(json, "  \"proven_ratio\": {:.4},", outcome.proven_ratio);
    let _ = writeln!(json, "  \"gate_passed\": {},", outcome.proof_gate_passed);
    let _ = writeln!(
        json,
        "  \"totals\": {{\"sites\": {}, \"checks\": {}, \"proven\": {}, \
         \"unproven\": {}, \"violated\": {}}},",
        outcome.sites.len(),
        outcome.checks(),
        outcome.count(range::CheckStatus::Proven),
        outcome.count(range::CheckStatus::Runtime),
        outcome.count(range::CheckStatus::Violated),
    );
    let _ = writeln!(
        json,
        "  \"schema\": {{\"declared\": {}, \"emission_sites\": {}, \"dead\": {}}},",
        outcome.schema_constants, outcome.emission_sites, outcome.dead_schema,
    );
    let _ = writeln!(
        json,
        "  \"must_use\": {{\"fallible_names\": {}}},",
        outcome.fallible_names,
    );
    json.push_str("  \"per_crate\": {\n");
    let entries: Vec<String> = outcome
        .per_crate
        .iter()
        .map(|(name, s)| {
            format!(
                "    \"{name}\": {{\"proven\": {}, \"unproven\": {}, \"violated\": {}}}",
                s.proven, s.unproven, s.violated
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  },\n");
    json.push_str("  \"sites\": [\n");
    let entries: Vec<String> = outcome
        .sites
        .iter()
        .map(|site| {
            let count = |st| {
                site.checks
                    .iter()
                    .filter(|c| c.status == st)
                    .count()
            };
            format!(
                "    {{\"path\": \"{}\", \"line\": {}, \"kind\": \"{}\", \
                 \"proven\": {}, \"unproven\": {}, \"violated\": {}}}",
                site.path,
                site.line,
                site.kind,
                count(range::CheckStatus::Proven),
                count(range::CheckStatus::Runtime),
                count(range::CheckStatus::Violated),
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// The crate name component of a `crates/<name>/…` path.
fn crate_of(path: &str) -> String {
    path.split('/').nth(1).unwrap_or("?").to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask has a parent")
            .to_path_buf()
    }

    /// The flow gate over the real workspace: clean, and the proof ratio
    /// meets the gate (acceptance: ≥ 70% of sanitizer checks proven).
    #[test]
    fn workspace_is_flow_clean_and_meets_the_proof_gate() {
        let outcome = run(&workspace_root()).expect("flow runs");
        assert!(
            outcome.report.violations.is_empty(),
            "workspace must be flow-clean:\n{}",
            outcome
                .report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            !outcome.sites.is_empty(),
            "the engine's sanitizer sites must be visible to the range pass"
        );
        assert!(
            outcome.proof_gate_passed,
            "proven ratio {:.3} below gate {PROVEN_RATIO_GATE} — sites: {:#?}",
            outcome.proven_ratio,
            outcome.sites
        );
        assert!(outcome.emission_sites > 0, "engine emissions must be seen");
        assert_eq!(outcome.dead_schema, 0, "schema must have no dead constants");
    }
}
