//! `cargo xtask flow`: dataflow analysis over per-function abstract
//! interpretation (ISSUE 6).
//!
//! Where `lint` matches lines and `analyze` matches token shapes, `flow`
//! evaluates *values*: it parses each function into a lightweight AST
//! ([`ast`]), runs a big-step abstract interpreter over the interval
//! domain ([`interval`], [`range`]) seeded with the workspace's physical
//! contracts ([`seeds`]), and reports three kinds of findings:
//!
//! * [`range`] — interval/range analysis of physical quantities. Every
//!   `invariants::assert_*` sanitizer call is decomposed into elementary
//!   checks, each classified **proven** (the runtime check can never
//!   fire), **runtime** (kept, it guards something real) or **violated**
//!   (statically refuted — a diagnostic). Out-of-range flows into
//!   `Converter::set_ratio` and `VfLevel::from_index` are flagged too.
//! * [`schema`] — telemetry schema conformance: every emission site
//!   names its stream via a declared `schema::` constant, and every
//!   declared constant is referenced somewhere (dead-schema report).
//! * [`errpath`] — error-path hygiene: dropped `Result`s from
//!   unambiguously fallible calls (`let _ =`, `.ok();`, bare calls).
//!
//! All findings use the shared diagnostic format and waiver machinery of
//! [`crate::lint`] (inline `// lint:allow(<pass>): <reason>` markers and
//! `xtask/lint-allow.txt` prefixes, with unused waivers failing the run).
//!
//! The range pass runs *interprocedurally*: [`run`] first builds the
//! workspace call graph ([`crate::graph`]) and feeds its derived function
//! summaries back as a [`range::CallOracle`], so call sites the hand-written
//! seeds don't cover still get non-⊤ return intervals, and closed-world
//! parameters get intervals joined over every call site.
//!
//! `cargo xtask flow` additionally enforces a *proof-coverage ratchet*:
//! the proven fraction of sanitizer checks is compared against the
//! baseline recorded in the committed `results/flow_report.json` — it may
//! rise but never drop (`cargo xtask flow --bless` advances the baseline
//! by rewriting the report). With no committed report the fixed floor
//! [`PROVEN_RATIO_FLOOR`] applies. [`write_report`] serialises the run
//! into `results/flow_report.json` in canonical sorted-key JSON
//! ([`crate::jsonout`]), so the artifact is byte-diffable.

pub mod ast;
pub mod errpath;
// The domain and interpreter compare exact f64 interval endpoints (bounds
// are propagated bit-exactly, never computed approximately), so equality
// on them is meaningful.
#[allow(clippy::float_cmp)]
pub mod interval;
#[allow(clippy::float_cmp)]
pub mod range;
pub mod schema;
pub mod seeds;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use crate::jsonout::Json;
use crate::lint::{self, Report, Violation};
use crate::syntax::files;
use crate::syntax::source::SourceFile;

/// The passes `cargo xtask flow` runs; scopes unused-waiver accounting.
pub const PASSES: &[&str] = &[range::PASS, schema::PASS, errpath::PASS];

/// Fallback proof-coverage floor, used only when no committed
/// `results/flow_report.json` exists to ratchet against.
pub const PROVEN_RATIO_FLOOR: f64 = 0.70;

/// The baseline proven ratio the current run must not drop below: the
/// `proven_ratio` recorded in the committed `results/flow_report.json`,
/// clamped to at least [`PROVEN_RATIO_FLOOR`] (the ratchet never winds
/// backwards past the original gate).
pub fn baseline_ratio(root: &Path) -> f64 {
    let path = root.join("results").join("flow_report.json");
    fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse_ratio(&text))
        .map_or(PROVEN_RATIO_FLOOR, |r| r.max(PROVEN_RATIO_FLOOR))
}

/// Extracts the `"proven_ratio": <number>` field from a report without a
/// JSON parser (xtask is dependency-free; the field is written by
/// [`write_report`] in a known canonical shape).
fn parse_ratio(text: &str) -> Option<f64> {
    let key = "\"proven_ratio\":";
    let rest = text[text.find(key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-crate proven/unproven/violated check counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrateStats {
    /// Checks proven statically dischargeable.
    pub proven: usize,
    /// Checks left to the runtime sanitizer.
    pub unproven: usize,
    /// Checks statically refuted.
    pub violated: usize,
}

/// Everything a `cargo xtask flow` run produced.
#[derive(Debug)]
pub struct FlowOutcome {
    /// Violations (post-waiver) in the shared diagnostic format.
    pub report: Report,
    /// Every sanitizer site the range pass classified.
    pub sites: Vec<range::SiteRecord>,
    /// Range-check counts per crate.
    pub per_crate: BTreeMap<String, CrateStats>,
    /// Telemetry emission sites inspected by the schema pass.
    pub emission_sites: usize,
    /// Constants declared in the telemetry schema.
    pub schema_constants: usize,
    /// Declared schema constants never referenced in code.
    pub dead_schema: usize,
    /// Unambiguously fallible function names the must-use pass checks.
    pub fallible_names: usize,
    /// Fraction of elementary sanitizer checks proven statically.
    pub proven_ratio: f64,
    /// The ratchet baseline this run was held to ([`baseline_ratio`]).
    pub baseline: f64,
    /// `proven_ratio >= baseline` (the ratchet: coverage never drops).
    pub proof_gate_passed: bool,
}

impl FlowOutcome {
    /// Total elementary checks across all sites.
    pub fn checks(&self) -> usize {
        self.sites.iter().map(|s| s.checks.len()).sum()
    }

    fn count(&self, status: range::CheckStatus) -> usize {
        self.sites
            .iter()
            .flat_map(|s| &s.checks)
            .filter(|c| c.status == status)
            .count()
    }

    /// Human-readable per-pass summary lines.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "xtask flow [range]: {} sanitizer sites, {} elementary checks — \
             {} proven, {} runtime, {} violated ({:.1}% proven, ratchet {:.1}%)",
            self.sites.len(),
            self.checks(),
            self.count(range::CheckStatus::Proven),
            self.count(range::CheckStatus::Runtime),
            self.count(range::CheckStatus::Violated),
            self.proven_ratio * 100.0,
            self.baseline * 100.0,
        );
        let _ = writeln!(
            out,
            "xtask flow [schema]: {} emission sites against {} declared constants, \
             {} dead",
            self.emission_sites, self.schema_constants, self.dead_schema,
        );
        let _ = write!(
            out,
            "xtask flow [must-use]: {} unambiguously fallible names tracked",
            self.fallible_names,
        );
        out
    }
}

/// Runs the three dataflow passes over the workspace rooted at `root`.
///
/// Side-effect free: writing `results/flow_report.json` is a separate,
/// explicit step ([`write_report`]) so tests can run the analysis without
/// touching the filesystem.
pub fn run(root: &Path) -> Result<FlowOutcome, String> {
    let mut allow = lint::Allowlist::load(root)?;
    let seeds = seeds::Seeds::learn(root)?;
    let schema_decl = schema::Schema::learn(root)?;

    // Interprocedural front end: derive function summaries and closed-world
    // parameter intervals from the whole-workspace call graph, then hold the
    // range pass to them through the `CallOracle` hook. Sites the seeds
    // already cover are unaffected; everything else gets sharper than ⊤.
    let graph_sources = crate::graph::load_sources(root)?;
    let analysis = crate::graph::analyze(&graph_sources, &seeds);
    let oracle = &analysis.summary.oracle;

    // Experiment binaries are in scope: their telemetry streams and error
    // paths are exactly what the schema and must-use passes protect.
    let paths = files::collect_crate_sources(root, true)?;
    let mut sources = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = files::relative(root, path);
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push(SourceFile::parse(&rel, &text));
    }
    let fallible = errpath::FallibleSet::learn_from(&sources);

    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };

    // Two-stage run: per-file findings are buffered so the whole-workspace
    // dead-schema results can be appended to the declaring file before
    // waiver accounting (a waiver for a dead constant must count as used).
    let mut buffered: Vec<(SourceFile, Vec<Violation>)> = Vec::new();
    let mut used_schema = std::collections::BTreeSet::new();
    let mut sites = Vec::new();
    let mut emission_sites = 0;

    for src in sources {
        let mut findings = Vec::new();
        if range::applies_to(&src.path) {
            let (file_sites, file_violations) = range::check_with(&src, &seeds, Some(oracle));
            sites.extend(file_sites);
            findings.extend(file_violations);
        }
        if schema::applies_to(&src.path) {
            let (file_sites, file_violations) = schema::check(&src, &schema_decl);
            emission_sites += file_sites;
            findings.extend(file_violations);
        }
        used_schema.extend(schema::collect_uses(&src));
        if errpath::applies_to(&src.path) {
            findings.extend(errpath::check(&src, &fallible));
        }
        buffered.push((src, findings));
    }

    let dead = schema_decl.dead(&used_schema);
    let dead_schema = dead.len();
    match buffered
        .iter_mut()
        .find(|(src, _)| src.path == schema::DECL_PATH)
    {
        Some((_, findings)) => findings.extend(dead),
        None => report.violations.extend(dead),
    }

    for (src, findings) in buffered {
        lint::apply_file_waivers(&mut allow, &src, findings, PASSES, &mut report);
    }
    report.violations.extend(allow.unused(PASSES));
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    let mut per_crate: BTreeMap<String, CrateStats> = BTreeMap::new();
    for site in &sites {
        let stats = per_crate.entry(crate_of(&site.path)).or_default();
        for check in &site.checks {
            match check.status {
                range::CheckStatus::Proven => stats.proven += 1,
                range::CheckStatus::Runtime => stats.unproven += 1,
                range::CheckStatus::Violated => stats.violated += 1,
            }
        }
    }

    let checks: usize = sites.iter().map(|s| s.checks.len()).sum();
    let proven = sites
        .iter()
        .flat_map(|s| &s.checks)
        .filter(|c| c.status == range::CheckStatus::Proven)
        .count();
    // With no sanitizer sites there is nothing to prove; the gate is
    // vacuously satisfied (the schema/must-use passes still ran).
    #[allow(clippy::cast_precision_loss)] // check counts are tiny
    let proven_ratio = if checks == 0 {
        1.0
    } else {
        proven as f64 / checks as f64
    };
    let baseline = baseline_ratio(root);

    Ok(FlowOutcome {
        report,
        sites,
        per_crate,
        emission_sites,
        schema_constants: schema_decl.len(),
        dead_schema,
        fallible_names: fallible.len(),
        proven_ratio,
        baseline,
        proof_gate_passed: proven_ratio >= baseline,
    })
}

/// The canonical report document: sorted keys, shortest-roundtrip floats
/// ([`crate::jsonout`]), so two runs over the same tree render to
/// identical bytes and the committed artifact diffs cleanly.
pub fn report_json(outcome: &FlowOutcome) -> Json {
    let per_crate = outcome
        .per_crate
        .iter()
        .map(|(name, s)| {
            (
                name.as_str(),
                Json::obj(vec![
                    ("proven", Json::int(s.proven)),
                    ("unproven", Json::int(s.unproven)),
                    ("violated", Json::int(s.violated)),
                ]),
            )
        })
        .collect();
    let sites = outcome
        .sites
        .iter()
        .map(|site| {
            let count = |st| site.checks.iter().filter(|c| c.status == st).count();
            Json::obj(vec![
                ("kind", Json::str(site.kind.to_string())),
                ("line", Json::int(site.line)),
                ("path", Json::str(&site.path)),
                ("proven", Json::int(count(range::CheckStatus::Proven))),
                ("unproven", Json::int(count(range::CheckStatus::Runtime))),
                ("violated", Json::int(count(range::CheckStatus::Violated))),
            ])
        })
        .collect();
    Json::obj(vec![
        ("baseline", Json::Num(outcome.baseline)),
        ("gate_passed", Json::Bool(outcome.proof_gate_passed)),
        ("generated_by", Json::str("cargo xtask flow")),
        (
            "must_use",
            Json::obj(vec![("fallible_names", Json::int(outcome.fallible_names))]),
        ),
        ("per_crate", Json::obj(per_crate)),
        ("proven_ratio", Json::Num(outcome.proven_ratio)),
        (
            "schema",
            Json::obj(vec![
                ("dead", Json::int(outcome.dead_schema)),
                ("declared", Json::int(outcome.schema_constants)),
                ("emission_sites", Json::int(outcome.emission_sites)),
            ]),
        ),
        ("sites", Json::Arr(sites)),
        (
            "totals",
            Json::obj(vec![
                ("checks", Json::int(outcome.checks())),
                (
                    "proven",
                    Json::int(outcome.count(range::CheckStatus::Proven)),
                ),
                ("sites", Json::int(outcome.sites.len())),
                (
                    "unproven",
                    Json::int(outcome.count(range::CheckStatus::Runtime)),
                ),
                (
                    "violated",
                    Json::int(outcome.count(range::CheckStatus::Violated)),
                ),
            ]),
        ),
    ])
}

/// Serialises `outcome` to `results/flow_report.json` (canonical sorted-
/// key JSON — this is the artifact [`baseline_ratio`] ratchets against).
/// Returns the path written.
pub fn write_report(root: &Path, outcome: &FlowOutcome) -> Result<PathBuf, String> {
    let dir = root.join("results");
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("flow_report.json");
    fs::write(&path, report_json(outcome).render())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// The crate name component of a `crates/<name>/…` path.
fn crate_of(path: &str) -> String {
    path.split('/').nth(1).unwrap_or("?").to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask has a parent")
            .to_path_buf()
    }

    /// The flow gate over the real workspace: clean, and the proof ratio
    /// meets the ratchet baseline read from the committed report.
    #[test]
    fn workspace_is_flow_clean_and_meets_the_proof_ratchet() {
        let outcome = run(&workspace_root()).expect("flow runs");
        assert!(
            outcome.report.violations.is_empty(),
            "workspace must be flow-clean:\n{}",
            outcome
                .report
                .violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            !outcome.sites.is_empty(),
            "the engine's sanitizer sites must be visible to the range pass"
        );
        assert!(
            outcome.proof_gate_passed,
            "proven ratio {:.4} below ratchet baseline {:.4} — sites: {:#?}",
            outcome.proven_ratio, outcome.baseline, outcome.sites
        );
        // The interprocedural oracle must beat the best purely seed-driven
        // run (20/27 ≈ 0.7407): derived summaries and closed-world params
        // are load-bearing, not decorative.
        assert!(
            outcome.proven_ratio > 0.7407,
            "oracle added no proofs: ratio {:.4}",
            outcome.proven_ratio
        );
        assert!(outcome.emission_sites > 0, "engine emissions must be seen");
        assert_eq!(outcome.dead_schema, 0, "schema must have no dead constants");
    }

    /// Satellite (b): the report is canonical — two runs over the same
    /// tree render byte-identical JSON.
    #[test]
    fn report_is_byte_stable_across_runs() {
        let root = workspace_root();
        let a = report_json(&run(&root).expect("first run")).render();
        let b = report_json(&run(&root).expect("second run")).render();
        assert_eq!(a, b, "flow report must be byte-stable");
    }

    #[test]
    fn ratio_parses_out_of_a_committed_report() {
        assert_eq!(parse_ratio("{\"proven_ratio\": 0.7407,"), Some(0.7407));
        assert_eq!(parse_ratio("{\"proven_ratio\":0.8148}"), Some(0.8148));
        assert_eq!(parse_ratio("{\"gate\": 0.7}"), None);
        // A malformed value falls back rather than panicking.
        assert_eq!(parse_ratio("{\"proven_ratio\": oops,"), None);
    }

    /// The ratchet clamps to the floor: a missing or low committed
    /// baseline never relaxes the original 70% gate.
    // The values round-trip through decimal text unchanged, so exact
    // comparison is the point of the test.
    #[allow(clippy::float_cmp)]
    #[test]
    fn baseline_never_drops_below_the_floor() {
        let dir = std::env::temp_dir().join("xtask-flow-ratchet-test");
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(baseline_ratio(&dir), PROVEN_RATIO_FLOOR);
        fs::create_dir_all(dir.join("results")).expect("mkdir");
        fs::write(
            dir.join("results").join("flow_report.json"),
            "{\"proven_ratio\": 0.5}\n",
        )
        .expect("write");
        assert_eq!(baseline_ratio(&dir), PROVEN_RATIO_FLOOR);
        fs::write(
            dir.join("results").join("flow_report.json"),
            "{\"proven_ratio\": 0.8}\n",
        )
        .expect("write");
        assert_eq!(baseline_ratio(&dir), 0.8);
        let _ = fs::remove_dir_all(&dir);
    }
}
