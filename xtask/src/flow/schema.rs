//! The telemetry schema-conformance pass.
//!
//! The observability contract (DESIGN.md §14) requires every stream name
//! the simulator emits to be declared once, as a constant in
//! `solarcore::telemetry::schema`. This pass closes the loop statically:
//!
//! * **Learn**: the declared name set is read from the `pub mod schema`
//!   block of `crates/solarcore/src/telemetry.rs` (token-level scan — the
//!   constants' *names* are the schema; their string values are opaque to
//!   masked source and irrelevant to conformance).
//! * **Conform**: every emission site in the simulation crates —
//!   `.event(`/`.span(` calls and `Histogram::new`/`Counter::new`
//!   constructions — must name its stream via `schema::<CONST>`. A masked
//!   string literal (which lexes to zero tokens) or any other expression
//!   in name position is a violation, as is a `schema::` path whose
//!   constant is not declared.
//! * **Dead schema**: a declared constant never referenced anywhere in
//!   the workspace code (doc comments do not count — they are masked) is
//!   reported at its declaration line.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::lint::Violation;
use crate::syntax::lexer::{lex, matching_close, Token};
use crate::syntax::source::SourceFile;

/// Pass identifier (diagnostics, waiver markers, allowlist entries).
pub const PASS: &str = "schema";

/// Repo-relative path of the schema declaration file.
pub const DECL_PATH: &str = "crates/solarcore/src/telemetry.rs";

/// The learned telemetry schema: declared constant names with their
/// declaration lines.
#[derive(Debug, Clone)]
pub struct Schema {
    names: BTreeMap<String, usize>,
}

impl Schema {
    /// Learns the schema from the workspace's declaration file.
    pub fn learn(root: &Path) -> Result<Schema, String> {
        let path = root.join(DECL_PATH);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("schema: cannot read {DECL_PATH}: {e}"))?;
        let src = SourceFile::parse(DECL_PATH, &text);
        let schema = Schema::from_source(&src)?;
        if schema.names.is_empty() {
            return Err(format!("schema: no constants found in {DECL_PATH}"));
        }
        Ok(schema)
    }

    /// Learns the schema from an already-parsed declaration source (the
    /// entry point tests use).
    pub fn from_source(src: &SourceFile) -> Result<Schema, String> {
        let tokens = lex(src);
        let Some(open) = find_schema_mod(&tokens) else {
            return Err(format!("schema: no `mod schema` block in {}", src.path));
        };
        let close = matching_close(&tokens, open)
            .ok_or_else(|| format!("schema: unbalanced `mod schema` in {}", src.path))?;
        let mut names = BTreeMap::new();
        let mut i = open + 1;
        while i < close {
            if tokens[i].is_ident("const") {
                if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                    names.entry(name.to_owned()).or_insert(tokens[i + 1].line);
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
        Ok(Schema { names })
    }

    /// Number of declared constants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no constants were learned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// `true` if `name` is a declared schema constant.
    pub fn declares(&self, name: &str) -> bool {
        self.names.contains_key(name)
    }

    /// Declared constants absent from `used`, as dead-schema violations
    /// anchored at their declaration lines.
    pub fn dead(&self, used: &BTreeSet<String>) -> Vec<Violation> {
        self.names
            .iter()
            .filter(|(name, _)| !used.contains(*name))
            .map(|(name, line)| Violation {
                pass: PASS,
                path: DECL_PATH.to_owned(),
                line: *line,
                message: format!(
                    "schema constant `{name}` is declared but never referenced (dead schema)"
                ),
            })
            .collect()
    }
}

/// `true` for files whose emission sites must conform: the simulation
/// crates that write to the telemetry stream.
pub fn applies_to(path: &str) -> bool {
    (path.starts_with("crates/solarcore/src/")
        || path.starts_with("crates/powertrain/src/")
        || path.starts_with("crates/pv/src/"))
        && path.ends_with(".rs")
}

/// Checks every emission site in `src` against the schema. Returns the
/// number of sites inspected and the violations found. Test code is
/// exempt (tests may emit ad-hoc streams to probe the telemetry layer).
pub fn check(src: &SourceFile, schema: &Schema) -> (usize, Vec<Violation>) {
    let tokens = lex(src);
    let mut sites = 0;
    let mut violations = Vec::new();
    for i in 0..tokens.len() {
        let site = emission_at(&tokens, i);
        let Some((what, name_pos, line)) = site else {
            continue;
        };
        if src.is_test_line(line) {
            continue;
        }
        sites += 1;
        match schema_const_at(&tokens, name_pos) {
            NameArg::SchemaConst(name) => {
                if !schema.declares(&name) {
                    violations.push(Violation {
                        pass: PASS,
                        path: src.path.clone(),
                        line,
                        message: format!(
                            "{what} names `schema::{name}`, which is not declared in the \
                             telemetry schema"
                        ),
                    });
                }
            }
            NameArg::Literal => violations.push(Violation {
                pass: PASS,
                path: src.path.clone(),
                line,
                message: format!(
                    "{what} names its stream with a string literal; declare the name in \
                     `solarcore::telemetry::schema` and use the constant"
                ),
            }),
            NameArg::Other => violations.push(Violation {
                pass: PASS,
                path: src.path.clone(),
                line,
                message: format!("{what} must name its stream via a `schema::` constant"),
            }),
        }
    }
    (sites, violations)
}

/// Collects every `schema::<CONST>` reference in `src` (test code
/// included — a test exercising a stream keeps its name alive).
pub fn collect_uses(src: &SourceFile) -> BTreeSet<String> {
    let tokens = lex(src);
    // Inside the declaration block itself nothing counts as a use.
    let decl_range = if src.path == DECL_PATH {
        find_schema_mod(&tokens)
            .and_then(|open| matching_close(&tokens, open).map(|close| (open, close)))
    } else {
        None
    };
    let mut used = BTreeSet::new();
    for i in 0..tokens.len() {
        if let Some((open, close)) = decl_range {
            if i >= open && i <= close {
                continue;
            }
        }
        if tokens[i].is_ident("schema") && tokens.get(i + 1).is_some_and(|t| t.is_op("::")) {
            if let Some(name) = tokens.get(i + 2).and_then(Token::ident) {
                used.insert(name.to_owned());
            }
        }
    }
    used
}

/// The index of the `{` opening the `mod schema` block, if any.
fn find_schema_mod(tokens: &[Token]) -> Option<usize> {
    (0..tokens.len()).find_map(|i| {
        (tokens[i].is_ident("mod")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("schema"))
            && tokens.get(i + 2).is_some_and(|t| t.is_op("{")))
        .then_some(i + 2)
    })
}

/// If an emission site starts at token `i`, returns its description, the
/// index of its first argument token, and its source line.
fn emission_at(tokens: &[Token], i: usize) -> Option<(String, usize, usize)> {
    // `.event(` / `.span(` — a stream emission through a handle — and
    // `.scope(` — a profiler span whose name keys the merged span tree.
    if tokens[i].is_op(".") {
        let name = tokens.get(i + 1).and_then(Token::ident)?;
        if (name == "event" || name == "span" || name == "scope")
            && tokens.get(i + 2).is_some_and(|t| t.is_op("("))
        {
            return Some((format!("`.{name}(..)` emission"), i + 3, tokens[i + 1].line));
        }
        return None;
    }
    // `Histogram::new(` / `Counter::new(` — a named metric construction.
    let ty = tokens[i].ident()?;
    if (ty == "Histogram" || ty == "Counter")
        && tokens.get(i + 1).is_some_and(|t| t.is_op("::"))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("new"))
        && tokens.get(i + 3).is_some_and(|t| t.is_op("("))
    {
        return Some((format!("`{ty}::new(..)`"), i + 4, tokens[i].line));
    }
    None
}

/// Shape of the token(s) in name-argument position.
enum NameArg {
    /// `schema::<CONST>` — the conforming shape.
    SchemaConst(String),
    /// Nothing before the delimiter: a masked string literal.
    Literal,
    /// Any other expression.
    Other,
}

fn schema_const_at(tokens: &[Token], pos: usize) -> NameArg {
    match tokens.get(pos) {
        // A masked string lexes to zero tokens, so the delimiter shows
        // up directly in argument position.
        Some(t) if t.is_op(",") || t.is_op(")") => NameArg::Literal,
        Some(t) if t.is_ident("schema") => {
            if tokens.get(pos + 1).is_some_and(|t| t.is_op("::")) {
                if let Some(name) = tokens.get(pos + 2).and_then(Token::ident) {
                    return NameArg::SchemaConst(name.to_owned());
                }
            }
            NameArg::Other
        }
        _ => NameArg::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECL: &str = "pub mod schema {\n\
                        pub const EVENT_MINUTE: &str = \"minute\";\n\
                        pub const SPAN_TRACK: &str = \"track\";\n\
                        pub const HIST_ROUNDS: &str = \"rounds\";\n\
                        pub const UNUSED_ONE: &str = \"ghost\";\n\
                        }\n";

    fn schema() -> Schema {
        Schema::from_source(&SourceFile::parse(DECL_PATH, DECL)).unwrap()
    }

    #[test]
    fn learns_declared_constants() {
        let s = schema();
        assert_eq!(s.len(), 4);
        assert!(s.declares("EVENT_MINUTE"));
        assert!(s.declares("SPAN_TRACK"));
        assert!(!s.declares("EVENT_NOPE"));
    }

    #[test]
    fn conforming_emissions_are_quiet() {
        let src = SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "fn f(tel: &T) {\n\
             tel.event(schema::EVENT_MINUTE, vec![])?;\n\
             tel.span(schema::SPAN_TRACK, 1, vec![])?;\n\
             let h = Histogram::new(schema::HIST_ROUNDS, B);\n\
             }\n",
        );
        let (sites, v) = check(&src, &schema());
        assert_eq!(sites, 3);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn profiler_scopes_are_emission_sites() {
        let conforming = SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "fn f(p: &Profiler) {\n    let _s = p.scope(schema::SPAN_TRACK);\n}\n",
        );
        let (sites, v) = check(&conforming, &schema());
        assert_eq!(sites, 1);
        assert!(v.is_empty(), "{v:?}");

        let literal = SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "fn f(p: &Profiler) {\n    let _s = p.scope(\"track\");\n}\n",
        );
        let (sites, v) = check(&literal, &schema());
        assert_eq!(sites, 1);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn string_literal_emission_is_flagged() {
        let src = SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "fn f(tel: &T) {\n    tel.event(\"minute\", vec![])?;\n}\n",
        );
        let (sites, v) = check(&src, &schema());
        assert_eq!(sites, 1);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("string literal"), "{}", v[0].message);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn undeclared_constant_is_flagged() {
        let src = SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "fn f(tel: &T) {\n    tel.event(schema::EVENT_NOPE, vec![])?;\n}\n",
        );
        let (_, v) = check(&src, &schema());
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("EVENT_NOPE"), "{}", v[0].message);
    }

    #[test]
    fn non_schema_expression_is_flagged() {
        let src = SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "fn f(tel: &T, name: &str) {\n    tel.event(name, vec![])?;\n}\n",
        );
        let (_, v) = check(&src, &schema());
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("schema::"), "{}", v[0].message);
    }

    #[test]
    fn test_code_emissions_are_exempt() {
        let src = SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "#[cfg(test)]\nmod tests {\n\
             fn t(tel: &T) { tel.event(\"adhoc\", vec![]).unwrap(); }\n\
             }\n",
        );
        let (sites, v) = check(&src, &schema());
        assert_eq!(sites, 0);
        assert!(v.is_empty());
    }

    #[test]
    fn dead_schema_is_reported_at_declaration() {
        let uses = collect_uses(&SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "fn f(tel: &T) {\n\
             tel.event(schema::EVENT_MINUTE, vec![])?;\n\
             tel.span(schema::SPAN_TRACK, 1, vec![])?;\n\
             let h = Histogram::new(schema::HIST_ROUNDS, B);\n\
             }\n",
        ));
        let dead = schema().dead(&uses);
        assert_eq!(dead.len(), 1);
        assert!(
            dead[0].message.contains("UNUSED_ONE"),
            "{}",
            dead[0].message
        );
        assert_eq!(dead[0].path, DECL_PATH);
        assert_eq!(dead[0].line, 5);
    }

    #[test]
    fn declaration_block_does_not_count_as_use() {
        let uses = collect_uses(&SourceFile::parse(DECL_PATH, DECL));
        assert!(uses.is_empty());
        // …but code outside the block in the same file does.
        let text = format!("{DECL}fn f() {{ let _n = schema::EVENT_MINUTE; }}\n");
        let uses = collect_uses(&SourceFile::parse(DECL_PATH, &text));
        assert_eq!(uses.into_iter().collect::<Vec<_>>(), ["EVENT_MINUTE"]);
    }

    #[test]
    fn doc_comment_mentions_are_not_uses() {
        let uses = collect_uses(&SourceFile::parse(
            "crates/solarcore/src/engine.rs",
            "/// Records as [`schema::EVENT_MINUTE`].\nfn f() {}\n",
        ));
        assert!(uses.is_empty());
    }
}
