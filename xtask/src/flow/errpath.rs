//! The error-path hygiene (must-use) pass.
//!
//! A dropped `Result` silently swallows an error path — in this
//! workspace that usually means a telemetry write or a powertrain
//! actuation whose failure vanishes. The pass:
//!
//! * **Learns** which function names are fallible by scanning every
//!   `fn` signature in the workspace for a `Result` return-type head.
//!   A name is *unambiguously fallible* only if **every** definition of
//!   it returns `Result` — `new`, `run` and friends exist in both
//!   fallible and infallible forms, and a name-based analysis must not
//!   guess (soundness direction: missed findings over false positives).
//! * **Flags** three drop shapes in non-test code:
//!   1. `let _ = fallible(..);` — explicit discard of a fallible call;
//!   2. `.ok();` — converting to `Option` and immediately dropping it,
//!      which silences the error without inspecting it;
//!   3. a bare `fallible(..);` statement — the return value evaporates.
//!
//! Macros (`write!`, `assert!`, …) are naturally exempt: the token
//! before their `(` is `!`, not an identifier.

use std::collections::BTreeSet;

use crate::lint::Violation;
use crate::syntax::lexer::{lex, matching_close, Tok, Token};
use crate::syntax::source::SourceFile;

/// Pass identifier (diagnostics, waiver markers, allowlist entries).
pub const PASS: &str = "must-use";

/// Names for which every workspace definition returns `Result`.
#[derive(Debug, Clone)]
pub struct FallibleSet {
    names: BTreeSet<String>,
}

impl FallibleSet {
    /// Learns the unambiguously-fallible name set from `sources`.
    pub fn learn_from(sources: &[SourceFile]) -> FallibleSet {
        let mut fallible = BTreeSet::new();
        let mut infallible = BTreeSet::new();
        for src in sources {
            collect_signatures(src, &mut fallible, &mut infallible);
        }
        // `main` returning Result is an exit-code idiom, not a droppable
        // value; never treat the name as fallible.
        infallible.insert("main".to_owned());
        FallibleSet {
            names: &fallible - &infallible,
        }
    }

    /// A fixed set for unit and fixture tests.
    pub fn for_tests() -> FallibleSet {
        FallibleSet {
            names: ["event", "span", "flush", "set_ratio", "save_trace"]
                .into_iter()
                .map(str::to_owned)
                .collect(),
        }
    }

    /// Number of unambiguously fallible names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no fallible names were learned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

/// `true` for files the pass checks: every crate source, bins included.
pub fn applies_to(path: &str) -> bool {
    path.starts_with("crates/") && path.ends_with(".rs")
}

/// Flags dropped fallible results in the non-test code of `src`.
pub fn check(src: &SourceFile, fallible: &FallibleSet) -> Vec<Violation> {
    let tokens = lex(src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Shape 2: `.ok();` — drop-after-conversion.
        if tokens[i].is_op(".")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("ok"))
            && tokens.get(i + 2).is_some_and(|t| t.is_op("("))
            && tokens.get(i + 3).is_some_and(|t| t.is_op(")"))
            && tokens.get(i + 4).is_some_and(|t| t.is_op(";"))
        {
            let line = tokens[i + 1].line;
            if !src.is_test_line(line) {
                out.push(Violation {
                    pass: PASS,
                    path: src.path.clone(),
                    line,
                    message: "error discarded via `.ok();` without inspection; handle the \
                              `Err` or log it"
                        .to_owned(),
                });
            }
            i += 5;
            continue;
        }
        // Shape 1: `let _ = <expr ending in a fallible call>;`
        if tokens[i].is_ident("let")
            && tokens.get(i + 1).is_some_and(|t| t.is_op("_"))
            && tokens.get(i + 2).is_some_and(|t| t.is_op("="))
        {
            let line = tokens[i].line;
            if let Some(end) = stmt_end(&tokens, i + 3) {
                if !src.is_test_line(line) {
                    if let Some(name) = final_call_name(&tokens, i + 3, end) {
                        if fallible.contains(name) {
                            out.push(Violation {
                                pass: PASS,
                                path: src.path.clone(),
                                line,
                                message: format!(
                                    "`let _ =` discards the `Result` of fallible `{name}(..)`; \
                                     handle it or propagate with `?`"
                                ),
                            });
                        }
                    }
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    // Shape 3: bare `fallible(..);` statements.
    check_bare_statements(src, &tokens, fallible, &mut out);
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.message.cmp(&b.message)));
    out
}

/// Scans statement-shaped token runs for bare fallible calls whose value
/// evaporates.
fn check_bare_statements(
    src: &SourceFile,
    tokens: &[Token],
    fallible: &FallibleSet,
    out: &mut Vec<Violation>,
) {
    let mut start = 0;
    let mut depth = 0i32;
    for i in 0..tokens.len() {
        match &tokens[i].tok {
            Tok::Op("(" | "[") => depth += 1,
            Tok::Op(")" | "]") => depth -= 1,
            _ if depth > 0 => {}
            Tok::Op("{" | "}") => start = i + 1,
            Tok::Op(";") => {
                inspect_statement(src, tokens, start, i, fallible, out);
                start = i + 1;
            }
            _ => {}
        }
    }
}

/// Flags the statement `tokens[start..end]` (exclusive of its `;`) if it
/// is a bare call to an unambiguously fallible function.
fn inspect_statement(
    src: &SourceFile,
    tokens: &[Token],
    start: usize,
    end: usize,
    fallible: &FallibleSet,
    out: &mut Vec<Violation>,
) {
    if start >= end {
        return;
    }
    // Keyword-led statements (let, return, use, …) and assignments keep
    // their value; only pure expression statements drop it.
    if let Some(first) = tokens[start].ident() {
        const KEYWORDS: &[&str] = &[
            "let",
            "return",
            "break",
            "continue",
            "use",
            "pub",
            "fn",
            "impl",
            "struct",
            "enum",
            "mod",
            "const",
            "static",
            "type",
            "trait",
            "unsafe",
            "if",
            "match",
            "while",
            "for",
            "loop",
            "else",
            "macro_rules",
            "extern",
            "where",
            "async",
        ];
        if KEYWORDS.contains(&first) {
            return;
        }
    } else {
        return; // attribute, block or operator-led: not a bare call
    }
    let mut depth = 0i32;
    for t in &tokens[start..end] {
        match &t.tok {
            Tok::Op("(" | "[") => depth += 1,
            Tok::Op(")" | "]") => depth -= 1,
            Tok::Op(
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=",
            ) if depth == 0 => {
                return; // assignment: value consumed
            }
            _ => {}
        }
    }
    let Some(name) = final_call_name(tokens, start, end) else {
        return;
    };
    let line = tokens[start].line;
    if fallible.contains(name) && !src.is_test_line(line) {
        out.push(Violation {
            pass: PASS,
            path: src.path.clone(),
            line,
            message: format!(
                "`Result` of fallible `{name}(..)` is dropped by this bare call; handle it \
                 or propagate with `?`"
            ),
        });
    }
}

/// The index of the `;` terminating the statement starting at `from`
/// (brackets of all kinds balanced).
fn stmt_end(tokens: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(from) {
        match &t.tok {
            Tok::Op("(" | "[" | "{") => depth += 1,
            Tok::Op(")" | "]" | "}") => depth -= 1,
            Tok::Op(";") if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// If the expression `tokens[start..end]` ends in a call `name(...)`,
/// returns `name`. Macro invocations (`name!(..)`) yield `None` — the
/// token before their `(` is `!`.
fn final_call_name(tokens: &[Token], start: usize, end: usize) -> Option<&str> {
    if end == start || !tokens[end - 1].is_op(")") {
        return None;
    }
    // Walk back to the matching `(`.
    let mut depth = 0i32;
    let mut open = None;
    for i in (start..end).rev() {
        match &tokens[i].tok {
            Tok::Op(")" | "]" | "}") => depth += 1,
            Tok::Op("(" | "[" | "{") => {
                depth -= 1;
                if depth == 0 {
                    open = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let open = open?;
    if open == start {
        return None; // parenthesised expression, not a call
    }
    tokens[open - 1].ident()
}

/// Collects fallible/infallible definitions of every `fn` in `src`.
fn collect_signatures(
    src: &SourceFile,
    fallible: &mut BTreeSet<String>,
    infallible: &mut BTreeSet<String>,
) {
    let tokens = lex(src);
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        // Skip generics to the parameter list.
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.is_op("<")) {
            let mut angle = 0i32;
            while j < tokens.len() {
                if tokens[j].is_op("<") || tokens[j].is_op("<<") {
                    angle += if tokens[j].is_op("<<") { 2 } else { 1 };
                } else if tokens[j].is_op(">") || tokens[j].is_op(">>") {
                    angle -= if tokens[j].is_op(">>") { 2 } else { 1 };
                    if angle <= 0 {
                        j += 1;
                        break;
                    }
                } else if tokens[j].is_op("->") {
                    angle -= 1; // `->` inside generics: an Fn bound's arrow
                }
                j += 1;
            }
        }
        if !tokens.get(j).is_some_and(|t| t.is_op("(")) {
            i += 1;
            continue;
        }
        let Some(close) = matching_close(&tokens, j) else {
            i += 1;
            continue;
        };
        let name = name.to_owned();
        if tokens.get(close + 1).is_some_and(|t| t.is_op("->")) {
            if return_head_is_result(&tokens, close + 2) {
                fallible.insert(name);
            } else {
                infallible.insert(name);
            }
        } else {
            infallible.insert(name);
        }
        i = close + 1;
    }
}

/// `true` if the return type starting at `from` has `Result` as the last
/// segment of its head path (`Result<..>`, `io::Result<..>`, …) — not
/// merely nested somewhere inside (`Option<Result<..>>` is not fallible
/// at the call site).
fn return_head_is_result(tokens: &[Token], from: usize) -> bool {
    let mut last_ident: Option<&str> = None;
    let mut i = from;
    while let Some(t) = tokens.get(i) {
        if let Some(id) = t.ident() {
            if id == "where" || id == "impl" || id == "dyn" {
                return false;
            }
            last_ident = Some(id);
            i += 1;
            continue;
        }
        if t.is_op("::") {
            i += 1;
            continue;
        }
        break; // `<`, `{`, `;`, `(` … — head path ends here
    }
    last_ident == Some("Result")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(text: &str) -> Vec<Violation> {
        let src = SourceFile::parse("crates/x/src/lib.rs", text);
        check(&src, &FallibleSet::for_tests())
    }

    #[test]
    fn learns_unambiguously_fallible_names() {
        let srcs = [
            SourceFile::parse(
                "crates/a/src/lib.rs",
                "fn event(&self) -> Result<(), Error> { Ok(()) }\n\
                 fn new() -> Result<Self, Error> { todo!() }\n\
                 fn flush(&mut self) -> io::Result<()> { Ok(()) }\n",
            ),
            SourceFile::parse(
                "crates/b/src/lib.rs",
                "fn new() -> Self { Self }\n\
                 fn iter() -> impl Iterator<Item = Result<u8, E>> { std::iter::empty() }\n",
            ),
        ];
        let set = FallibleSet::learn_from(&srcs);
        // `new` is ambiguous (one infallible definition), `iter` returns
        // impl Iterator, so only `event` and `flush` survive.
        assert_eq!(set.len(), 2);
        assert!(set.contains("event"));
        assert!(set.contains("flush"));
        assert!(!set.contains("new"));
        assert!(!set.contains("iter"));
    }

    #[test]
    fn let_underscore_drop_is_flagged() {
        let v = run_src("fn f(tel: &T) {\n    let _ = tel.event(NAME, vec![]);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`let _ =`"), "{}", v[0].message);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn question_mark_and_named_bindings_are_fine() {
        let v = run_src(
            "fn f(tel: &T) -> Result<(), E> {\n\
             tel.event(NAME, vec![])?;\n\
             let res = tel.span(NAME, 1, vec![]);\n\
             res?;\n\
             Ok(())\n\
             }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ok_drop_is_flagged() {
        let v = run_src("fn f(tel: &T) {\n    tel.flush().ok();\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains(".ok();"), "{}", v[0].message);
    }

    #[test]
    fn ok_with_inspection_is_fine() {
        let v = run_src(
            "fn f(tel: &T) -> Option<()> {\n    let got = tel.flush().ok()?;\n    Some(got)\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bare_fallible_call_is_flagged() {
        let v = run_src("fn f(c: &mut Conv) {\n    c.set_ratio(2.0);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("bare call"), "{}", v[0].message);
    }

    #[test]
    fn bare_infallible_call_is_fine() {
        let v = run_src("fn f(v: &mut Vec<u8>) {\n    v.push(1);\n    v.clear();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn macros_and_assignments_are_exempt() {
        let v = run_src(
            "fn f(s: &mut S) {\n\
             assert_eq!(s.event(1), 2);\n\
             s.x = helper(3);\n\
             s.y += helper(4);\n\
             }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let v = run_src(
            "#[cfg(test)]\nmod tests {\n\
             fn t(tel: &T) { let _ = tel.event(N, vec![]); tel.flush().ok(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn chained_final_call_decides() {
        // The *final* call in the chain produces the dropped value.
        let v = run_src("fn f(t: &T) {\n    let _ = t.handle().flush();\n}\n");
        assert_eq!(v.len(), 1);
        let v = run_src("fn f(t: &T) {\n    let _ = t.event(N, vec![]).unwrap_err();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
