//! The interval abstract domain for physical quantities.
//!
//! An [`Interval`] abstracts a set of `f64` values. The concretization:
//!
//! * every *non-NaN* member `x` (±∞ included) satisfies the bounds:
//!   `lo ≤ x ≤ hi`, with an open flag excluding the endpoint itself;
//! * `±∞` membership is therefore part of the bounds: `hi = ∞` *closed*
//!   admits `+∞`, while `hi = ∞` *open* means "unbounded above but
//!   finite" (the shape `is_finite()` checks produce);
//! * `nan` is `true` when NaN may be a member — bounds say nothing
//!   about NaN, so it needs its own flag. `[-∞, ∞]` closed with
//!   `nan = true` is ⊤ (any `f64`).
//!
//! The NaN flag is separate from the bounds because IEEE comparisons
//! treat the two differently: `+∞ ≥ 0` is *true* (an unbounded power can
//! still prove non-negativity) while `NaN ≥ 0` is *false* (a maybe-NaN
//! value proves nothing). A sanitizer check `p.is_finite() && p ≥ 0.0`
//! is dischargeable exactly when the abstract value excludes NaN,
//! excludes ±∞, and has `lo ≥ 0`.
//!
//! All transfer functions are *sound over-approximations*: arithmetic on
//! unbounded operands keeps infinite bounds closed (f64 overflow makes
//! ±∞ genuinely reachable), and NaN-producing combinations (`∞ - ∞`,
//! `0 · ∞`, division by a range containing zero, `min`/`max` of two
//! maybe-NaN sides) set the NaN flag or widen to ⊤. Losing precision can
//! only turn "proven" into "left to the runtime sanitizer", never the
//! reverse.

use std::fmt;

/// An abstract set of `f64` values: bounds plus a NaN flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound for all non-NaN members (`-∞` closed admits `-∞`).
    pub lo: f64,
    /// Upper bound for all non-NaN members (`∞` closed admits `+∞`).
    pub hi: f64,
    /// `true` when `lo` itself is excluded (`lo < x`).
    pub lo_open: bool,
    /// `true` when `hi` itself is excluded (`x < hi`).
    pub hi_open: bool,
    /// `true` when NaN may be a member.
    pub nan: bool,
}

/// Hull of two lower bounds: the smaller wins; a tie stays open only if
/// both exclude the endpoint.
fn hull_lo(a: (f64, bool), b: (f64, bool)) -> (f64, bool) {
    match a.0.partial_cmp(&b.0) {
        Some(std::cmp::Ordering::Less) => a,
        Some(std::cmp::Ordering::Greater) => b,
        _ => (a.0, a.1 && b.1),
    }
}

/// Hull of two upper bounds: the larger wins.
fn hull_hi(a: (f64, bool), b: (f64, bool)) -> (f64, bool) {
    match a.0.partial_cmp(&b.0) {
        Some(std::cmp::Ordering::Greater) => a,
        Some(std::cmp::Ordering::Less) => b,
        _ => (a.0, a.1 && b.1),
    }
}

impl Interval {
    /// ⊤: any `f64`, NaN included.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        lo_open: false,
        hi_open: false,
        nan: true,
    };

    /// The exact singleton `{v}` (`{NaN}` degrades to ⊤).
    pub fn constant(v: f64) -> Interval {
        if v.is_nan() {
            return Interval::TOP;
        }
        Interval {
            lo: v,
            hi: v,
            lo_open: false,
            hi_open: false,
            nan: false,
        }
    }

    /// Closed NaN-free range `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            hi,
            lo_open: false,
            hi_open: false,
            nan: false,
        }
    }

    /// A finite number with no bound information (post-`is_finite()`):
    /// `(-∞, ∞)` open at both ends, no NaN.
    pub fn any_finite() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            lo_open: true,
            hi_open: true,
            nan: false,
        }
    }

    /// `true` when this is exactly ⊤.
    pub fn is_top(&self) -> bool {
        *self == Interval::TOP
    }

    /// `Some(c)` when the interval is exactly the finite singleton `{c}`.
    pub fn as_const(&self) -> Option<f64> {
        (!self.nan && self.lo == self.hi && !self.lo_open && !self.hi_open && self.lo.is_finite())
            .then_some(self.lo)
    }

    /// `true` when `+∞` may be a member.
    fn admits_pinf(&self) -> bool {
        self.hi == f64::INFINITY && !self.hi_open
    }

    /// `true` when `-∞` may be a member.
    fn admits_ninf(&self) -> bool {
        self.lo == f64::NEG_INFINITY && !self.lo_open
    }

    /// `true` when `0` lies within the bounds.
    fn admits_zero(&self) -> bool {
        !(self.lo > 0.0
            || (self.lo == 0.0 && self.lo_open)
            || self.hi < 0.0
            || (self.hi == 0.0 && self.hi_open))
    }

    /// Least upper bound (interval hull; NaN possibility survives from
    /// either side).
    pub fn join(&self, other: &Interval) -> Interval {
        let (lo, lo_open) = hull_lo((self.lo, self.lo_open), (other.lo, other.lo_open));
        let (hi, hi_open) = hull_hi((self.hi, self.hi_open), (other.hi, other.hi_open));
        Interval {
            lo,
            hi,
            lo_open,
            hi_open,
            nan: self.nan || other.nan,
        }
    }

    /// Widening: bounds that grew since `old` jump straight to ±∞ so loop
    /// fixpoints terminate. The widened bound is closed — a value growing
    /// across iterations can genuinely overflow to ±∞.
    pub fn widen(&self, old: &Interval) -> Interval {
        let mut w = *self;
        if self.lo < old.lo {
            w.lo = f64::NEG_INFINITY;
            w.lo_open = false;
        }
        if self.hi > old.hi {
            w.hi = f64::INFINITY;
            w.hi_open = false;
        }
        w.nan = self.nan || old.nan;
        w
    }

    /// Abstract addition. Infinite result bounds are closed (finite
    /// operands can overflow); `∞ + (-∞)` across the operands sets NaN.
    pub fn add(&self, other: &Interval) -> Interval {
        let nan = self.nan
            || other.nan
            || (self.admits_pinf() && other.admits_ninf())
            || (self.admits_ninf() && other.admits_pinf());
        let lo = self.lo + other.lo;
        let hi = self.hi + other.hi;
        // A NaN at the bound level (-∞ + ∞ between *bounds*) can only come
        // from degenerate inputs; fall back to the unbounded side.
        let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
        let hi = if hi.is_nan() { f64::INFINITY } else { hi };
        Interval {
            lo,
            hi,
            lo_open: lo.is_finite() && (self.lo_open || other.lo_open),
            hi_open: hi.is_finite() && (self.hi_open || other.hi_open),
            nan,
        }
    }

    /// Abstract subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Abstract negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
            lo_open: self.hi_open,
            hi_open: self.lo_open,
            nan: self.nan,
        }
    }

    /// Abstract multiplication. Openness is dropped (sound: open ⊂
    /// closed); `0 · ∞` across the operands sets NaN.
    pub fn mul(&self, other: &Interval) -> Interval {
        let inf = |i: &Interval| i.admits_pinf() || i.admits_ninf();
        let nan = self.nan
            || other.nan
            || (self.admits_zero() && inf(other))
            || (inf(self) && other.admits_zero());
        let cands = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        // NaN candidates (0 · ∞ at the bound level) are covered by the NaN
        // flag above; the remaining candidates still bound all non-NaN
        // products.
        let numeric: Vec<f64> = cands.iter().copied().filter(|c| !c.is_nan()).collect();
        if numeric.is_empty() {
            return Interval::TOP;
        }
        let lo = numeric.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = numeric.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval {
            lo,
            hi,
            lo_open: false,
            hi_open: false,
            nan,
        }
    }

    /// Abstract division: precise only when the divisor provably excludes
    /// zero; otherwise ⊤ (0/0 is NaN, x/0 is ±∞).
    pub fn div(&self, other: &Interval) -> Interval {
        if other.nan || other.admits_zero() {
            return Interval::TOP;
        }
        let inf = |i: &Interval| i.admits_pinf() || i.admits_ninf();
        let nan = self.nan || (inf(self) && inf(other));
        let cands = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        let numeric: Vec<f64> = cands.iter().copied().filter(|c| !c.is_nan()).collect();
        if numeric.is_empty() {
            return Interval::TOP;
        }
        let lo = numeric.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = numeric.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval {
            lo,
            hi,
            lo_open: false,
            hi_open: false,
            nan,
        }
    }

    /// Abstract `f64::min(self, other)`. `f64::min` returns the *other*
    /// operand when one side is NaN, so the result is NaN only when both
    /// sides may be; a maybe-NaN side widens the upper bound to the other
    /// side's alone-case.
    pub fn min(&self, other: &Interval) -> Interval {
        let (lo, lo_open) = hull_lo((self.lo, self.lo_open), (other.lo, other.lo_open));
        // Both-numeric case: the smaller upper bound wins.
        let mut hi = match self.hi.partial_cmp(&other.hi) {
            Some(std::cmp::Ordering::Less) => (self.hi, self.hi_open),
            Some(std::cmp::Ordering::Greater) => (other.hi, other.hi_open),
            _ => (self.hi, self.hi_open && other.hi_open),
        };
        // A maybe-NaN side drops out: the result can be the other operand
        // alone, all the way up to its own upper bound.
        if self.nan {
            hi = hull_hi(hi, (other.hi, other.hi_open));
        }
        if other.nan {
            hi = hull_hi(hi, (self.hi, self.hi_open));
        }
        Interval {
            lo,
            hi: hi.0,
            lo_open,
            hi_open: hi.1,
            nan: self.nan && other.nan,
        }
    }

    /// Abstract `f64::max(self, other)` (mirror of [`Self::min`]).
    pub fn max(&self, other: &Interval) -> Interval {
        let (hi, hi_open) = hull_hi((self.hi, self.hi_open), (other.hi, other.hi_open));
        let mut lo = match self.lo.partial_cmp(&other.lo) {
            Some(std::cmp::Ordering::Greater) => (self.lo, self.lo_open),
            Some(std::cmp::Ordering::Less) => (other.lo, other.lo_open),
            _ => (self.lo, self.lo_open && other.lo_open),
        };
        if self.nan {
            lo = hull_lo(lo, (other.lo, other.lo_open));
        }
        if other.nan {
            lo = hull_lo(lo, (self.lo, self.lo_open));
        }
        Interval {
            lo: lo.0,
            hi,
            lo_open: lo.1,
            hi_open,
            nan: self.nan && other.nan,
        }
    }

    /// Abstract `f64::clamp(self, lo, hi)` with constant clamp bounds.
    /// Non-NaN members (±∞ included) land inside `[lo, hi]`; NaN passes
    /// through `clamp` unchanged.
    pub fn clamp_const(&self, lo: f64, hi: f64) -> Interval {
        Interval {
            lo: self.lo.clamp(lo, hi),
            hi: self.hi.clamp(lo, hi),
            lo_open: false,
            hi_open: false,
            nan: self.nan,
        }
    }

    /// Abstract `f64::abs`.
    pub fn abs(&self) -> Interval {
        if self.lo >= 0.0 {
            return Interval {
                lo_open: self.lo_open && self.lo > 0.0,
                ..*self
            };
        }
        if self.hi <= 0.0 {
            return self.neg();
        }
        let (hi, hi_open) = hull_hi((self.hi, self.hi_open), (-self.lo, self.lo_open));
        Interval {
            lo: 0.0,
            hi,
            lo_open: false,
            hi_open,
            nan: self.nan,
        }
    }

    /// Intersects with `x ≥ c` — bounds only. The caller decides whether
    /// the observation also excludes NaN (a *true* comparison does; its
    /// negation does not, since `!(x ≥ c)` admits NaN).
    pub fn refine_ge(&self, c: f64) -> Interval {
        let mut r = *self;
        if c > r.lo || (c == r.lo && r.lo_open) {
            r.lo = c;
            r.lo_open = false;
        }
        r
    }

    /// Intersects with `x > c`.
    pub fn refine_gt(&self, c: f64) -> Interval {
        let mut r = *self;
        if c >= r.lo {
            r.lo = c;
            r.lo_open = true;
        }
        r
    }

    /// Intersects with `x ≤ c`.
    pub fn refine_le(&self, c: f64) -> Interval {
        let mut r = *self;
        if c < r.hi || (c == r.hi && r.hi_open) {
            r.hi = c;
            r.hi_open = false;
        }
        r
    }

    /// Intersects with `x < c`.
    pub fn refine_lt(&self, c: f64) -> Interval {
        let mut r = *self;
        if c <= r.hi {
            r.hi = c;
            r.hi_open = true;
        }
        r
    }

    /// Intersects with `x.is_finite() == true`: excludes NaN and opens any
    /// infinite bound.
    pub fn refine_finite(&self) -> Interval {
        let mut r = *self;
        r.nan = false;
        if r.lo == f64::NEG_INFINITY {
            r.lo_open = true;
        }
        if r.hi == f64::INFINITY {
            r.hi_open = true;
        }
        r
    }

    /// Excludes NaN without touching the bounds (an observed-true IEEE
    /// comparison implies both operands are numeric).
    pub fn refine_not_nan(&self) -> Interval {
        Interval {
            nan: false,
            ..*self
        }
    }

    /// Proof predicate: the check `x ≥ c` always passes — no NaN, and
    /// every numeric member (`+∞` included — `∞ ≥ c` holds) is `≥ c`.
    pub fn proves_ge(&self, c: f64) -> bool {
        !self.nan && self.lo >= c
    }

    /// Proof predicate: `x > c` always passes.
    pub fn proves_gt(&self, c: f64) -> bool {
        !self.nan && (self.lo > c || (self.lo == c && self.lo_open))
    }

    /// Proof predicate: `x ≤ c` always passes.
    pub fn proves_le(&self, c: f64) -> bool {
        !self.nan && self.hi <= c
    }

    /// Proof predicate: `x.is_finite()` always passes — no NaN and both
    /// infinities excluded (an infinite bound must be open).
    pub fn proves_finite(&self) -> bool {
        !self.nan && (self.lo.is_finite() || self.lo_open) && (self.hi.is_finite() || self.hi_open)
    }

    /// Disproof predicate: the check `x ≥ c` always *fails*. Numeric
    /// members all sit below `c`, and a NaN member fails any comparison —
    /// so the NaN flag cannot rescue the check.
    pub fn refutes_ge(&self, c: f64) -> bool {
        self.hi < c || (self.hi == c && self.hi_open)
    }

    /// Disproof predicate: `x ≤ c` always fails.
    pub fn refutes_le(&self, c: f64) -> bool {
        self.lo > c || (self.lo == c && self.lo_open)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = if self.lo_open { '(' } else { '[' };
        let r = if self.hi_open { ')' } else { ']' };
        let tag = if self.nan { "?" } else { "" };
        write!(f, "{l}{}, {}{r}{tag}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_hulls_and_keeps_nan_possibility() {
        let a = Interval::closed(0.0, 2.0);
        let b = Interval::closed(1.0, 5.0);
        let j = a.join(&b);
        assert_eq!((j.lo, j.hi), (0.0, 5.0));
        assert!(!j.nan);
        let j2 = a.join(&Interval::TOP);
        assert!(j2.is_top());
    }

    #[test]
    fn widen_blows_growing_bounds() {
        let old = Interval::closed(0.0, 10.0);
        let grown = Interval::closed(0.0, 11.0);
        let w = grown.widen(&old);
        assert_eq!(w.lo, 0.0);
        assert_eq!(w.hi, f64::INFINITY);
        assert!(!w.proves_le(1e9));
        // Overflow to +∞ is reachable once the bound is gone.
        assert!(!w.proves_finite());
        // …but non-negativity survives widening: ∞ ≥ 0.
        assert!(w.proves_ge(0.0));
        // A stable bound is untouched.
        let same = Interval::closed(0.0, 10.0).widen(&old);
        assert_eq!(same, old);
    }

    #[test]
    fn arithmetic_is_sound() {
        let a = Interval::closed(1.0, 2.0);
        let b = Interval::closed(-3.0, 4.0);
        let s = a.add(&b);
        assert_eq!((s.lo, s.hi), (-2.0, 6.0));
        let m = a.mul(&b);
        assert_eq!((m.lo, m.hi), (-6.0, 8.0));
        let d = b.div(&a);
        assert_eq!((d.lo, d.hi), (-3.0, 4.0));
        // Division by a range containing zero is ⊤.
        assert!(a.div(&b).is_top());
        // Adding a maybe-NaN operand keeps the NaN flag set.
        assert!(a.add(&Interval::TOP).nan);
        // ∞ - ∞ across operands is NaN-possible.
        let unbounded = Interval::closed(0.0, f64::INFINITY);
        assert!(unbounded.sub(&unbounded).nan);
        // …but unbounded + unbounded non-negatives still prove ≥ 0.
        let s2 = unbounded.add(&unbounded);
        assert!(!s2.nan);
        assert!(s2.proves_ge(0.0));
    }

    #[test]
    fn min_max_respect_ieee_nan_semantics() {
        let a = Interval::closed(0.0, 5.0);
        let b = Interval::closed(3.0, 10.0);
        let m = a.min(&b);
        assert_eq!((m.lo, m.hi), (0.0, 5.0));
        assert!(m.proves_finite());
        // f64::max(maybe-NaN, 0) is never NaN: the numeric side wins.
        let m2 = Interval::TOP.max(&Interval::constant(0.0));
        assert!(!m2.nan);
        assert!(m2.proves_ge(0.0));
        assert!(!m2.proves_finite()); // +∞ still possible
                                      // f64::min(maybe-NaN, c) can be anything up to the *other* side's
                                      // bound when the NaN side drops out.
        let m3 = Interval::TOP.min(&Interval::constant(5.0));
        assert!(!m3.nan);
        assert_eq!(m3.hi, 5.0);
        // Only two maybe-NaN sides can produce NaN.
        assert!(Interval::TOP.min(&Interval::TOP).nan);
    }

    #[test]
    fn refinement_and_proofs() {
        let x = Interval::any_finite();
        assert!(!x.proves_ge(0.0)); // finite but unbounded
        assert!(x.proves_finite());
        let r = x.refine_ge(0.0).refine_le(100.0);
        assert!(r.proves_ge(0.0));
        assert!(r.proves_le(100.0));
        assert!(r.proves_finite());
        // Bounds refinement of ⊤ narrows bounds but keeps NaN possible —
        // clearing it is the (polarity-aware) interpreter's decision.
        let t = Interval::TOP.refine_ge(0.0);
        assert!(!t.proves_ge(0.0));
        assert!(t.refine_not_nan().proves_ge(0.0));
        // is_finite() excludes NaN and opens the infinite bounds.
        let f = Interval::TOP.refine_finite();
        assert!(f.proves_finite());
        assert!(!f.proves_ge(0.0));
    }

    #[test]
    fn open_bounds_prove_strict_comparisons() {
        let x = Interval::any_finite().refine_gt(0.0).refine_le(1.0);
        assert!(x.proves_gt(0.0));
        assert!(!x.proves_gt(0.5));
        assert!(x.proves_le(1.0));
    }

    #[test]
    fn refutation_ignores_nan() {
        let neg = Interval::closed(-5.0, -1.0);
        assert!(neg.refutes_ge(0.0));
        // NaN fails `x ≥ 0` too, so a maybe-NaN negative range still
        // refutes the check as a whole.
        let maybe = Interval {
            nan: true,
            ..Interval::closed(-5.0, -1.0)
        };
        assert!(maybe.refutes_ge(0.0));
        // …but an unbounded range does not.
        assert!(!Interval::TOP.refutes_ge(0.0));
    }

    #[test]
    fn abs_and_clamp() {
        let x = Interval::closed(-3.0, 2.0);
        let a = x.abs();
        assert_eq!((a.lo, a.hi), (0.0, 3.0));
        let c = Interval::TOP.clamp_const(0.0, 1.0);
        assert_eq!((c.lo, c.hi), (0.0, 1.0));
        assert!(!c.proves_finite()); // NaN passes through clamp
        assert!(c.refine_not_nan().proves_finite());
    }

    #[test]
    fn constants_and_singletons() {
        let c = Interval::constant(2.5);
        assert_eq!(c.as_const(), Some(2.5));
        assert!(Interval::constant(f64::NAN).is_top());
        let inf = Interval::constant(f64::INFINITY);
        assert_eq!(inf.as_const(), None);
        assert!(!inf.proves_finite());
        assert!(inf.proves_ge(0.0)); // ∞ ≥ 0 holds in IEEE
    }
}
