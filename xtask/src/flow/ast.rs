//! A resilient expression/statement parser over the shared token stream.
//!
//! `cargo xtask flow` needs more structure than the token windows the
//! lint/analyze passes scan: interval analysis must see assignments,
//! branches, loops and call arguments as trees. This module parses the
//! masked token stream of a [`SourceFile`] into a deliberately small AST.
//! It is *resilient*, not complete: any construct outside the grammar the
//! passes understand collapses into [`Expr::Opaque`] / [`Stmt::Opaque`],
//! which the abstract interpreter treats as "could be anything" — so a
//! parse shortfall can only ever lose precision, never soundness.
//!
//! Known approximations (all precision-only): macro bodies, struct
//! literals, indexing and casts evaluate to ⊤; closures keep their body
//! (for the call-graph and sharing passes) but evaluate to ⊤ as values;
//! `break`/`continue`/`return` are modelled as statements but not inside
//! value-position expressions (an arm like `B => break` falls through as ⊤
//! instead of jumping, which can only widen downstream states).

use crate::flow::interval::Interval;
use crate::syntax::lexer::{lex, matching_close, Tok, Token};
use crate::syntax::source::SourceFile;

/// A parsed pattern, as far as the dataflow passes care.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// `_` or anything that binds nothing we can see.
    Wild,
    /// A plain binding (`x`, `mut x`).
    Bind(String),
    /// A tuple pattern `(a, b)`.
    Tuple(Vec<Pat>),
    /// A (tuple-)variant pattern: `Policy::FixedPower(cap)`, `Some(x)`,
    /// or a unit path like `PowerSource::Utility` (empty `subs`).
    Variant {
        /// Path segments of the variant.
        path: Vec<String>,
        /// Sub-patterns of a tuple variant.
        subs: Vec<Pat>,
    },
    /// An or-pattern `A | B`.
    Or(Vec<Pat>),
    /// A pattern we do not model (struct patterns, literals, ranges).
    Opaque,
}

impl Pat {
    /// Every name this pattern binds, in source order.
    pub fn bound_names(&self, out: &mut Vec<String>) {
        match self {
            Pat::Bind(n) => out.push(n.clone()),
            Pat::Tuple(ps) | Pat::Or(ps) => {
                for p in ps {
                    p.bound_names(out);
                }
            }
            Pat::Variant { subs, .. } => {
                for p in subs {
                    p.bound_names(out);
                }
            }
            Pat::Wild | Pat::Opaque => {}
        }
    }
}

/// A binary operator the interval domain interprets; everything else
/// becomes [`BinOp::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`, `<=`, `>`, `>=`, `==`, `!=` — kept for branch refinement.
    Cmp(&'static str),
    /// `&&`
    And,
    /// `||`
    Or,
    /// Any other infix operator (`%`, bit ops, ranges).
    Other,
}

/// A parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// A path: a local (`x`), a constant (`Watts::ZERO`), a free function
    /// name before call resolution.
    Path(Vec<String>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Infix application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Free/associated function call `path(args)`.
    Call {
        /// Callee path segments.
        path: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the callee token.
        line: usize,
    },
    /// Method call `recv.name(args)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the method name token.
        line: usize,
    },
    /// Field access `recv.name` (tuple indices use the digit string).
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// Tuple constructor `(a, b)`.
    Tuple(Vec<Expr>),
    /// Value-position `if`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-branch value.
        then_e: Box<Expr>,
        /// Else-branch value (`None` for a statement-shaped `if`).
        else_e: Option<Box<Expr>>,
    },
    /// `match` expression.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms in source order.
        arms: Vec<Arm>,
    },
    /// Block expression `{ stmts; value }`.
    Block {
        /// Statements.
        stmts: Vec<Stmt>,
        /// Trailing value, if any.
        value: Option<Box<Expr>>,
    },
    /// `expr?` — evaluates to the success value (abstractly transparent).
    Try(Box<Expr>),
    /// `&expr` / `&mut expr`.
    Ref {
        /// `true` for `&mut`.
        mutable: bool,
        /// Referent.
        expr: Box<Expr>,
    },
    /// A closure `|params| body` (also `move` closures). The body is kept
    /// so the call-graph and sharing passes can see through it; the
    /// interpreter evaluates it for its effects and call sites only.
    Closure {
        /// Parameter patterns (type ascriptions stripped).
        params: Vec<Pat>,
        /// The closure body expression.
        body: Box<Expr>,
        /// 1-based line of the opening pipe.
        line: usize,
    },
    /// An array literal `[a, b, c]`; `[e; n]` is kept as a single-element
    /// array (every element has `e`'s abstract value).
    Array(Vec<Expr>),
    /// `expr as Type` — the value is ⊤ (casts truncate/saturate), but the
    /// operand is kept for the call-graph and capture passes.
    Cast(Box<Expr>),
    /// Anything the grammar does not model (macros, literals,
    /// struct expressions, indexing).
    Opaque,
}

impl Expr {
    /// Pushes every direct child expression onto `out` (statements nested
    /// in blocks/arms are not descended into — callers that need them
    /// walk statements themselves).
    pub fn children<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Neg(a) | Expr::Try(a) | Expr::Cast(a) | Expr::Ref { expr: a, .. } => {
                out.push(a);
            }
            Expr::Binary { lhs, rhs, .. } => {
                out.push(lhs);
                out.push(rhs);
            }
            Expr::Call { args, .. } => out.extend(args.iter()),
            Expr::Method { recv, args, .. } => {
                out.push(recv);
                out.extend(args.iter());
            }
            Expr::Field { recv, .. } => out.push(recv),
            Expr::Tuple(es) | Expr::Array(es) => out.extend(es.iter()),
            Expr::If {
                cond,
                then_e,
                else_e,
            } => {
                out.push(cond);
                out.push(then_e);
                if let Some(e) = else_e {
                    out.push(e);
                }
            }
            Expr::Match { scrutinee, arms } => {
                out.push(scrutinee);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        out.push(g);
                    }
                    out.push(&arm.body);
                }
            }
            Expr::Block { value, .. } => {
                if let Some(v) = value {
                    out.push(v);
                }
            }
            Expr::Closure { body, .. } => out.push(body),
            Expr::Num(_) | Expr::Path(_) | Expr::Opaque => {}
        }
    }
}

/// One `match` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// The arm pattern.
    pub pat: Pat,
    /// Optional `if` guard.
    pub guard: Option<Expr>,
    /// The arm body.
    pub body: Expr,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let pat = init;` (irrefutable or refutable-without-else).
    Let {
        /// Binding pattern.
        pat: Pat,
        /// Initializer (`None` for `let x;`).
        init: Option<Expr>,
    },
    /// `let pat = init else { … };` — the else block diverges.
    LetElse {
        /// Binding pattern.
        pat: Pat,
        /// Initializer.
        init: Expr,
        /// Diverging else body.
        else_body: Vec<Stmt>,
    },
    /// Assignment to a simple local: `x = e`, `x += e`, ….
    Assign {
        /// Target local name.
        name: String,
        /// Compound operator, if any (`BinOp::Add` for `+=`).
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
    },
    /// An expression statement (includes assignments to non-locals, whose
    /// right-hand side is still evaluated for its call sites).
    Expr(Expr),
    /// `if cond { … } else { … }` in statement position.
    If {
        /// Condition.
        cond: Expr,
        /// Then body.
        then_body: Vec<Stmt>,
        /// Else body (empty if absent; else-if chains nest here).
        else_body: Vec<Stmt>,
    },
    /// `while cond { … }` (also carries desugared `while let`).
    While {
        /// Loop condition (`Expr::Opaque` for `while let`).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `loop { … }`.
    Loop {
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for pat in iter { … }` — the binder is havocked per iteration,
    /// except over a literal array whose element hull is used instead.
    For {
        /// Loop binder pattern.
        pat: Pat,
        /// The iterated expression.
        iter: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;` (labels and values are ignored).
    Break,
    /// `continue;`.
    Continue,
    /// Bare block `{ … }` in statement position.
    Block(Vec<Stmt>),
    /// Binds every name in the pattern to ⊤ (loop binders, `while let`).
    Havoc(Pat),
    /// A statement outside the grammar; `kills` lists locals passed by
    /// `&mut`, which the interpreter must invalidate.
    Opaque {
        /// Locals invalidated by the statement.
        kills: Vec<String>,
    },
}

/// One parsed value parameter of a function signature.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`None` for patterns we do not model, e.g. tuples).
    pub name: Option<String>,
    /// Type tokens joined with spaces (empty for proptest-style binders).
    pub ty: String,
    /// `true` for a `&T` (shared reference) parameter.
    pub by_ref: bool,
    /// `true` for a `&mut T` parameter.
    pub by_mut_ref: bool,
    /// Value range of a proptest-style binder (`name in lo..hi`), when the
    /// strategy bounds are numeric literals. Anything else stays `None`
    /// (⊤): `any::<f64>()` style strategies can generate NaN.
    pub range: Option<Interval>,
}

/// A parsed free or associated function.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body statements (with trailing expression appended as a statement).
    pub body: Vec<Stmt>,
    /// `true` when the `fn` line sits in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Value parameters (the `self` receiver excluded).
    pub params: Vec<Param>,
    /// `true` when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// `true` for a `&mut self` receiver.
    pub self_mut: bool,
    /// `true` when the item is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// `true` when the signature has a `->` return type at all.
    pub has_ret: bool,
    /// `true` when the declared return type mentions `Result`.
    pub fallible: bool,
    /// `true` when the body's own tokens contain a panic source (unwrap/
    /// expect/panic!/assert!/indexing); callee panics are propagated by
    /// the summary pass, not here.
    pub panicky: bool,
}

/// Parses every function with a body out of `src`.
///
/// The scan is linear over the token stream, so functions nested in other
/// functions are (re-)parsed as their own [`FnDef`] too; the interpreter
/// treats the inner occurrence inside the outer body as opaque.
pub fn parse_fns(src: &SourceFile) -> Vec<FnDef> {
    let tokens = lex(src);
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        // Skip generics between the name and the parameter list.
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.is_op("<")) {
            j = skip_angles(&tokens, j);
        }
        if !tokens.get(j).is_some_and(|t| t.is_op("(")) {
            i += 1;
            continue;
        }
        let Some(params_close) = matching_close(&tokens, j) else {
            break;
        };
        // Find the body `{` (or `;` for a bodyless trait method) after the
        // return type / where clause.
        let mut k = params_close + 1;
        let mut body_open = None;
        while let Some(t) = tokens.get(k) {
            if t.is_op(";") {
                break;
            }
            if t.is_op("{") {
                body_open = Some(k);
                break;
            }
            if t.is_op("<") {
                k = skip_angles(&tokens, k);
                continue;
            }
            k += 1;
        }
        let Some(open) = body_open else {
            i = params_close + 1;
            continue;
        };
        let Some(close) = matching_close(&tokens, open) else {
            break;
        };
        let mut p = Parser {
            toks: &tokens[open + 1..close],
            pos: 0,
        };
        let (body, trailing) = p.parse_stmts();
        let mut body = body;
        if let Some(e) = trailing {
            body.push(Stmt::Expr(e));
        }
        let (params, has_self, self_mut) = parse_params(&tokens[j + 1..params_close]);
        let ret_toks = &tokens[params_close + 1..open];
        let has_ret = ret_toks.iter().any(|t| t.is_op("->"));
        let fallible = has_ret && ret_toks.iter().any(|t| t.is_ident("Result"));
        out.push(FnDef {
            name: name.to_owned(),
            line,
            body,
            in_test: src.is_test_line(line),
            params,
            has_self,
            self_mut,
            is_pub: is_pub_fn(&tokens, i),
            has_ret,
            fallible,
            panicky: body_panics(&tokens[open + 1..close]),
        });
        // Continue *inside* the body so nested fns are found too.
        i = open + 1;
    }
    out
}

/// `true` when the `fn` keyword at `at` carries a `pub` qualifier, walking
/// back over `const`/`unsafe`/`async`/`extern "…"` and `pub(crate)` groups.
fn is_pub_fn(tokens: &[Token], at: usize) -> bool {
    let mut k = at;
    while k > 0 {
        let prev = &tokens[k - 1];
        match &prev.tok {
            Tok::Ident(w) if w == "pub" => return true,
            Tok::Ident(w) if w == "const" || w == "unsafe" || w == "async" || w == "extern" => {
                k -= 1;
            }
            // `pub(crate)`: step back over the `(…)` group to its `(`.
            Tok::Op(")") => {
                let mut depth = 1i32;
                let mut b = k - 1;
                while b > 0 && depth > 0 {
                    b -= 1;
                    match &tokens[b].tok {
                        Tok::Op(")") => depth += 1,
                        Tok::Op("(") => depth -= 1,
                        _ => {}
                    }
                }
                if depth != 0 {
                    return false;
                }
                k = b;
            }
            _ => return false,
        }
    }
    false
}

/// `true` when an `if`/`else` token chain contains a `let` at bracket depth
/// zero — i.e. any condition in the chain is an `if let`. Depth-0 is what
/// distinguishes chain conditions from `if let`s nested inside the braced
/// branch bodies (those are fine in expression position: the bodies are
/// re-parsed as blocks by [`Parser::parse_block_expr`]).
fn chain_has_depth0_let(tokens: &[Token]) -> bool {
    let mut depth = 0u32;
    for t in tokens {
        if t.is_op("{") || t.is_op("(") || t.is_op("[") {
            depth += 1;
        } else if t.is_op("}") || t.is_op(")") || t.is_op("]") {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_ident("let") {
            return true;
        }
    }
    false
}

/// Panic-source idents the `panicky` flag looks for inside a body.
const PANIC_IDENTS: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// `true` when the body token slice contains an explicit panic source:
/// a panic-family ident, or a postfix `[` index (out-of-bounds panics).
fn body_panics(body: &[Token]) -> bool {
    for (n, t) in body.iter().enumerate() {
        if let Tok::Ident(w) = &t.tok {
            if PANIC_IDENTS.contains(&w.as_str()) {
                return true;
            }
        }
        // `expr[` — an index position: the previous token ends an operand.
        if t.is_op("[") && n > 0 {
            match &body[n - 1].tok {
                Tok::Ident(_) | Tok::Op(")") | Tok::Op("]") => return true,
                _ => {}
            }
        }
    }
    false
}

/// Parses a parameter-list token slice into `(params, has_self, self_mut)`.
fn parse_params(tokens: &[Token]) -> (Vec<Param>, bool, bool) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut self_mut = false;
    for (idx, part) in split_top_commas(tokens).into_iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if idx == 0 && is_self_param(part) {
            has_self = true;
            self_mut = part.iter().any(|t| t.is_op("&")) && part.iter().any(|t| t.is_ident("mut"));
            continue;
        }
        params.push(parse_param(part));
    }
    (params, has_self, self_mut)
}

/// `true` when the part is a `self` receiver (`self`, `mut self`,
/// `&self`, `&mut self`, `&'a self`).
fn is_self_param(part: &[Token]) -> bool {
    part.iter()
        .find(|t| !(t.is_op("&") || t.is_ident("mut") || matches!(&t.tok, Tok::Lifetime(_))))
        .is_some_and(|t| t.is_ident("self"))
}

/// Parses one non-self parameter: `pat: Type` or a proptest-style binder
/// `name in strategy`.
fn parse_param(part: &[Token]) -> Param {
    // Split at the first `:` at bracket depth 0.
    let mut depth = 0i32;
    let mut colon = None;
    let mut in_kw = None;
    for (n, t) in part.iter().enumerate() {
        match &t.tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
            Tok::Op(":") if depth == 0 && colon.is_none() => colon = Some(n),
            Tok::Ident(w) if w == "in" && depth == 0 && in_kw.is_none() => in_kw = Some(n),
            _ => {}
        }
    }
    if let Some(c) = colon {
        let name = match parse_pattern(&part[..c]) {
            Pat::Bind(n) => Some(n),
            _ => None,
        };
        let ty_toks = &part[c + 1..];
        let ty = render_tokens(ty_toks);
        let by_ref = ty_toks.first().is_some_and(|t| t.is_op("&"));
        let by_mut_ref = by_ref
            && ty_toks
                .iter()
                .skip(1)
                .find(|t| !matches!(&t.tok, Tok::Lifetime(_)))
                .is_some_and(|t| t.is_ident("mut"));
        return Param {
            name,
            ty,
            by_ref,
            by_mut_ref,
            range: None,
        };
    }
    if let Some(k) = in_kw {
        let name = match parse_pattern(&part[..k]) {
            Pat::Bind(n) => Some(n),
            _ => None,
        };
        return Param {
            name,
            ty: String::new(),
            by_ref: false,
            by_mut_ref: false,
            range: parse_range_hint(&part[k + 1..]),
        };
    }
    Param {
        name: match parse_pattern(part) {
            Pat::Bind(n) => Some(n),
            _ => None,
        },
        ty: String::new(),
        by_ref: false,
        by_mut_ref: false,
        range: None,
    }
}

/// Renders tokens with single spaces (type text for reports/heuristics).
fn render_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.tok {
            Tok::Ident(w) | Tok::Num(w) => out.push_str(w),
            Tok::Lifetime(w) => {
                out.push('\'');
                out.push_str(w);
            }
            Tok::Op(o) => out.push_str(o),
        }
    }
    out
}

/// The interval of a proptest range strategy `lo..hi` / `lo..=hi` with
/// numeric-literal bounds. An unparseable upper bound still yields
/// `[lo, ∞)` open — `Range<f64>` strategies generate values strictly below
/// their (finite) end. An unparseable lower bound yields `None` (⊤).
fn parse_range_hint(tokens: &[Token]) -> Option<Interval> {
    let mut depth = 0i32;
    let mut dots = None;
    for (n, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
            Tok::Op("..") | Tok::Op("..=") if depth == 0 => {
                dots = Some(n);
                break;
            }
            _ => {}
        }
    }
    let dots = dots?;
    let inclusive = tokens[dots].is_op("..=");
    let lo = parse_num_slice(&tokens[..dots])?;
    let (hi, hi_open) = match parse_num_slice(&tokens[dots + 1..]) {
        Some(h) => (h, !inclusive),
        None => (f64::INFINITY, true),
    };
    // NaN endpoints fail this comparison too, rejecting the range.
    if matches!(
        lo.partial_cmp(&hi),
        None | Some(std::cmp::Ordering::Greater)
    ) {
        return None;
    }
    Some(Interval {
        lo,
        hi,
        lo_open: false,
        hi_open,
        nan: false,
    })
}

/// Parses a slice that is exactly a (possibly negated, possibly suffixed)
/// numeric literal.
fn parse_num_slice(tokens: &[Token]) -> Option<f64> {
    match tokens {
        [t] => match &t.tok {
            Tok::Num(n) => num_value(n),
            _ => None,
        },
        [m, t] if m.is_op("-") => match &t.tok {
            Tok::Num(n) => num_value(n).map(|v| -v),
            _ => None,
        },
        _ => None,
    }
}

/// The numeric value of a literal token's text, stripping `_` separators
/// and a trailing type suffix (`160.0_f64`, `0usize`).
pub fn num_value(raw: &str) -> Option<f64> {
    let t = raw.replace('_', "");
    if let Ok(v) = t.parse::<f64>() {
        return Some(v);
    }
    for suffix in [
        "f64", "f32", "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16",
        "u8", "i8",
    ] {
        if let Some(stripped) = t.strip_suffix(suffix) {
            if !stripped.is_empty() {
                return stripped.parse().ok();
            }
        }
    }
    None
}

/// Skips a `<…>` group starting at `open` (which must be `<`), counting
/// `<<`/`>>` as two. Returns the index just past the matching `>`.
pub(crate) fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Op("<") => depth += 1,
            Tok::Op("<<") => depth += 2,
            Tok::Op(">") => depth -= 1,
            Tok::Op(">>") => depth -= 2,
            // `->` inside generics (fn pointers) would confuse the scan;
            // bail out rather than overrun.
            Tok::Op(";") | Tok::Op("{") => return i,
            _ => {}
        }
        i += 1;
        if depth <= 0 {
            return i;
        }
    }
    i
}

/// Recursive-descent parser over a token slice (one function body).
struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + n)
    }

    fn at_op(&self, op: &str) -> bool {
        self.peek().is_some_and(|t| t.is_op(op))
    }

    fn at_ident(&self, w: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(w))
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips tokens until past the bracket group opening at the current
    /// position; no-op if not at an open bracket.
    fn skip_group(&mut self) {
        if let Some(close) = matching_close(self.toks, self.pos) {
            self.pos = close + 1;
        } else {
            self.pos = self.toks.len();
        }
    }

    /// Skips to just past the next `;` at bracket depth 0 (or the end).
    fn skip_past_semi(&mut self) -> Vec<String> {
        let mut kills = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_op(";") {
                self.pos += 1;
                break;
            }
            if t.is_op("(") || t.is_op("[") || t.is_op("{") {
                let start = self.pos;
                self.skip_group();
                kills.extend(ref_mut_idents(&self.toks[start..self.pos]));
                continue;
            }
            if t.is_op("&") && self.peek_at(1).is_some_and(|t| t.is_ident("mut")) {
                if let Some(name) = self.peek_at(2).and_then(Token::ident) {
                    kills.push(name.to_owned());
                }
            }
            self.pos += 1;
        }
        kills
    }

    /// Parses statements until the slice is exhausted; returns them plus a
    /// trailing expression if the block ends in one.
    fn parse_stmts(&mut self) -> (Vec<Stmt>, Option<Expr>) {
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            // Attributes inside bodies: `#[…]`.
            if self.at_op("#") {
                self.pos += 1;
                if self.at_op("[") {
                    self.skip_group();
                }
                continue;
            }
            if self.eat_op(";") {
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.parse_let());
                continue;
            }
            if self.at_ident("if") {
                // A trailing `if`/`else` chain is the block's value (e.g. a
                // match arm ending in `if c { (a, b) } else { (x, y) }`);
                // re-parse it as an expression so the value survives. `if
                // let` conditions (a depth-0 `let` in the chain) stay
                // statements — the expression grammar does not model them.
                let start = self.pos;
                let stmt = self.parse_if_stmt();
                if self.peek().is_none() && !chain_has_depth0_let(&self.toks[start..]) {
                    self.pos = start;
                    let e = self.parse_expr(true);
                    if self.peek().is_none() {
                        return (stmts, Some(e));
                    }
                    // The expression parse desynchronised; fall back to the
                    // statement parse, which is known to consume the chain.
                    self.pos = start;
                    stmts.push(self.parse_if_stmt());
                    continue;
                }
                stmts.push(stmt);
                continue;
            }
            if self.at_ident("while") {
                stmts.push(self.parse_while());
                continue;
            }
            if self.at_ident("for") {
                stmts.push(self.parse_for());
                continue;
            }
            if self.at_ident("loop") {
                self.pos += 1;
                let body = self.parse_braced_body();
                stmts.push(Stmt::Loop { body });
                continue;
            }
            if self.at_ident("return") {
                self.pos += 1;
                let e = if self.at_op(";") || self.peek().is_none() {
                    None
                } else {
                    Some(self.parse_expr(true))
                };
                self.eat_op(";");
                stmts.push(Stmt::Return(e));
                continue;
            }
            if self.at_ident("break") || self.at_ident("continue") {
                let is_break = self.at_ident("break");
                self.pos += 1;
                // Labels / break values are skipped.
                self.skip_past_semi();
                stmts.push(if is_break {
                    Stmt::Break
                } else {
                    Stmt::Continue
                });
                continue;
            }
            if self.at_op("{") {
                let body = self.parse_braced_body();
                stmts.push(Stmt::Block(body));
                continue;
            }
            // Items nested in bodies (fn/struct/impl/use…): skip the
            // header to the next `{`/`;` and the group if any; a nested fn
            // is re-parsed as its own FnDef by the outer scan.
            if self.at_ident("fn")
                || self.at_ident("struct")
                || self.at_ident("impl")
                || self.at_ident("use")
                || self.at_ident("const")
                || self.at_ident("static")
            {
                while let Some(t) = self.peek() {
                    if t.is_op(";") {
                        self.pos += 1;
                        break;
                    }
                    if t.is_op("{") {
                        self.skip_group();
                        break;
                    }
                    if t.is_op("(") || t.is_op("[") {
                        self.skip_group();
                        continue;
                    }
                    self.pos += 1;
                }
                stmts.push(Stmt::Opaque { kills: Vec::new() });
                continue;
            }
            // Expression statement or assignment.
            let start = self.pos;
            let e = self.parse_expr(true);
            if self.pos == start {
                // No progress — consume defensively to guarantee
                // termination.
                self.pos += 1;
                continue;
            }
            if let Some(op) = self.peek().and_then(assign_op) {
                self.pos += 1;
                let rhs = self.parse_expr(true);
                self.eat_op(";");
                if let Expr::Path(segs) = &e {
                    if segs.len() == 1 {
                        stmts.push(Stmt::Assign {
                            name: segs[0].clone(),
                            op,
                            value: rhs,
                        });
                        continue;
                    }
                }
                // Assignment to a non-local (field, index): evaluate the
                // RHS for its effects only.
                stmts.push(Stmt::Expr(rhs));
                continue;
            }
            if self.eat_op(";") || self.peek().is_some() {
                stmts.push(Stmt::Expr(e));
                continue;
            }
            return (stmts, Some(e));
        }
        (stmts, None)
    }

    /// Parses the `{ … }` body of a control construct into statements
    /// (trailing expressions folded into `Stmt::Expr`).
    fn parse_braced_body(&mut self) -> Vec<Stmt> {
        if !self.at_op("{") {
            // Malformed — consume one token so the caller makes progress.
            self.pos += 1;
            return vec![Stmt::Opaque { kills: Vec::new() }];
        }
        let Some(close) = matching_close(self.toks, self.pos) else {
            self.pos = self.toks.len();
            return vec![Stmt::Opaque { kills: Vec::new() }];
        };
        let mut inner = Parser {
            toks: &self.toks[self.pos + 1..close],
            pos: 0,
        };
        self.pos = close + 1;
        let (mut stmts, trailing) = inner.parse_stmts();
        if let Some(e) = trailing {
            stmts.push(Stmt::Expr(e));
        }
        stmts
    }

    fn parse_let(&mut self) -> Stmt {
        self.pos += 1; // `let`
                       // Pattern tokens reach to `=`, `:`, `;` or `else` at depth 0.
        let pat_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match &t.tok {
                Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                Tok::Op("=") | Tok::Op(":") | Tok::Op(";") if depth == 0 => break,
                Tok::Ident(w) if w == "else" && depth == 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        let pat = parse_pattern(&self.toks[pat_start..self.pos]);
        // Optional type ascription: skip to `=` or `;` at depth 0.
        if self.at_op(":") {
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                match &t.tok {
                    Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                    Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                    Tok::Op("=") | Tok::Op(";") if depth == 0 => break,
                    _ => {}
                }
                self.pos += 1;
            }
        }
        if self.eat_op(";") {
            return Stmt::Let { pat, init: None };
        }
        if !self.eat_op("=") {
            // Unparseable let — be safe.
            self.skip_past_semi();
            return Stmt::Let { pat, init: None };
        }
        let init = self.parse_expr(true);
        if self.at_ident("else") {
            self.pos += 1;
            let else_body = self.parse_braced_body();
            self.eat_op(";");
            return Stmt::LetElse {
                pat,
                init,
                else_body,
            };
        }
        self.eat_op(";");
        Stmt::Let {
            pat,
            init: Some(init),
        }
    }

    fn parse_if_stmt(&mut self) -> Stmt {
        self.pos += 1; // `if`
        let cond = if self.at_ident("let") {
            // `if let PAT = scrutinee` — model as an opaque condition with
            // the bindings havocked in the then-branch.
            self.pos += 1;
            let pat_start = self.pos;
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                match &t.tok {
                    Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                    Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                    Tok::Op("=") if depth == 0 => break,
                    _ => {}
                }
                self.pos += 1;
            }
            let pat = parse_pattern(&self.toks[pat_start..self.pos]);
            self.eat_op("=");
            let _scrutinee = self.parse_expr(false);
            let mut then_body = self.parse_braced_body();
            then_body.insert(0, Stmt::Havoc(pat));
            let else_body = self.parse_else();
            return Stmt::If {
                cond: Expr::Opaque,
                then_body,
                else_body,
            };
        } else {
            self.parse_expr(false)
        };
        let then_body = self.parse_braced_body();
        let else_body = self.parse_else();
        Stmt::If {
            cond,
            then_body,
            else_body,
        }
    }

    fn parse_else(&mut self) -> Vec<Stmt> {
        if !self.at_ident("else") {
            return Vec::new();
        }
        self.pos += 1;
        if self.at_ident("if") {
            return vec![self.parse_if_stmt()];
        }
        self.parse_braced_body()
    }

    fn parse_while(&mut self) -> Stmt {
        self.pos += 1; // `while`
        if self.at_ident("let") {
            self.pos += 1;
            let pat_start = self.pos;
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                match &t.tok {
                    Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                    Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                    Tok::Op("=") if depth == 0 => break,
                    _ => {}
                }
                self.pos += 1;
            }
            let pat = parse_pattern(&self.toks[pat_start..self.pos]);
            self.eat_op("=");
            let _scrutinee = self.parse_expr(false);
            let mut body = self.parse_braced_body();
            body.insert(0, Stmt::Havoc(pat));
            return Stmt::While {
                cond: Expr::Opaque,
                body,
            };
        }
        let cond = self.parse_expr(false);
        let body = self.parse_braced_body();
        Stmt::While { cond, body }
    }

    fn parse_for(&mut self) -> Stmt {
        self.pos += 1; // `for`
        let pat_start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match &t.tok {
                Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                Tok::Ident(w) if w == "in" && depth == 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        let pat = parse_pattern(&self.toks[pat_start..self.pos]);
        if self.at_ident("in") {
            self.pos += 1;
        }
        let iter = self.parse_expr(false);
        let body = self.parse_braced_body();
        Stmt::For { pat, iter, body }
    }

    /// Parses one expression. `struct_ok` is false in condition/scrutinee
    /// position, where `Ident {` starts the construct body rather than a
    /// struct literal.
    fn parse_expr(&mut self, struct_ok: bool) -> Expr {
        self.parse_binary(0, struct_ok)
    }

    fn parse_binary(&mut self, min_bp: u8, struct_ok: bool) -> Expr {
        let mut lhs = self.parse_unary(struct_ok);
        while let Some(t) = self.peek() {
            let Some((op, bp)) = infix_op(t) else { break };
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_binary(bp + 1, struct_ok);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_unary(&mut self, struct_ok: bool) -> Expr {
        if self.at_op("-") {
            self.pos += 1;
            return Expr::Neg(Box::new(self.parse_unary(struct_ok)));
        }
        if self.at_op("!") {
            self.pos += 1;
            let inner = self.parse_unary(struct_ok);
            // `!cond` is kept as Binary(Other) so refinement can negate it.
            return Expr::Binary {
                op: BinOp::Other,
                lhs: Box::new(Expr::Path(vec!["!".to_owned()])),
                rhs: Box::new(inner),
            };
        }
        if self.at_op("*") {
            self.pos += 1;
            self.parse_unary(struct_ok);
            return Expr::Opaque;
        }
        if self.at_op("&") {
            self.pos += 1;
            let mutable = self.at_ident("mut");
            if mutable {
                self.pos += 1;
            }
            let inner = self.parse_unary(struct_ok);
            return Expr::Ref {
                mutable,
                expr: Box::new(inner),
            };
        }
        self.parse_postfix(struct_ok)
    }

    fn parse_postfix(&mut self, struct_ok: bool) -> Expr {
        let mut e = self.parse_primary(struct_ok);
        loop {
            if self.at_op("?") {
                self.pos += 1;
                e = Expr::Try(Box::new(e));
                continue;
            }
            if self.at_op(".") {
                // `.await` / `.ident` / `.ident(args)` / `.0`.
                let Some(t) = self.peek_at(1) else { break };
                match &t.tok {
                    Tok::Ident(name) if name == "await" => {
                        self.pos += 2;
                        continue;
                    }
                    Tok::Ident(name) => {
                        let name = name.clone();
                        let line = t.line;
                        self.pos += 2;
                        // Turbofish: `.collect::<…>()`.
                        if self.at_op("::") && self.peek_at(1).is_some_and(|t| t.is_op("<")) {
                            self.pos += 1;
                            self.pos = skip_angles(self.toks, self.pos);
                        }
                        if self.at_op("(") {
                            let args = self.parse_args();
                            e = Expr::Method {
                                recv: Box::new(e),
                                name,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                recv: Box::new(e),
                                name,
                            };
                        }
                        continue;
                    }
                    Tok::Num(n) => {
                        let name = n.clone();
                        self.pos += 2;
                        e = Expr::Field {
                            recv: Box::new(e),
                            name,
                        };
                        continue;
                    }
                    _ => break,
                }
            }
            if self.at_op("[") {
                self.skip_group();
                e = Expr::Opaque;
                continue;
            }
            if self.at_ident("as") {
                // Cast: consume the type path; the operand survives so the
                // interprocedural passes can look inside it, but the value
                // is lost (casts truncate/saturate).
                self.pos += 1;
                while self
                    .peek()
                    .is_some_and(|t| matches!(&t.tok, Tok::Ident(_)) || t.is_op("::"))
                {
                    self.pos += 1;
                }
                e = Expr::Cast(Box::new(e));
                continue;
            }
            break;
        }
        e
    }

    fn parse_primary(&mut self, struct_ok: bool) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Opaque;
        };
        match &t.tok {
            Tok::Num(n) => {
                let v = num_value(n);
                self.pos += 1;
                match v {
                    Some(v) => Expr::Num(v),
                    None => Expr::Opaque,
                }
            }
            Tok::Op("(") => {
                let Some(close) = matching_close(self.toks, self.pos) else {
                    self.pos = self.toks.len();
                    return Expr::Opaque;
                };
                let inner = &self.toks[self.pos + 1..close];
                self.pos = close + 1;
                let parts = split_top_commas(inner);
                if parts.len() == 1 {
                    let mut p = Parser {
                        toks: parts[0],
                        pos: 0,
                    };
                    if parts[0].is_empty() {
                        return Expr::Opaque; // unit `()`
                    }
                    p.parse_expr(true)
                } else {
                    Expr::Tuple(
                        parts
                            .iter()
                            .map(|part| {
                                let mut p = Parser { toks: part, pos: 0 };
                                p.parse_expr(true)
                            })
                            .collect(),
                    )
                }
            }
            Tok::Op("{") => {
                let Some(close) = matching_close(self.toks, self.pos) else {
                    self.pos = self.toks.len();
                    return Expr::Opaque;
                };
                let mut inner = Parser {
                    toks: &self.toks[self.pos + 1..close],
                    pos: 0,
                };
                self.pos = close + 1;
                let (stmts, value) = inner.parse_stmts();
                Expr::Block {
                    stmts,
                    value: value.map(Box::new),
                }
            }
            Tok::Op("[") => {
                let Some(close) = matching_close(self.toks, self.pos) else {
                    self.pos = self.toks.len();
                    return Expr::Opaque;
                };
                let inner = &self.toks[self.pos + 1..close];
                self.pos = close + 1;
                // `[e; n]` repeat form: one representative element.
                let mut depth = 0i32;
                let mut semi = None;
                for (n, t) in inner.iter().enumerate() {
                    match &t.tok {
                        Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                        Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                        Tok::Op(";") if depth == 0 => {
                            semi = Some(n);
                            break;
                        }
                        _ => {}
                    }
                }
                if let Some(s) = semi {
                    let mut p = Parser {
                        toks: &inner[..s],
                        pos: 0,
                    };
                    return Expr::Array(vec![p.parse_expr(true)]);
                }
                Expr::Array(
                    split_top_commas(inner)
                        .into_iter()
                        .filter(|part| !part.is_empty())
                        .map(|part| {
                            let mut p = Parser { toks: part, pos: 0 };
                            p.parse_expr(true)
                        })
                        .collect(),
                )
            }
            Tok::Op("|") | Tok::Op("||") => {
                let line = t.line;
                let mut params = Vec::new();
                if self.at_op("||") {
                    self.pos += 1;
                } else {
                    self.pos += 1;
                    let p_start = self.pos;
                    while let Some(t) = self.peek() {
                        if t.is_op("|") {
                            break;
                        }
                        if t.is_op("(") || t.is_op("[") || t.is_op("{") {
                            self.skip_group();
                            continue;
                        }
                        self.pos += 1;
                    }
                    let p_toks = &self.toks[p_start..self.pos.min(self.toks.len())];
                    self.eat_op("|");
                    for part in split_top_commas(p_toks) {
                        // Strip a `: Type` ascription at depth 0.
                        let mut depth = 0i32;
                        let mut end = part.len();
                        for (n, t) in part.iter().enumerate() {
                            match &t.tok {
                                Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                                Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                                Tok::Op(":") if depth == 0 => {
                                    end = n;
                                    break;
                                }
                                _ => {}
                            }
                        }
                        params.push(parse_pattern(&part[..end]));
                    }
                }
                // Optional `-> Type` before a braced body.
                if self.at_op("->") {
                    while let Some(t) = self.peek() {
                        if t.is_op("{") {
                            break;
                        }
                        if t.is_op("<") {
                            self.pos = skip_angles(self.toks, self.pos);
                            continue;
                        }
                        self.pos += 1;
                    }
                }
                let body = self.parse_expr(struct_ok);
                Expr::Closure {
                    params,
                    body: Box::new(body),
                    line,
                }
            }
            Tok::Ident(w) if w == "if" => {
                self.pos += 1;
                let cond = self.parse_expr(false);
                let then_e = self.parse_block_expr();
                let else_e = if self.at_ident("else") {
                    self.pos += 1;
                    if self.at_ident("if") {
                        Some(Box::new(self.parse_primary(struct_ok)))
                    } else {
                        Some(Box::new(self.parse_block_expr()))
                    }
                } else {
                    None
                };
                Expr::If {
                    cond: Box::new(cond),
                    then_e: Box::new(then_e),
                    else_e,
                }
            }
            Tok::Ident(w) if w == "match" => {
                self.pos += 1;
                let scrutinee = self.parse_expr(false);
                let arms = self.parse_match_arms();
                Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                }
            }
            Tok::Ident(w) if w == "move" => {
                self.pos += 1;
                self.parse_primary(struct_ok)
            }
            Tok::Ident(w) if w == "unsafe" || w == "async" => {
                self.pos += 1;
                self.parse_primary(struct_ok)
            }
            Tok::Ident(_) => self.parse_path_expr(struct_ok),
            _ => {
                self.pos += 1;
                Expr::Opaque
            }
        }
    }

    /// Parses `{ … }` as a value (used by value-position `if`).
    fn parse_block_expr(&mut self) -> Expr {
        if !self.at_op("{") {
            return Expr::Opaque;
        }
        let Some(close) = matching_close(self.toks, self.pos) else {
            self.pos = self.toks.len();
            return Expr::Opaque;
        };
        let mut inner = Parser {
            toks: &self.toks[self.pos + 1..close],
            pos: 0,
        };
        self.pos = close + 1;
        let (stmts, value) = inner.parse_stmts();
        Expr::Block {
            stmts,
            value: value.map(Box::new),
        }
    }

    fn parse_path_expr(&mut self, struct_ok: bool) -> Expr {
        let mut segs = Vec::new();
        let line = self.peek().map_or(0, |t| t.line);
        while let Some(t) = self.peek() {
            if let Tok::Ident(s) = &t.tok {
                segs.push(s.clone());
                self.pos += 1;
                if self.at_op("::") {
                    self.pos += 1;
                    // Turbofish in path position.
                    if self.at_op("<") {
                        self.pos = skip_angles(self.toks, self.pos);
                        break;
                    }
                    continue;
                }
            }
            break;
        }
        if segs.is_empty() {
            self.pos += 1;
            return Expr::Opaque;
        }
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if self.at_op("!") {
            self.pos += 1;
            self.skip_group();
            return Expr::Opaque;
        }
        if self.at_op("(") {
            let args = self.parse_args();
            return Expr::Call {
                path: segs,
                args,
                line,
            };
        }
        if struct_ok && self.at_op("{") && segs.last().is_some_and(|s| starts_upper(s)) {
            // Struct literal.
            self.skip_group();
            return Expr::Opaque;
        }
        Expr::Path(segs)
    }

    /// Parses a parenthesized argument list (cursor on `(`).
    fn parse_args(&mut self) -> Vec<Expr> {
        let Some(close) = matching_close(self.toks, self.pos) else {
            self.pos = self.toks.len();
            return Vec::new();
        };
        let inner = &self.toks[self.pos + 1..close];
        self.pos = close + 1;
        let mut parts = split_top_commas(inner);
        // Trailing comma: drop the final empty slot only. Interior empties
        // stay as Opaque — masked string literals lex to zero tokens, and
        // argument positions must not shift.
        if parts.last().is_some_and(|p| p.is_empty()) {
            parts.pop();
        }
        parts
            .into_iter()
            .map(|part| {
                if part.is_empty() {
                    return Expr::Opaque;
                }
                let mut p = Parser { toks: part, pos: 0 };
                p.parse_expr(true)
            })
            .collect()
    }

    /// Parses `{ pat [if guard] => body, … }` (cursor on `{`).
    fn parse_match_arms(&mut self) -> Vec<Arm> {
        if !self.at_op("{") {
            return Vec::new();
        }
        let Some(close) = matching_close(self.toks, self.pos) else {
            self.pos = self.toks.len();
            return Vec::new();
        };
        let inner = &self.toks[self.pos + 1..close];
        self.pos = close + 1;
        let mut arms = Vec::new();
        let mut i = 0;
        while i < inner.len() {
            // Pattern (and optional guard) reach to `=>` at depth 0.
            let mut depth = 0i32;
            let mut arrow = None;
            let mut guard_at = None;
            let mut j = i;
            while j < inner.len() {
                match &inner[j].tok {
                    Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
                    Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
                    Tok::Op("=>") if depth == 0 => {
                        arrow = Some(j);
                        break;
                    }
                    Tok::Ident(w) if w == "if" && depth == 0 && guard_at.is_none() => {
                        guard_at = Some(j);
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            let pat_end = guard_at.unwrap_or(arrow);
            let pat = parse_pattern(&inner[i..pat_end]);
            let guard = guard_at.map(|g| {
                let mut p = Parser {
                    toks: &inner[g + 1..arrow],
                    pos: 0,
                };
                p.parse_expr(false)
            });
            // Body: an expression; arms end at `,` at depth 0 or at the
            // end of the arm list.
            let mut p = Parser {
                toks: &inner[arrow + 1..],
                pos: 0,
            };
            let body = p.parse_expr(true);
            let consumed = p.pos;
            i = arrow + 1 + consumed;
            if i < inner.len() && inner[i].is_op(",") {
                i += 1;
            }
            arms.push(Arm { pat, guard, body });
        }
        arms
    }
}

/// Splits a token slice on commas at bracket depth 0, honouring closure
/// parameter pipes so `f(|a, b| a + b)` stays one argument.
fn split_top_commas(tokens: &[Token]) -> Vec<&[Token]> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut in_pipes = false;
    let mut start = 0;
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
            Tok::Op("|") if depth == 0 => in_pipes = !in_pipes,
            Tok::Op(",") if depth == 0 && !in_pipes => {
                parts.push(&tokens[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&tokens[start..]);
    if parts.len() == 1 && parts[0].is_empty() {
        return vec![];
    }
    parts
}

/// Names appearing as `&mut name` anywhere in the slice.
fn ref_mut_idents(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    for w in tokens.windows(3) {
        if w[0].is_op("&") && w[1].is_ident("mut") {
            if let Some(n) = w[2].ident() {
                out.push(n.to_owned());
            }
        }
    }
    out
}

/// Parses a pattern from its token slice.
pub fn parse_pattern(tokens: &[Token]) -> Pat {
    // Or-patterns at depth 0.
    let mut depth = 0i32;
    let mut splits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Op("(") | Tok::Op("[") | Tok::Op("{") => depth += 1,
            Tok::Op(")") | Tok::Op("]") | Tok::Op("}") => depth -= 1,
            Tok::Op("|") if depth == 0 => splits.push(i),
            _ => {}
        }
    }
    if !splits.is_empty() {
        let mut parts = Vec::new();
        let mut start = 0;
        for s in splits {
            parts.push(parse_pattern(&tokens[start..s]));
            start = s + 1;
        }
        parts.push(parse_pattern(&tokens[start..]));
        return Pat::Or(parts);
    }

    let mut i = 0;
    // Strip `ref` / `mut` / `&` / `box` prefixes.
    while tokens
        .get(i)
        .is_some_and(|t| t.is_ident("ref") || t.is_ident("mut") || t.is_op("&"))
    {
        i += 1;
    }
    let rest = &tokens[i.min(tokens.len())..];
    match rest.first().map(|t| &t.tok) {
        None => Pat::Wild,
        Some(Tok::Op("_")) => Pat::Wild,
        Some(Tok::Op("(")) => {
            let Some(close) = matching_close(rest, 0) else {
                return Pat::Opaque;
            };
            let subs: Vec<Pat> = split_top_commas(&rest[1..close])
                .into_iter()
                .map(parse_pattern)
                .collect();
            Pat::Tuple(subs)
        }
        Some(Tok::Num(_)) => Pat::Opaque,
        Some(Tok::Ident(_)) => {
            let mut segs = Vec::new();
            let mut j = 0;
            while let Some(Tok::Ident(s)) = rest.get(j).map(|t| &t.tok) {
                segs.push(s.clone());
                if rest.get(j + 1).is_some_and(|t| t.is_op("::")) {
                    j += 2;
                } else {
                    j += 1;
                    break;
                }
            }
            match rest.get(j).map(|t| &t.tok) {
                Some(Tok::Op("(")) => {
                    let Some(close) = matching_close(rest, j) else {
                        return Pat::Opaque;
                    };
                    let subs: Vec<Pat> = split_top_commas(&rest[j + 1..close])
                        .into_iter()
                        .map(parse_pattern)
                        .collect();
                    Pat::Variant { path: segs, subs }
                }
                Some(Tok::Op("{")) => Pat::Opaque, // struct patterns bind nothing we track
                Some(Tok::Op("..")) | Some(Tok::Op("..=")) => Pat::Opaque,
                None => {
                    if segs.len() == 1 && !starts_upper(&segs[0]) {
                        Pat::Bind(segs.remove(0))
                    } else {
                        Pat::Variant {
                            path: segs,
                            subs: Vec::new(),
                        }
                    }
                }
                _ => Pat::Opaque,
            }
        }
        _ => Pat::Opaque,
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

fn assign_op(t: &Token) -> Option<Option<BinOp>> {
    match &t.tok {
        Tok::Op("=") => Some(None),
        Tok::Op("+=") => Some(Some(BinOp::Add)),
        Tok::Op("-=") => Some(Some(BinOp::Sub)),
        Tok::Op("*=") => Some(Some(BinOp::Mul)),
        Tok::Op("/=") => Some(Some(BinOp::Div)),
        Tok::Op("%=")
        | Tok::Op("^=")
        | Tok::Op("&=")
        | Tok::Op("|=")
        | Tok::Op("<<=")
        | Tok::Op(">>=") => Some(Some(BinOp::Other)),
        _ => None,
    }
}

/// Infix operator and its binding power (higher binds tighter).
fn infix_op(t: &Token) -> Option<(BinOp, u8)> {
    let r = match &t.tok {
        Tok::Op("||") => (BinOp::Or, 1),
        Tok::Op("&&") => (BinOp::And, 2),
        Tok::Op("==") => (BinOp::Cmp("=="), 3),
        Tok::Op("!=") => (BinOp::Cmp("!="), 3),
        Tok::Op("<") => (BinOp::Cmp("<"), 3),
        Tok::Op("<=") => (BinOp::Cmp("<="), 3),
        Tok::Op(">") => (BinOp::Cmp(">"), 3),
        Tok::Op(">=") => (BinOp::Cmp(">="), 3),
        Tok::Op("..") | Tok::Op("..=") => (BinOp::Other, 4),
        Tok::Op("+") => (BinOp::Add, 5),
        Tok::Op("-") => (BinOp::Sub, 5),
        Tok::Op("*") => (BinOp::Mul, 6),
        Tok::Op("/") => (BinOp::Div, 6),
        Tok::Op("%") => (BinOp::Other, 6),
        Tok::Op("^") | Tok::Op("|") | Tok::Op("<<") | Tok::Op(">>") => (BinOp::Other, 3),
        _ => return None,
    };
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Vec<Stmt> {
        let wrapped = format!("fn t() {{\n{text}\n}}\n");
        let src = SourceFile::parse("t.rs", &wrapped);
        let fns = parse_fns(&src);
        assert_eq!(fns.len(), 1, "{fns:?}");
        fns.into_iter().next().map(|f| f.body).unwrap_or_default()
    }

    #[test]
    fn parses_let_with_arithmetic() {
        let b = body("let x = a * 2.0 + b;");
        assert_eq!(b.len(), 1);
        let Stmt::Let { pat, init } = &b[0] else {
            panic!("{b:?}")
        };
        assert_eq!(*pat, Pat::Bind("x".to_owned()));
        let Some(Expr::Binary { op: BinOp::Add, .. }) = init else {
            panic!("{init:?}")
        };
    }

    #[test]
    fn precedence_mul_over_add() {
        let b = body("let x = 1.0 + 2.0 * 3.0;");
        let Stmt::Let {
            init: Some(Expr::Binary { op, rhs, .. }),
            ..
        } = &b[0]
        else {
            panic!("{b:?}")
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_tuple_let_over_match() {
        let b = body(
            "let (a, b) = match s {\n\
             K::X => (Watts::ZERO, v),\n\
             K::Y(c) => { (p.min(c), v) }\n\
             };",
        );
        let Stmt::Let {
            pat: Pat::Tuple(ps),
            init: Some(Expr::Match { arms, .. }),
        } = &b[0]
        else {
            panic!("{b:?}")
        };
        assert_eq!(ps.len(), 2);
        assert_eq!(arms.len(), 2);
        assert!(matches!(
            &arms[1].pat,
            Pat::Variant { path, subs } if path == &["K", "Y"] && subs == &[Pat::Bind("c".to_owned())]
        ));
    }

    #[test]
    fn method_chains_and_try() {
        let b = body("let p = chip.power_if(core, next)?.min(cap);");
        let Stmt::Let {
            init: Some(Expr::Method { name, recv, .. }),
            ..
        } = &b[0]
        else {
            panic!("{b:?}")
        };
        assert_eq!(name, "min");
        assert!(matches!(**recv, Expr::Try(_)));
    }

    #[test]
    fn closures_and_macros_are_opaque_but_bounded() {
        let b = body("let m: Vec<f64> = xs.iter().map(|p| p.at(t)).collect();\nlet v = vec![0u64; n];\nuse_it(m, v);");
        assert_eq!(b.len(), 3, "{b:?}");
    }

    #[test]
    fn statement_if_else_chain() {
        // A chain with statements after it parses as a statement…
        let b =
            body("if a < 1.0 { x = 1.0; } else if a < 2.0 { x = 2.0; } else { x = 3.0; }\ndone();");
        let Stmt::If { else_body, .. } = &b[0] else {
            panic!("{b:?}")
        };
        assert!(matches!(&else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn trailing_if_else_chain_is_a_value() {
        // …while a chain that ends the block is re-parsed as the block's
        // value expression, so `match` arms ending in `if c { (a, b) }
        // else { (x, y) }` keep their tuple value.
        let b = body("if a < 1.0 { x = 1.0; } else if a < 2.0 { x = 2.0; } else { x = 3.0; }");
        assert!(matches!(&b[0], Stmt::Expr(Expr::If { .. })), "{b:?}");
        // An `if let` anywhere in the chain's conditions keeps the whole
        // chain a statement (the expression grammar does not model it).
        let b = body("if let Some(v) = find(x) { x = v; } else { x = 3.0; }");
        assert!(matches!(&b[0], Stmt::If { .. }), "{b:?}");
    }

    #[test]
    fn loops_breaks_and_let_else() {
        let b = body(
            "loop {\n\
             let Some(e) = find(x) else { break; };\n\
             if bad(e) { continue; }\n\
             }",
        );
        let Stmt::Loop { body } = &b[0] else {
            panic!("{b:?}")
        };
        assert!(
            matches!(&body[0], Stmt::LetElse { else_body, .. } if matches!(else_body[0], Stmt::Break))
        );
    }

    #[test]
    fn while_and_for() {
        let b = body(
            "while p > cap && n > 0 { n -= 1; }\nfor (i, s) in xs.iter().enumerate() { go(i, s); }",
        );
        assert!(matches!(&b[0], Stmt::While { .. }));
        let Stmt::For { pat, .. } = &b[1] else {
            panic!("{b:?}")
        };
        let mut names = Vec::new();
        pat.bound_names(&mut names);
        assert_eq!(names, ["i", "s"]);
    }

    #[test]
    fn struct_literals_in_args_are_consumed() {
        let b = body("let r = track(&mut Rig { a, b: c.d() })?;");
        assert!(matches!(
            &b[0],
            Stmt::Let {
                init: Some(Expr::Try(_)),
                ..
            }
        ));
    }

    #[test]
    fn or_pattern_arms_parse() {
        let b = body("let x = match p { P::A | P::B => 1.0, _ => 2.0 };");
        let Stmt::Let {
            init: Some(Expr::Match { arms, .. }),
            ..
        } = &b[0]
        else {
            panic!("{b:?}")
        };
        assert!(matches!(&arms[0].pat, Pat::Or(ps) if ps.len() == 2));
        assert_eq!(arms[1].pat, Pat::Wild);
    }

    #[test]
    fn test_fns_are_marked() {
        let text = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n";
        let src = SourceFile::parse("t.rs", text);
        let fns = parse_fns(&src);
        assert_eq!(fns.len(), 2);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
    }

    #[test]
    fn signature_capture() {
        let text = "pub fn f(&mut self, x: f64, buf: &mut Vec<f64>) -> Result<f64, E> {\n    x + 1.0\n}\nfn g(n: usize) -> f64 { v[n] }\n";
        let src = SourceFile::parse("t.rs", text);
        let fns = parse_fns(&src);
        assert_eq!(fns.len(), 2);
        let f = &fns[0];
        assert!(f.is_pub && f.has_self && f.self_mut && f.has_ret && f.fallible);
        assert!(!f.panicky);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name.as_deref(), Some("x"));
        assert!(!f.params[0].by_ref);
        assert_eq!(f.params[1].name.as_deref(), Some("buf"));
        assert!(f.params[1].by_mut_ref);
        let g = &fns[1];
        assert!(!g.is_pub && !g.has_self && !g.fallible && g.has_ret);
        assert!(g.panicky, "indexing is a panic source");
    }

    #[test]
    fn proptest_range_binders_get_intervals() {
        let text = "fn t(p in 10.0..160.0f64, q in any::<f64>()) {}\n";
        let src = SourceFile::parse("t.rs", text);
        let fns = parse_fns(&src);
        let r = fns[0].params[0].range.expect("range hint");
        assert_eq!((r.lo, r.hi), (10.0, 160.0));
        assert!(!r.lo_open && r.hi_open && !r.nan);
        assert!(fns[0].params[1].range.is_none());
    }

    #[test]
    fn closures_keep_their_bodies() {
        let b = body("let f = |a: f64, b| a + b;\nxs.map(|x| x * 2.0);");
        let Stmt::Let {
            init: Some(Expr::Closure { params, body, .. }),
            ..
        } = &b[0]
        else {
            panic!("{b:?}")
        };
        assert_eq!(params.len(), 2);
        assert!(matches!(**body, Expr::Binary { op: BinOp::Add, .. }));
        let Stmt::Expr(Expr::Method { args, .. }) = &b[1] else {
            panic!("{b:?}")
        };
        assert!(matches!(&args[0], Expr::Closure { .. }));
    }

    #[test]
    fn arrays_parse_to_elements() {
        let b = body("let a = [1.0, 2.0, x];\nlet r = [0.0; 8];");
        let Stmt::Let {
            init: Some(Expr::Array(es)),
            ..
        } = &b[0]
        else {
            panic!("{b:?}")
        };
        assert_eq!(es.len(), 3);
        let Stmt::Let {
            init: Some(Expr::Array(rs)),
            ..
        } = &b[1]
        else {
            panic!("{b:?}")
        };
        assert_eq!(rs.len(), 1, "repeat form keeps one representative");
    }

    #[test]
    fn suffixed_literals_parse() {
        assert_eq!(num_value("160.0_f64"), Some(160.0));
        assert_eq!(num_value("0usize"), Some(0.0));
        assert_eq!(num_value("1_000"), Some(1000.0));
        assert_eq!(num_value("0x10"), None);
    }
}
