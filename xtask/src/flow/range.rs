//! The interval/range dataflow pass: abstract interpretation of function
//! bodies over the [`Interval`] domain, discharging runtime sanitizer
//! checks statically and flagging definitely-out-of-range flows.
//!
//! For every non-test function the pass:
//!
//! 1. evaluates the body big-step over an abstract store (local name →
//!    abstract value), seeding contract knowledge from [`Seeds`];
//! 2. runs loop bodies to a widened fixpoint first, then re-executes them
//!    once under the stable head state with recording enabled — so each
//!    sanitizer site is classified exactly once, under a state that
//!    over-approximates *every* iteration;
//! 3. decomposes each `invariants::assert_*` call into its elementary
//!    checks and classifies each as **proven** (statically dischargeable),
//!    **runtime** (left to the sanitizer) or **violated** (statically
//!    refuted — reported as a diagnostic);
//! 4. checks value sinks with constructor-validated ranges
//!    (`Converter::set_ratio`, `VfLevel::from_index`) for arguments that
//!    are provably outside the reachable range.
//!
//! Soundness direction: every approximation in the AST layer collapses to
//! ⊤, so the pass can misclassify a provable check as "runtime" but never
//! the reverse; "violated" additionally requires the whole abstract value
//! to refute the check.

use std::collections::BTreeMap;

use crate::flow::ast::{self, Arm, BinOp, Expr, Pat, Stmt};
use crate::flow::interval::Interval;
use crate::flow::seeds::Seeds;
use crate::lint::Violation;
use crate::syntax::source::SourceFile;

/// Pass identifier (diagnostics, waiver markers, allowlist entries).
pub const PASS: &str = "range";

/// Classification of one elementary sanitizer check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckStatus {
    /// Statically proven: the runtime check can never fire.
    Proven,
    /// Not statically dischargeable: the runtime sanitizer earns its keep.
    Runtime,
    /// Statically refuted: the check fires on every abstract member.
    Violated,
}

/// One elementary check at a sanitizer site.
#[derive(Debug, Clone)]
pub struct CheckRecord {
    /// Human-readable predicate (`power >= 0`, …).
    pub desc: String,
    /// The classification.
    pub status: CheckStatus,
    /// The abstract value the classification was made under.
    pub value: Interval,
}

/// One sanitizer call site with its decomposed checks.
#[derive(Debug, Clone)]
pub struct SiteRecord {
    /// Repo-relative path of the file.
    pub path: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Which sanitizer (`assert_power`, …).
    pub kind: &'static str,
    /// Elementary checks in decomposition order.
    pub checks: Vec<CheckRecord>,
}

/// `true` for files the range pass scans: crate sources, except the
/// sanitizer implementation itself (its check bodies are the *spec* the
/// pass discharges, not flows into it).
pub fn applies_to(path: &str) -> bool {
    path.starts_with("crates/")
        && path.ends_with(".rs")
        && path != "crates/solarcore/src/invariants.rs"
}

/// What an interprocedural oracle knows about one resolved call site.
#[derive(Debug, Clone, Copy)]
pub struct CallFacts {
    /// Interval of the call's (success) value.
    pub ret: Interval,
    /// `true` when the callee takes `&mut self` — the receiver local must
    /// still be invalidated.
    pub mutates_receiver: bool,
}

/// Interprocedural knowledge source (implemented by `graph::Analysis`).
/// The intra-procedural pass runs with `None` and loses no soundness,
/// only precision: every uncovered call stays ⊤.
pub trait CallOracle {
    /// Facts for the call at `path:line` to `callee` (last path segment or
    /// method name), if the call graph resolved it to a summarized target.
    fn call_return(&self, path: &str, line: usize, callee: &str) -> Option<CallFacts>;

    /// Sound parameter intervals for the function declared at
    /// `path:fn_line`, when closed-world call-site accounting derived any.
    fn params_for(&self, path: &str, fn_line: usize) -> Option<&BTreeMap<String, Interval>>;
}

/// One call observed while interpreting a function body (recorded exactly
/// once per syntactic site, under the stable loop-head state).
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// 1-based line of the callee token.
    pub line: usize,
    /// Callee path segments (a single segment for method calls).
    pub path: Vec<String>,
    /// `true` for `recv.name(args)` calls.
    pub is_method: bool,
    /// The receiver local's name, when it is a plain local.
    pub recv: Option<String>,
    /// Abstract argument values at the site.
    pub args: Vec<Interval>,
}

/// Everything one run of the interpreter learned about one function.
#[derive(Debug)]
pub struct FnFlow {
    /// Sanitizer sites found in the body.
    pub sites: Vec<SiteRecord>,
    /// Definite violations found in the body.
    pub violations: Vec<Violation>,
    /// Calls observed in the body.
    pub calls: Vec<CallEvent>,
    /// Join of all (non-`Err`) returned values; `None` when no return
    /// value was observed (diverging or unit functions) — callers must
    /// treat that as ⊤.
    pub ret: Option<Interval>,
}

/// Interprets one function body: seeds the store from parameter range
/// hints (proptest binders) plus any oracle-derived parameter intervals,
/// then records sanitizer sites, call events and return values.
pub fn interpret_fn(
    path: &str,
    f: &ast::FnDef,
    seeds: &Seeds,
    oracle: Option<&dyn CallOracle>,
    params: Option<&BTreeMap<String, Interval>>,
) -> FnFlow {
    let mut interp = Interp {
        seeds,
        path: path.to_owned(),
        sites: Vec::new(),
        violations: Vec::new(),
        record: true,
        oracle,
        calls: Vec::new(),
        returns: Vec::new(),
    };
    let mut state = State::new();
    for p in &f.params {
        if let (Some(name), Some(r)) = (&p.name, p.range) {
            state.insert(name.clone(), AVal::Num(r));
        }
    }
    if let Some(derived) = params {
        for (name, iv) in derived {
            state.insert(name.clone(), AVal::Num(*iv));
        }
    }
    interp.exec_body_value(&f.body, state, f.has_ret);
    let ret = interp.returns.iter().copied().reduce(|a, b| a.join(&b));
    FnFlow {
        sites: interp.sites,
        violations: interp.violations,
        calls: interp.calls,
        ret,
    }
}

/// `true` for an `Err(…)` construction — excluded from the derived return
/// interval, which models the *success* value (consistent with the
/// transparent treatment of `?` and `Ok`).
fn is_err_expr(e: &Expr) -> bool {
    matches!(e, Expr::Call { path, .. } if path.last().is_some_and(|s| s == "Err"))
}

/// Runs the pass over one file with an optional interprocedural oracle.
pub fn check_with(
    src: &SourceFile,
    seeds: &Seeds,
    oracle: Option<&dyn CallOracle>,
) -> (Vec<SiteRecord>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for f in ast::parse_fns(src) {
        if f.in_test {
            continue;
        }
        let params = oracle.and_then(|o| o.params_for(&src.path, f.line));
        let flow = interpret_fn(&src.path, &f, seeds, oracle, params);
        sites.extend(flow.sites);
        violations.extend(flow.violations);
    }
    (sites, violations)
}

/// Runs the pass over one file: returns every sanitizer site found (with
/// per-check classification) plus the definite violations.
pub fn check(src: &SourceFile, seeds: &Seeds) -> (Vec<SiteRecord>, Vec<Violation>) {
    check_with(src, seeds, None)
}

/// Abstract value: a numeric interval or a tuple of abstract values.
/// Everything non-numeric is ⊤ (`Num(Interval::TOP)`).
#[derive(Debug, Clone, PartialEq)]
enum AVal {
    Num(Interval),
    Tuple(Vec<AVal>),
}

impl AVal {
    fn top() -> AVal {
        AVal::Num(Interval::TOP)
    }

    fn num(&self) -> Interval {
        match self {
            AVal::Num(i) => *i,
            AVal::Tuple(_) => Interval::TOP,
        }
    }

    fn join(&self, other: &AVal) -> AVal {
        match (self, other) {
            (AVal::Tuple(a), AVal::Tuple(b)) if a.len() == b.len() => {
                AVal::Tuple(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
            }
            _ => AVal::Num(self.num().join(&other.num())),
        }
    }

    fn widen(&self, old: &AVal) -> AVal {
        match (self, old) {
            (AVal::Tuple(a), AVal::Tuple(b)) if a.len() == b.len() => {
                AVal::Tuple(a.iter().zip(b).map(|(x, y)| x.widen(y)).collect())
            }
            _ => AVal::Num(self.num().widen(&old.num())),
        }
    }
}

/// Abstract store: local name → abstract value; a missing key is ⊤.
type State = BTreeMap<String, AVal>;

fn join_states(a: &State, b: &State) -> State {
    let mut out = State::new();
    for (k, va) in a {
        if let Some(vb) = b.get(k) {
            out.insert(k.clone(), va.join(vb));
        }
    }
    out
}

fn widen_state(new: &State, old: &State) -> State {
    let mut out = State::new();
    for (k, vo) in old {
        if let Some(vn) = new.get(k) {
            out.insert(k.clone(), vn.widen(vo));
        }
    }
    out
}

/// Join an optional fall-through state with another state.
fn join_opt(a: Option<State>, b: State) -> Option<State> {
    Some(match a {
        None => b,
        Some(a) => join_states(&a, &b),
    })
}

/// Control-flow outcome of a statement sequence.
struct Outcome {
    /// State on normal fall-through (`None` when the sequence diverges).
    fall: Option<State>,
    /// States flowing to the innermost enclosing loop's exit.
    breaks: Vec<State>,
    /// States flowing back to the innermost enclosing loop's head.
    continues: Vec<State>,
    /// Names `let`-declared at this sequence's top level (for scoping).
    declared: Vec<String>,
}

struct Interp<'a> {
    seeds: &'a Seeds,
    path: String,
    sites: Vec<SiteRecord>,
    violations: Vec<Violation>,
    /// Recording is off during loop-fixpoint iterations so each site is
    /// classified exactly once, under the stable head state.
    record: bool,
    /// Interprocedural facts; `None` runs the pure intra-procedural pass.
    oracle: Option<&'a dyn CallOracle>,
    /// Call events observed under `record`.
    calls: Vec<CallEvent>,
    /// Non-`Err` returned values observed under `record`.
    returns: Vec<Interval>,
}

impl<'a> Interp<'a> {
    // ----- statements -------------------------------------------------

    /// Executes a function body. When `want_value` (a `-> T` signature),
    /// the trailing statement is the function's value: a trailing
    /// expression is pushed onto `returns`, and a trailing `if` or bare
    /// block recurses per branch (with condition refinement), so
    /// idiomatic tail conditionals contribute precise return intervals
    /// instead of ⊤.
    fn exec_body_value(&mut self, stmts: &[Stmt], state: State, want_value: bool) {
        if !want_value {
            self.exec_stmts(stmts, state);
            return;
        }
        let Some((last, rest)) = stmts.split_last() else {
            return;
        };
        match last {
            Stmt::Expr(e) => {
                if let Some(mut s) = self.exec_stmts(rest, state).fall {
                    let v = self.eval(e, &mut s);
                    if self.record && !is_err_expr(e) {
                        self.returns.push(v.num());
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if let Some(mut s) = self.exec_stmts(rest, state).fall {
                    self.eval(cond, &mut s);
                    let mut then_state = s.clone();
                    self.refine(cond, true, &mut then_state);
                    let mut else_state = s;
                    self.refine(cond, false, &mut else_state);
                    self.exec_body_value(then_body, then_state, true);
                    self.exec_body_value(else_body, else_state, true);
                }
            }
            Stmt::Block(body) => {
                if let Some(s) = self.exec_stmts(rest, state).fall {
                    self.exec_body_value(body, s, true);
                }
            }
            _ => {
                self.exec_stmts(stmts, state);
            }
        }
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], state: State) -> Outcome {
        let mut out = Outcome {
            fall: Some(state),
            breaks: Vec::new(),
            continues: Vec::new(),
            declared: Vec::new(),
        };
        for stmt in stmts {
            let Some(state) = out.fall.take() else {
                break; // unreachable code after a jump
            };
            self.exec_stmt(stmt, state, &mut out);
        }
        out
    }

    /// Executes `stmts` as a scope: bindings declared inside do not leak,
    /// and do not clobber same-named outer locals.
    fn exec_scoped(&mut self, stmts: &[Stmt], state: &State) -> Outcome {
        let snapshot = state.clone();
        let mut out = self.exec_stmts(stmts, state.clone());
        let restore = |s: &mut State| {
            for name in &out.declared {
                match snapshot.get(name) {
                    Some(v) => {
                        s.insert(name.clone(), v.clone());
                    }
                    None => {
                        s.remove(name);
                    }
                }
            }
        };
        if let Some(s) = out.fall.as_mut() {
            restore(s);
        }
        for s in out.breaks.iter_mut().chain(out.continues.iter_mut()) {
            restore(s);
        }
        out
    }

    fn exec_stmt(&mut self, stmt: &Stmt, mut state: State, out: &mut Outcome) {
        match stmt {
            Stmt::Let { pat, init } => {
                let v = match init {
                    Some(e) => self.eval(e, &mut state),
                    None => AVal::top(),
                };
                self.bind_pat(pat, &v, &mut state, &mut out.declared);
                out.fall = Some(state);
            }
            Stmt::LetElse {
                pat,
                init,
                else_body,
            } => {
                let v = self.eval(init, &mut state);
                // The else block diverges; its breaks/continues target the
                // enclosing loop, so they propagate.
                let else_out = self.exec_scoped(else_body, &state);
                out.breaks.extend(else_out.breaks);
                out.continues.extend(else_out.continues);
                self.bind_pat(pat, &v, &mut state, &mut out.declared);
                out.fall = Some(state);
            }
            Stmt::Assign { name, op, value } => {
                let rhs = self.eval(value, &mut state).num();
                let new = match op {
                    None => rhs,
                    Some(BinOp::Add) => state.get(name).map_or(Interval::TOP, AVal::num).add(&rhs),
                    Some(BinOp::Sub) => state.get(name).map_or(Interval::TOP, AVal::num).sub(&rhs),
                    Some(BinOp::Mul) => state.get(name).map_or(Interval::TOP, AVal::num).mul(&rhs),
                    Some(BinOp::Div) => state.get(name).map_or(Interval::TOP, AVal::num).div(&rhs),
                    Some(_) => Interval::TOP,
                };
                state.insert(name.clone(), AVal::Num(new));
                out.fall = Some(state);
            }
            Stmt::Expr(e) => {
                self.eval(e, &mut state);
                out.fall = Some(state);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.eval(cond, &mut state);
                let mut then_state = state.clone();
                self.refine(cond, true, &mut then_state);
                let mut else_state = state;
                self.refine(cond, false, &mut else_state);
                let then_out = self.exec_scoped(then_body, &then_state);
                let else_out = self.exec_scoped(else_body, &else_state);
                out.breaks.extend(then_out.breaks);
                out.breaks.extend(else_out.breaks);
                out.continues.extend(then_out.continues);
                out.continues.extend(else_out.continues);
                out.fall = match (then_out.fall, else_out.fall) {
                    (Some(a), Some(b)) => Some(join_states(&a, &b)),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (None, None) => None,
                };
            }
            Stmt::While { cond, body } => {
                let (head, breaks) = self.loop_fixpoint(&state, |interp, head| {
                    let mut s = head.clone();
                    interp.eval(cond, &mut s);
                    interp.refine(cond, true, &mut s);
                    interp.exec_scoped(body, &s)
                });
                let mut exit = head.clone();
                self.refine(cond, false, &mut exit);
                let exit = breaks.iter().fold(exit, |acc, b| join_states(&acc, b));
                out.fall = Some(exit);
            }
            Stmt::Loop { body } => {
                let (head, breaks) =
                    self.loop_fixpoint(&state, |interp, head| interp.exec_scoped(body, head));
                // Exit via collected breaks; with none visible (e.g. hidden
                // in opaque code) fall back to the head state rather than
                // claiming unreachability.
                let exit = match breaks.split_first() {
                    Some((first, rest)) => {
                        rest.iter().fold(first.clone(), |a, b| join_states(&a, b))
                    }
                    None => head,
                };
                out.fall = Some(exit);
            }
            Stmt::For { pat, iter, body } => {
                // The iterated expression is evaluated once, before the
                // loop; its abstract value is the element hull (exact for
                // literal arrays, ⊤ otherwise — scalars are not iterable,
                // so an interval-valued iterator *is* its elements).
                let elem = AVal::Num(self.eval(iter, &mut state).num());
                let (head, breaks) = self.loop_fixpoint(&state, |interp, head| {
                    let mut s = head.clone();
                    let mut scratch = Vec::new();
                    interp.bind_pat(pat, &elem, &mut s, &mut scratch);
                    let mut o = interp.exec_scoped(body, &s);
                    // The binder is per-iteration; drop it from outflows.
                    for st in o
                        .fall
                        .iter_mut()
                        .chain(o.breaks.iter_mut())
                        .chain(o.continues.iter_mut())
                    {
                        for n in &scratch {
                            st.remove(n);
                        }
                    }
                    o
                });
                let exit = breaks.iter().fold(head, |acc, b| join_states(&acc, b));
                out.fall = Some(exit);
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    let v = self.eval(e, &mut state);
                    if self.record && !is_err_expr(e) {
                        self.returns.push(v.num());
                    }
                }
                out.fall = None;
            }
            Stmt::Break => {
                out.breaks.push(state);
                out.fall = None;
            }
            Stmt::Continue => {
                out.continues.push(state);
                out.fall = None;
            }
            Stmt::Block(body) => {
                let o = self.exec_scoped(body, &state);
                out.breaks.extend(o.breaks);
                out.continues.extend(o.continues);
                out.fall = o.fall;
            }
            Stmt::Havoc(pat) => {
                let mut scratch = Vec::new();
                self.bind_pat(pat, &AVal::top(), &mut state, &mut scratch);
                out.declared.extend(scratch);
                out.fall = Some(state);
            }
            Stmt::Opaque { kills } => {
                for k in kills {
                    state.remove(k);
                }
                out.fall = Some(state);
            }
        }
    }

    /// Runs `body` (entry-state → outcome) to a widened fixpoint over the
    /// loop head, recording suppressed; then one recording pass under the
    /// stable head. Returns the stable head state and the break states of
    /// the recording pass.
    fn loop_fixpoint(
        &mut self,
        entry: &State,
        mut body: impl FnMut(&mut Self, &State) -> Outcome,
    ) -> (State, Vec<State>) {
        const MAX_ITERS: usize = 64;
        let saved_record = self.record;
        self.record = false;
        let mut head = entry.clone();
        for i in 0..=MAX_ITERS {
            if i == MAX_ITERS {
                // Safety net: no stable head in time — go to ⊤.
                head = State::new();
                break;
            }
            let o = body(self, &head);
            let mut next = entry.clone();
            if let Some(f) = o.fall {
                next = join_states(&next, &f);
            }
            for c in &o.continues {
                next = join_states(&next, c);
            }
            let widened = widen_state(&next, &head);
            if widened == head {
                break;
            }
            head = widened;
        }
        self.record = saved_record;
        let breaks = if self.record {
            body(self, &head).breaks
        } else {
            // Inside an outer fixpoint: a cheap non-recording pass still
            // collects break states for the exit join.
            let saved = self.record;
            self.record = false;
            let b = body(self, &head).breaks;
            self.record = saved;
            b
        };
        (head, breaks)
    }

    // ----- patterns ---------------------------------------------------

    fn bind_pat(&self, pat: &Pat, val: &AVal, state: &mut State, declared: &mut Vec<String>) {
        match pat {
            Pat::Bind(n) => {
                state.insert(n.clone(), val.clone());
                declared.push(n.clone());
            }
            Pat::Tuple(ps) => match val {
                AVal::Tuple(vs) if vs.len() == ps.len() => {
                    for (p, v) in ps.iter().zip(vs) {
                        self.bind_pat(p, v, state, declared);
                    }
                }
                _ => {
                    for p in ps {
                        self.bind_pat(p, &AVal::top(), state, declared);
                    }
                }
            },
            Pat::Variant { path, subs } => {
                let last = path.last().map(String::as_str).unwrap_or("");
                if subs.len() == 1 {
                    if let Some(seed) = self.seeds.payload_summary(last) {
                        self.bind_pat(&subs[0], &AVal::Num(seed), state, declared);
                        return;
                    }
                    if last == "Some" || last == "Ok" {
                        // Transparent wrappers: the scrutinee's abstract
                        // value *is* the payload's.
                        self.bind_pat(&subs[0], val, state, declared);
                        return;
                    }
                }
                for p in subs {
                    self.bind_pat(p, &AVal::top(), state, declared);
                }
            }
            Pat::Or(ps) => {
                // Alternatives must bind the same names; ⊤ is their join's
                // over-approximation.
                for p in ps {
                    self.bind_pat(p, &AVal::top(), state, declared);
                }
            }
            Pat::Wild | Pat::Opaque => {}
        }
    }

    // ----- expressions ------------------------------------------------

    fn eval(&mut self, expr: &Expr, state: &mut State) -> AVal {
        match expr {
            Expr::Num(v) => AVal::Num(Interval::constant(*v)),
            Expr::Path(segs) => {
                if segs.len() == 1 {
                    if let Some(v) = state.get(&segs[0]) {
                        return v.clone();
                    }
                }
                match self.seeds.const_value(segs) {
                    Some(i) => AVal::Num(i),
                    None => AVal::top(),
                }
            }
            Expr::Neg(e) => AVal::Num(self.eval(e, state).num().neg()),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, state).num();
                let b = self.eval(rhs, state).num();
                let r = match op {
                    BinOp::Add => a.add(&b),
                    BinOp::Sub => a.sub(&b),
                    BinOp::Mul => a.mul(&b),
                    BinOp::Div => a.div(&b),
                    BinOp::Cmp(_) | BinOp::And | BinOp::Or | BinOp::Other => Interval::TOP,
                };
                AVal::Num(r)
            }
            Expr::Call { path, args, line } => self.eval_call(path, args, *line, state),
            Expr::Method {
                recv,
                name,
                args,
                line,
            } => self.eval_method(recv, name, args, *line, state),
            Expr::Field { recv, name } => {
                let r = self.eval(recv, state);
                if let AVal::Tuple(vs) = &r {
                    if let Ok(ix) = name.parse::<usize>() {
                        if let Some(v) = vs.get(ix) {
                            return v.clone();
                        }
                    }
                }
                match self.seeds.field_summary(name) {
                    Some(i) => AVal::Num(i),
                    None => AVal::top(),
                }
            }
            Expr::Tuple(es) => AVal::Tuple(es.iter().map(|e| self.eval(e, state)).collect()),
            Expr::If {
                cond,
                then_e,
                else_e,
            } => {
                self.eval(cond, state);
                let mut then_state = state.clone();
                self.refine(cond, true, &mut then_state);
                let v1 = self.eval(then_e, &mut then_state);
                let mut else_state = state.clone();
                self.refine(cond, false, &mut else_state);
                let v2 = match else_e {
                    Some(e) => self.eval(e, &mut else_state),
                    None => AVal::top(),
                };
                *state = join_states(&then_state, &else_state);
                v1.join(&v2)
            }
            Expr::Match { scrutinee, arms } => self.eval_match(scrutinee, arms, state),
            Expr::Block { stmts, value } => {
                let snapshot = state.clone();
                let out = self.exec_stmts(stmts, state.clone());
                let mut s = out.fall;
                // Breaks/continues inside value-position blocks are joined
                // into the fall-through conservatively (the AST does not
                // model value-position jumps).
                for b in out.breaks.iter().chain(out.continues.iter()) {
                    s = join_opt(s, b.clone());
                }
                let Some(mut s) = s else {
                    return AVal::top(); // diverging block
                };
                let v = match value {
                    Some(e) => self.eval(e, &mut s),
                    None => AVal::top(),
                };
                for name in &out.declared {
                    match snapshot.get(name) {
                        Some(old) => {
                            s.insert(name.clone(), old.clone());
                        }
                        None => {
                            s.remove(name);
                        }
                    }
                }
                *state = s;
                v
            }
            Expr::Try(e) | Expr::Ref { expr: e, .. } => self.eval(e, state),
            Expr::Closure { params, body, .. } => {
                // The body is evaluated under the *current* state so sites
                // and call events inside see the captured knowledge; the
                // closure itself runs zero or more times at unknown points,
                // so afterwards only bindings the body provably left
                // untouched keep their value — anything it changed or
                // killed (and any shadowed param name) goes to ⊤.
                let snapshot = state.clone();
                let mut scratch = Vec::new();
                for p in params {
                    self.bind_pat(p, &AVal::top(), state, &mut scratch);
                }
                self.eval(body, state);
                let mut kept = State::new();
                for (k, old) in &snapshot {
                    if state.get(k) == Some(old) {
                        kept.insert(k.clone(), old.clone());
                    }
                }
                *state = kept;
                AVal::top()
            }
            Expr::Array(es) => {
                // An array's abstract value is its element hull: iteration
                // reads elements, never the aggregate.
                let mut hull: Option<Interval> = None;
                for e in es {
                    let v = self.eval(e, state).num();
                    hull = Some(match hull {
                        None => v,
                        Some(h) => h.join(&v),
                    });
                }
                AVal::Num(hull.unwrap_or(Interval::TOP))
            }
            Expr::Cast(inner) => {
                // Evaluate for effects and call sites; the cast's value is
                // ⊤ (truncation/saturation is not modelled).
                self.eval(inner, state);
                AVal::top()
            }
            Expr::Opaque => AVal::top(),
        }
    }

    fn eval_match(&mut self, scrutinee: &Expr, arms: &[Arm], state: &mut State) -> AVal {
        let sval = self.eval(scrutinee, state);
        let mut joined_state: Option<State> = None;
        let mut joined_val: Option<AVal> = None;
        for arm in arms {
            let mut arm_state = state.clone();
            let mut declared = Vec::new();
            self.bind_pat(&arm.pat, &sval, &mut arm_state, &mut declared);
            if let Some(g) = &arm.guard {
                self.eval(g, &mut arm_state);
                self.refine(g, true, &mut arm_state);
            }
            let v = self.eval(&arm.body, &mut arm_state);
            for name in &declared {
                match state.get(name) {
                    Some(old) => {
                        arm_state.insert(name.clone(), old.clone());
                    }
                    None => {
                        arm_state.remove(name);
                    }
                }
            }
            joined_state = join_opt(joined_state, arm_state);
            joined_val = Some(match joined_val {
                None => v,
                Some(j) => j.join(&v),
            });
        }
        if let Some(s) = joined_state {
            *state = s;
        }
        joined_val.unwrap_or_else(AVal::top)
    }

    fn eval_call(
        &mut self,
        path: &[String],
        args: &[Expr],
        line: usize,
        state: &mut State,
    ) -> AVal {
        let vals: Vec<AVal> = args.iter().map(|a| self.eval(a, state)).collect();
        self.apply_ref_mut_kills(args, state);
        if self.record {
            self.calls.push(CallEvent {
                line,
                path: path.to_vec(),
                is_method: false,
                recv: None,
                args: vals.iter().map(AVal::num).collect(),
            });
        }
        let last = path.last().map(String::as_str).unwrap_or("");
        match last {
            "assert_power" | "assert_budget" | "assert_conversion" | "assert_bus_voltage" => {
                // Re-match to a `&'static str` site kind.
                let kind = match last {
                    "assert_power" => "assert_power",
                    "assert_budget" => "assert_budget",
                    "assert_conversion" => "assert_conversion",
                    _ => "assert_bus_voltage",
                };
                if self.record {
                    self.record_site(kind, line, &vals);
                }
                AVal::top()
            }
            "from_index" => {
                if self.record {
                    let ix = vals.first().map_or(Interval::TOP, AVal::num);
                    let count = self.seeds.vf_level_count();
                    if ix.refutes_le(count - 1.0) || ix.refutes_ge(0.0) {
                        self.violations.push(Violation {
                            pass: PASS,
                            path: self.path.clone(),
                            line,
                            message: format!(
                                "V/F level index in {ix} is provably outside the \
                                 ladder range [0, {}]",
                                count - 1.0
                            ),
                        });
                    }
                }
                AVal::top()
            }
            "new" if self.seeds.transparent_constructor(path) && vals.len() == 1 => {
                vals.into_iter().next().unwrap_or_else(AVal::top)
            }
            "Some" | "Ok" | "Err" if vals.len() == 1 => {
                vals.into_iter().next().unwrap_or_else(AVal::top)
            }
            _ => {
                if let Some(i) = self.seeds.const_value(path) {
                    return AVal::Num(i); // e.g. a const fn mistaken for a call
                }
                if let Some(facts) = self
                    .oracle
                    .and_then(|o| o.call_return(&self.path, line, last))
                {
                    return AVal::Num(facts.ret);
                }
                AVal::top()
            }
        }
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        name: &str,
        args: &[Expr],
        line: usize,
        state: &mut State,
    ) -> AVal {
        let rval = self.eval(recv, state);
        let avals: Vec<AVal> = args.iter().map(|a| self.eval(a, state)).collect();
        self.apply_ref_mut_kills(args, state);
        if self.record {
            let recv_name = match recv {
                Expr::Path(segs) if segs.len() == 1 => Some(segs[0].clone()),
                _ => None,
            };
            self.calls.push(CallEvent {
                line,
                path: vec![name.to_owned()],
                is_method: true,
                recv: recv_name,
                args: avals.iter().map(AVal::num).collect(),
            });
        }
        let r = rval.num();
        let result = match (name, avals.len()) {
            ("get", 0) => Some(rval.clone()),
            ("min", 1) => Some(AVal::Num(r.min(&avals[0].num()))),
            ("max", 1) => Some(AVal::Num(r.max(&avals[0].num()))),
            ("abs", 0) => Some(AVal::Num(r.abs())),
            ("clamp", 2) => {
                // Only constant clamp bounds are modelled.
                match (avals[0].num().as_const(), avals[1].num().as_const()) {
                    (Some(l), Some(h)) if l <= h => Some(AVal::Num(r.clamp_const(l, h))),
                    _ => Some(AVal::top()),
                }
            }
            ("is_finite" | "is_nan" | "is_sign_negative", 0) => Some(AVal::top()),
            // Iterator adaptors and container reads take `self`/`&self`:
            // they never mutate through the receiver *name*, so they must
            // not kill a tracked local (`for m in mixes.iter()` keeps
            // `mixes`). Their values are not modelled.
            (
                "iter" | "into_iter" | "enumerate" | "rev" | "zip" | "chain" | "copied" | "cloned"
                | "map" | "filter" | "filter_map" | "flat_map" | "flatten" | "collect" | "sum"
                | "windows" | "chunks" | "len" | "is_empty" | "to_vec" | "contains" | "first"
                | "last",
                _,
            ) => Some(AVal::top()),
            ("ratio_range", 0) => Some(AVal::Tuple(vec![
                AVal::Num(self.seeds.ratio_bounds()),
                AVal::Num(self.seeds.ratio_bounds()),
            ])),
            ("set_ratio", 1) => {
                if self.record {
                    let k = avals[0].num();
                    let bounds = self.seeds.ratio_bounds();
                    if k.refutes_le(bounds.hi) || k.refutes_ge(bounds.lo) {
                        self.violations.push(Violation {
                            pass: PASS,
                            path: self.path.clone(),
                            line,
                            message: format!(
                                "transfer ratio in {k} is provably outside the \
                                 reachable range [{}, {}]",
                                bounds.lo, bounds.hi
                            ),
                        });
                    }
                }
                None
            }
            _ => self.seeds.method_summary(name).map(AVal::Num),
        };
        match result {
            Some(v) => v,
            None => {
                // Unknown method: ask the oracle; a summarized callee that
                // provably takes `self`/`&self` spares the receiver local.
                let facts = self
                    .oracle
                    .and_then(|o| o.call_return(&self.path, line, name));
                let kills_recv = facts.is_none_or(|f| f.mutates_receiver);
                if kills_recv {
                    if let Expr::Path(segs) = recv {
                        if segs.len() == 1 {
                            state.remove(&segs[0]);
                        }
                    }
                }
                match facts {
                    Some(f) => AVal::Num(f.ret),
                    None => AVal::top(),
                }
            }
        }
    }

    /// Invalidates locals passed by `&mut` to a call.
    fn apply_ref_mut_kills(&self, args: &[Expr], state: &mut State) {
        for a in args {
            if let Expr::Ref {
                mutable: true,
                expr,
            } = a
            {
                if let Expr::Path(segs) = expr.as_ref() {
                    if segs.len() == 1 {
                        state.remove(&segs[0]);
                    }
                }
            }
        }
    }

    // ----- condition refinement ----------------------------------------

    /// Narrows `state` under the assumption that `cond` evaluated to
    /// `polarity`. Bound moves never mint finiteness (a true `x > 0` still
    /// admits `+∞`), but an observed-true comparison does exclude NaN —
    /// NaN fails every IEEE comparison except `!=`. The negated direction
    /// must not: `!(x >= 0)` admits both `x < 0` and NaN.
    fn refine(&mut self, cond: &Expr, polarity: bool, state: &mut State) {
        match cond {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } if polarity => {
                self.refine(lhs, true, state);
                self.refine(rhs, true, state);
            }
            Expr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } if !polarity => {
                self.refine(lhs, false, state);
                self.refine(rhs, false, state);
            }
            // `!inner` is encoded as Binary(Other, Path(["!"]), inner).
            Expr::Binary {
                op: BinOp::Other,
                lhs,
                rhs,
            } if matches!(lhs.as_ref(), Expr::Path(s) if s.len() == 1 && s[0] == "!") => {
                self.refine(rhs, !polarity, state);
            }
            Expr::Binary {
                op: BinOp::Cmp(op),
                lhs,
                rhs,
            } => {
                self.refine_cmp(lhs, op, rhs, polarity, state);
                // Mirrored: `c < x` refines x with the flipped operator.
                let flipped = match *op {
                    "<" => ">",
                    "<=" => ">=",
                    ">" => "<",
                    ">=" => "<=",
                    other => other,
                };
                self.refine_cmp(rhs, flipped, lhs, polarity, state);
            }
            Expr::Method {
                recv, name, args, ..
            } if name == "is_finite" && args.is_empty() && polarity => {
                if let Some(target) = refine_target(recv) {
                    let cur = state.get(&target).map_or(Interval::TOP, |v| v.num());
                    state.insert(target, AVal::Num(cur.refine_finite()));
                }
            }
            _ => {}
        }
    }

    /// Refines the target of `lhs` under `lhs <op> rhs == polarity`.
    fn refine_cmp(&mut self, lhs: &Expr, op: &str, rhs: &Expr, polarity: bool, state: &mut State) {
        let Some(target) = refine_target(lhs) else {
            return;
        };
        let mut scratch = state.clone();
        let bound = self.eval(rhs, &mut scratch).num();
        let cur = state.get(&target).map_or(Interval::TOP, |v| v.num());
        let mut refined = match (op, polarity) {
            ("<", true) if bound.hi.is_finite() => cur.refine_lt(bound.hi),
            ("<=", true) if bound.hi.is_finite() => cur.refine_le(bound.hi),
            (">", true) if bound.lo.is_finite() => cur.refine_gt(bound.lo),
            (">=", true) if bound.lo.is_finite() => cur.refine_ge(bound.lo),
            ("<", false) if bound.lo.is_finite() => cur.refine_ge(bound.lo),
            ("<=", false) if bound.lo.is_finite() => cur.refine_gt(bound.lo),
            (">", false) if bound.hi.is_finite() => cur.refine_le(bound.hi),
            (">=", false) if bound.hi.is_finite() => cur.refine_lt(bound.hi),
            ("==", true) | ("!=", false) => match bound.as_const() {
                Some(c) => Interval::constant(c),
                None => cur,
            },
            _ => cur,
        };
        // A comparison observed *true* implies the operand was numeric
        // (NaN fails `<`, `<=`, `>`, `>=`, `==`); an observed-false `!=`
        // is an observed-true `==`. Negated orderings keep the NaN flag:
        // `!(x >= 0)` is satisfied by NaN.
        if (polarity && op != "!=") || (!polarity && op == "!=") {
            refined = refined.refine_not_nan();
        }
        state.insert(target, AVal::Num(refined));
    }

    // ----- sanitizer site classification -------------------------------

    fn record_site(&mut self, kind: &'static str, line: usize, args: &[AVal]) {
        let arg = |i: usize| args.get(i).map_or(Interval::TOP, AVal::num);
        let slack = self.seeds.power_slack();
        // Argument 0 is the stage label (a masked string literal).
        let checks = match kind {
            "assert_power" => power_checks("power", arg(1)),
            "assert_budget" => {
                let drawn = arg(1);
                let budget = arg(2);
                let mut c = power_checks("drawn", drawn);
                c.extend(power_checks("budget", budget));
                c.push(relational_check(
                    format!("drawn <= budget + {slack} W slack"),
                    drawn,
                    budget,
                    slack,
                ));
                c
            }
            "assert_conversion" => {
                let input = arg(1);
                let output = arg(2);
                let eff = arg(3);
                let mut c = vec![
                    CheckRecord {
                        desc: "efficiency > 0".to_owned(),
                        status: if eff.proves_gt(0.0) {
                            CheckStatus::Proven
                        } else if eff.hi <= 0.0 {
                            CheckStatus::Violated
                        } else {
                            CheckStatus::Runtime
                        },
                        value: eff,
                    },
                    CheckRecord {
                        desc: "efficiency <= 1".to_owned(),
                        status: if eff.proves_le(1.0) {
                            CheckStatus::Proven
                        } else if eff.lo > 1.0 {
                            CheckStatus::Violated
                        } else {
                            CheckStatus::Runtime
                        },
                        value: eff,
                    },
                ];
                c.extend(power_checks("input", input));
                c.extend(power_checks("output", output));
                let diff = output.sub(&eff.mul(&input)).abs();
                c.push(CheckRecord {
                    desc: format!("|output - efficiency*input| <= {slack} W"),
                    status: if diff.proves_le(slack) {
                        CheckStatus::Proven
                    } else if diff.lo > slack {
                        // All non-NaN diffs exceed the slack, and a NaN
                        // diff fails `<= slack` too.
                        CheckStatus::Violated
                    } else {
                        CheckStatus::Runtime
                    },
                    value: diff,
                });
                c
            }
            "assert_bus_voltage" => {
                let v = arg(1);
                let ceiling = arg(2);
                let mut c = vec![
                    CheckRecord {
                        desc: "bus voltage is finite".to_owned(),
                        status: finiteness_status(v),
                        value: v,
                    },
                    CheckRecord {
                        desc: "bus voltage >= 0".to_owned(),
                        status: ge_status(v, 0.0),
                        value: v,
                    },
                ];
                c.push(relational_check(
                    "bus voltage <= ceiling".to_owned(),
                    v,
                    ceiling,
                    1e-9,
                ));
                c
            }
            _ => Vec::new(),
        };
        for check in &checks {
            if check.status == CheckStatus::Violated {
                self.violations.push(Violation {
                    pass: PASS,
                    path: self.path.clone(),
                    line,
                    message: format!(
                        "{kind}: check `{}` is statically violated (value in {})",
                        check.desc, check.value
                    ),
                });
            }
        }
        self.sites.push(SiteRecord {
            path: self.path.clone(),
            line,
            kind,
            checks,
        });
    }
}

/// The two elementary checks of `assert_power` over one operand.
fn power_checks(label: &str, iv: Interval) -> Vec<CheckRecord> {
    vec![
        CheckRecord {
            desc: format!("{label} is finite"),
            status: finiteness_status(iv),
            value: iv,
        },
        CheckRecord {
            desc: format!("{label} >= 0"),
            status: ge_status(iv, 0.0),
            value: iv,
        },
    ]
}

fn finiteness_status(iv: Interval) -> CheckStatus {
    if iv.proves_finite() {
        CheckStatus::Proven
    } else if iv.lo == f64::INFINITY || iv.hi == f64::NEG_INFINITY {
        // Pinned to an infinity: definitely non-finite. (A maybe-NaN value
        // is merely unproven.)
        CheckStatus::Violated
    } else {
        CheckStatus::Runtime
    }
}

fn ge_status(iv: Interval, c: f64) -> CheckStatus {
    if iv.proves_ge(c) {
        CheckStatus::Proven
    } else if iv.refutes_ge(c) {
        // All non-NaN members are below `c`, and NaN fails `>=` too.
        CheckStatus::Violated
    } else {
        CheckStatus::Runtime
    }
}

/// Classifies `a <= b + slack`.
fn relational_check(desc: String, a: Interval, b: Interval, slack: f64) -> CheckRecord {
    // `a.hi <= b.lo + slack` can only hold for finite `a.hi`, so a
    // possible `+∞` in `a` never slips through; NaN needs its own check.
    let status = if !a.nan && !b.nan && a.hi <= b.lo + slack {
        CheckStatus::Proven
    } else if a.lo > b.hi + slack {
        // Every non-NaN pair violates, and NaN operands fail `<=` anyway.
        CheckStatus::Violated
    } else {
        CheckStatus::Runtime
    };
    CheckRecord {
        desc,
        status,
        value: a,
    }
}

/// The local a comparison/`is_finite` refines, looking through the
/// transparent `.get()` newtype unwrap.
fn refine_target(e: &Expr) -> Option<String> {
    match e {
        Expr::Path(segs) if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Method {
            recv, name, args, ..
        } if name == "get" && args.is_empty() => refine_target(recv),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(text: &str) -> (Vec<SiteRecord>, Vec<Violation>) {
        let src = SourceFile::parse("crates/x/src/lib.rs", text);
        let seeds = Seeds::for_tests();
        check(&src, &seeds)
    }

    fn statuses(sites: &[SiteRecord]) -> Vec<CheckStatus> {
        sites
            .iter()
            .flat_map(|s| s.checks.iter().map(|c| c.status))
            .collect()
    }

    #[test]
    fn literal_power_is_proven() {
        let (sites, v) =
            run_src("fn f() {\n    invariants::assert_power(\"t\", Watts::new(42.0));\n}\n");
        assert_eq!(statuses(&sites), [CheckStatus::Proven; 2]);
        assert!(v.is_empty());
    }

    #[test]
    fn negative_constant_is_violated() {
        let (sites, v) =
            run_src("fn f() {\n    invariants::assert_power(\"t\", Watts::new(-3.0));\n}\n");
        assert_eq!(
            statuses(&sites),
            [CheckStatus::Proven, CheckStatus::Violated]
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("power >= 0"), "{}", v[0].message);
    }

    #[test]
    fn unknown_values_stay_runtime() {
        let (sites, v) = run_src("fn f(p: Watts) {\n    invariants::assert_power(\"t\", p);\n}\n");
        assert_eq!(statuses(&sites), [CheckStatus::Runtime; 2]);
        assert!(v.is_empty());
    }

    #[test]
    fn min_against_seeded_budget_proves_conservation() {
        let (sites, _) = run_src(
            "fn f(chip: Chip, cap: Watts) {\n\
             let budget = cap.get().max(0.0);\n\
             let drawn = budget.min(10.0);\n\
             invariants::assert_budget(\"t\", Watts::new(drawn), Watts::new(budget));\n\
             }\n",
        );
        // budget = max(unknown, 0) is provably non-NaN and >= 0 but may
        // still be +inf (f64::max passes an infinite operand through), so
        // its finiteness stays a runtime check; drawn = min(budget, 10)
        // lands in [0, 10] and proves both its checks. The relational
        // drawn <= budget is not tracked relationally: 3 proven, 2 runtime.
        let st = statuses(&sites);
        assert_eq!(st.len(), 5);
        assert_eq!(
            st.iter().filter(|s| **s == CheckStatus::Proven).count(),
            3,
            "{st:?}"
        );
        assert!(st.iter().all(|s| *s != CheckStatus::Violated), "{st:?}");
    }

    #[test]
    fn branch_refinement_discharges_checks() {
        let (sites, _) = run_src(
            "fn f(x: f64) {\n\
             if x.is_finite() && x >= 0.0 {\n\
             invariants::assert_power(\"t\", Watts::new(x));\n\
             }\n\
             }\n",
        );
        assert_eq!(statuses(&sites), [CheckStatus::Proven; 2]);
    }

    #[test]
    fn widening_keeps_loop_growth_at_runtime() {
        let (sites, v) = run_src(
            "fn f(w: Workload) {\n\
             let mut p = 1.0;\n\
             loop {\n\
             p = p * 2.0;\n\
             invariants::assert_power(\"t\", Watts::new(p));\n\
             if w.done() { break; }\n\
             }\n\
             }\n",
        );
        // p doubles with no numeric bound before the assert, so widening
        // sends hi to +inf (overflow is reachable) and the finiteness check
        // correctly stays a runtime concern — while non-negativity survives
        // widening (inf >= 0) and is proven.
        let st = statuses(&sites);
        assert_eq!(st, [CheckStatus::Runtime, CheckStatus::Proven], "{st:?}");
        assert!(v.is_empty());
    }

    #[test]
    fn break_guard_refinement_proves_finiteness_after_widening() {
        let (sites, _) = run_src(
            "fn f() {\n\
             let mut p = 1.0;\n\
             loop {\n\
             p = p * 2.0;\n\
             if p > 100.0 { break; }\n\
             invariants::assert_power(\"t\", Watts::new(p));\n\
             }\n\
             }\n",
        );
        // The break guard caps the backedge at p <= 100, so the fixpoint
        // narrows back from the widened [?, +inf] and both checks are
        // discharged despite the loop growth.
        assert_eq!(statuses(&sites), [CheckStatus::Proven; 2]);
    }

    #[test]
    fn fixed_power_payload_is_seeded() {
        let (sites, _) = run_src(
            "fn f(policy: Policy) {\n\
             match policy {\n\
             Policy::FixedPower(cap) => {\n\
             invariants::assert_power(\"t\", cap);\n\
             }\n\
             _ => {}\n\
             }\n\
             }\n",
        );
        assert_eq!(statuses(&sites), [CheckStatus::Proven; 2]);
    }

    #[test]
    fn efficiency_contract_proves_conversion_eta_checks() {
        let (sites, _) = run_src(
            "fn f(c: Converter, a: Watts, b: Watts) {\n\
             invariants::assert_conversion(\"t\", a, b, c.efficiency());\n\
             }\n",
        );
        let st = statuses(&sites);
        assert_eq!(st.len(), 7);
        assert_eq!(st[0], CheckStatus::Proven); // eta > 0
        assert_eq!(st[1], CheckStatus::Proven); // eta <= 1
    }

    #[test]
    fn set_ratio_sink_flags_constant_out_of_range() {
        let (_, v) = run_src("fn f(c: Converter) {\n    let _r = c.set_ratio(12.5);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("transfer ratio"), "{}", v[0].message);
        // In-range constants are quiet.
        let (_, v2) = run_src("fn f(c: Converter) {\n    let _r = c.set_ratio(2.5);\n}\n");
        assert!(v2.is_empty());
    }

    #[test]
    fn from_index_sink_flags_out_of_ladder() {
        let (_, v) = run_src("fn f() {\n    let _l = VfLevel::from_index(9.0);\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("V/F level index"), "{}", v[0].message);
    }

    #[test]
    fn test_functions_are_skipped() {
        let (sites, v) = run_src(
            "#[cfg(test)]\nmod tests {\n\
             fn f() { invariants::assert_power(\"t\", Watts::new(-3.0)); }\n\
             }\n",
        );
        assert!(sites.is_empty());
        assert!(v.is_empty());
    }

    #[test]
    fn shadowed_locals_do_not_leak_out_of_blocks() {
        let (sites, v) = run_src(
            "fn f() {\n\
             let x = -5.0;\n\
             {\n        let x = 1.0;\n        let _y = x;\n    }\n\
             invariants::assert_power(\"t\", Watts::new(x));\n\
             }\n",
        );
        assert_eq!(
            statuses(&sites),
            [CheckStatus::Proven, CheckStatus::Violated]
        );
        assert_eq!(v.len(), 1);
    }
}
