//! Quickstart: simulate one solar-powered day with SolarCore and print the
//! headline metrics.
//!
//! ```text
//! cargo run -p examples --bin quickstart
//! ```

use solarcore::{CoreError, DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

fn main() -> Result<(), CoreError> {
    // A mid-January day in Phoenix, running the heterogeneous HM2 mix
    // (bzip, gzip, art, apsi, gcc, mcf, gap, vpr) under the full SolarCore
    // policy: MPP tracking plus throughput-power-ratio load allocation.
    let result = DaySimulation::builder()
        .site(Site::phoenix_az())
        .season(Season::Jan)
        .mix(Mix::hm2())
        .policy(Policy::MpptOpt)
        .build()?
        .run()?;

    println!("SolarCore quickstart — Phoenix, AZ / Jan / HM2");
    println!(
        "  solar energy available : {:8.1} Wh (perfect MPP harvesting)",
        result.energy_available().get()
    );
    println!(
        "  solar energy drawn     : {:8.1} Wh",
        result.energy_drawn().get()
    );
    println!(
        "  green energy utilization: {:6.1} %",
        100.0 * result.utilization()
    );
    println!(
        "  effective solar duration: {:6.1} % of the 07:30–17:30 window",
        100.0 * result.effective_fraction()
    );
    println!(
        "  mean MPP tracking error : {:6.1} %",
        100.0 * result.mean_tracking_error()
    );
    println!(
        "  instructions on solar   : {:9.2e} (the performance-time product)",
        result.solar_instructions()
    );

    Ok(())
}
