//! Site planner: where should a solar-powered compute installation go?
//!
//! Sweeps the four evaluated sites across all seasons with the SolarCore
//! policy and ranks them by yearly green instructions — the kind of
//! deployment question the paper's Table 2 / Figure 18 analysis answers.
//!
//! ```text
//! cargo run -p examples --bin site_planner -- ML2
//! ```

use std::env;

use solarcore::metrics::mean;
use solarcore::{CoreError, DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

struct SiteReport {
    name: &'static str,
    utilization: f64,
    effective: f64,
    daily_wh: f64,
    daily_instructions: f64,
}

fn main() -> Result<(), CoreError> {
    let mix_name = env::args().nth(1).unwrap_or_else(|| "ML2".into());
    let mix = Mix::by_name(&mix_name).unwrap_or_else(Mix::ml2);
    println!(
        "Site planner — seasonal-average SolarCore metrics running {}",
        mix.name()
    );

    let mut reports: Vec<SiteReport> = Site::all()
        .into_iter()
        .map(|site| -> Result<SiteReport, CoreError> {
            let mut utils = Vec::new();
            let mut effs = Vec::new();
            let mut whs = Vec::new();
            let mut instrs = Vec::new();
            for &season in &Season::ALL {
                let r = DaySimulation::builder()
                    .site(site.clone())
                    .season(season)
                    .mix(mix.clone())
                    .policy(Policy::MpptOpt)
                    .build()?
                    .run()?;
                utils.push(r.utilization());
                effs.push(r.effective_fraction());
                whs.push(r.energy_drawn().get());
                instrs.push(r.solar_instructions());
            }
            Ok(SiteReport {
                name: site.name(),
                utilization: mean(&utils),
                effective: mean(&effs),
                daily_wh: mean(&whs),
                daily_instructions: mean(&instrs),
            })
        })
        .collect::<Result<_, _>>()?;

    reports.sort_by(|a, b| b.daily_instructions.total_cmp(&a.daily_instructions));

    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>16}",
        "site", "util (%)", "solar (%)", "Wh/day", "instr/day"
    );
    for r in &reports {
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>12.1} {:>16.2e}",
            r.name,
            100.0 * r.utilization,
            100.0 * r.effective,
            r.daily_wh,
            r.daily_instructions
        );
    }
    println!(
        "\nbest green-compute site for {}: {}",
        mix.name(),
        reports[0].name
    );
    Ok(())
}
