//! Day-trace viewer: replay one SolarCore day and sketch the maximal power
//! budget vs the actual power drawn (the paper's Figures 13/14) in the
//! terminal.
//!
//! ```text
//! cargo run -p examples --bin mppt_day_trace -- AZ Jul H1
//! ```

use std::env;
use std::process::ExitCode;

use powertrain::PowerSource;
use solarcore::{CoreError, DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

fn parse_site(code: &str) -> Option<Site> {
    Site::all().into_iter().find(|s| s.code() == code)
}

fn parse_season(name: &str) -> Option<Season> {
    Season::ALL.iter().copied().find(|s| s.to_string() == name)
}

#[allow(clippy::cast_possible_truncation)] // bar lengths are clamped to the 60-col chart
fn main() -> Result<ExitCode, CoreError> {
    let mut args = env::args().skip(1);
    let site = args.next().unwrap_or_else(|| "AZ".into());
    let season = args.next().unwrap_or_else(|| "Jan".into());
    let mix = args.next().unwrap_or_else(|| "H1".into());

    let (Some(site), Some(season), Some(mix)) =
        (parse_site(&site), parse_season(&season), Mix::by_name(&mix))
    else {
        eprintln!("usage: mppt_day_trace [AZ|CO|NC|TN] [Jan|Apr|Jul|Oct] [H1|H2|M1|M2|L1|L2|HM1|HM2|ML1|ML2]");
        return Ok(ExitCode::FAILURE);
    };

    let result = DaySimulation::builder()
        .site(site.clone())
        .season(season)
        .mix(mix.clone())
        .policy(Policy::MpptOpt)
        .build()?
        .run()?;

    println!(
        "MPP tracking, {} @ {} running {} (· budget, * actual, u = on utility)",
        season,
        site.code(),
        mix.name()
    );
    let peak = result
        .records()
        .iter()
        .map(|r| r.budget.get())
        .fold(1.0, f64::max);
    // One output row per 10 simulated minutes.
    for chunk in result.records().chunks(10) {
        let minute = chunk[0].minute;
        let budget = chunk.iter().map(|r| r.budget.get()).sum::<f64>() / chunk.len() as f64;
        let drawn = chunk.iter().map(|r| r.drawn.get()).sum::<f64>() / chunk.len() as f64;
        let on_utility = chunk.iter().all(|r| r.source == PowerSource::Utility);
        let width = 60usize;
        let b = ((budget / peak) * width as f64).round() as usize;
        let d = ((drawn / peak) * width as f64).round() as usize;
        let mut line = vec![' '; width + 1];
        if b < line.len() {
            line[b] = '·';
        }
        if on_utility {
            line[0] = 'u';
        } else if d < line.len() {
            line[d] = '*';
        }
        println!(
            "{:02}:{:02} {:>5.1}W |{}",
            minute / 60,
            minute % 60,
            drawn,
            line.into_iter().collect::<String>()
        );
    }
    println!(
        "day: utilization {:.1} %, tracking error {:.1} %, effective duration {:.1} %",
        100.0 * result.utilization(),
        100.0 * result.mean_tracking_error(),
        100.0 * result.effective_fraction()
    );
    Ok(ExitCode::SUCCESS)
}
