//! PV module explorer: print the BP3180N I-V / P-V characteristic and MPP
//! for a chosen irradiance and cell temperature.
//!
//! ```text
//! cargo run -p examples --bin pv_explorer -- 800 45
//! #                                          G    T(°C)
//! ```

use std::env;

use pv::units::{Celsius, Irradiance};
use pv::{CellEnv, IvCurve, PvModule};

fn main() {
    let mut args = env::args().skip(1);
    let irradiance: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000.0);
    let temperature: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(25.0);

    if !(0.0..=1500.0).contains(&irradiance) || !(-60.0..=120.0).contains(&temperature) {
        eprintln!("note: ({irradiance} W/m², {temperature} °C) is outside the physical range the model is calibrated for");
    }
    let module = PvModule::bp3180n();
    let env = CellEnv::new(Irradiance::new(irradiance), Celsius::new(temperature));
    let mpp = module.mpp(env);

    println!("BP3180N at G = {irradiance:.0} W/m², T_cell = {temperature:.0} °C");
    // `max(0)` hides the solver's tiny negative residual at zero irradiance
    // (it would print as "-0.00 A").
    println!(
        "  Isc  = {:.2}",
        module.short_circuit_current(env).max(pv::units::Amps::ZERO)
    );
    println!("  Voc  = {:.2}", module.open_circuit_voltage(env));
    println!(
        "  MPP  = {:.2} at {:.2} / {:.2}",
        mpp.power, mpp.voltage, mpp.current
    );

    // A terminal sketch of the P-V curve, 48 columns × 16 rows.
    let curve = IvCurve::sample(&module, env, 48);
    let powers: Vec<f64> = curve.points().iter().map(|p| p.power().get()).collect();
    let peak = powers.iter().cloned().fold(0.0, f64::max).max(1.0);
    println!("\n  P-V curve (columns: 0 → Voc; rows: power up to {peak:.0} W)");
    for row in (1..=16).rev() {
        let threshold = peak * row as f64 / 16.0;
        let line: String = powers
            .iter()
            .map(|&p| if p >= threshold { '█' } else { ' ' })
            .collect();
        println!("  |{line}");
    }
    println!("  +{}", "-".repeat(49));
}
