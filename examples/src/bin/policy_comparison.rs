//! Policy comparison: run the same day under every power-management scheme
//! of the paper's Table 6 plus the battery bounds, and print the scoreboard.
//!
//! ```text
//! cargo run -p examples --bin policy_comparison -- CO Apr ML2
//! ```

use std::env;
use std::process::ExitCode;

use pv::units::Watts;
use pv::PvArray;
use solarcore::engine::phase_seed;
use solarcore::{BatterySystem, CoreError, DaySimulation, Policy};
use solarenv::{EnvTrace, Season, Site};
use workloads::Mix;

fn main() -> Result<ExitCode, CoreError> {
    let mut args = env::args().skip(1);
    let site_code = args.next().unwrap_or_else(|| "AZ".into());
    let season_name = args.next().unwrap_or_else(|| "Jan".into());
    let mix_name = args.next().unwrap_or_else(|| "HM2".into());

    let (Some(site), Some(season), Some(mix)) = (
        Site::all().into_iter().find(|s| s.code() == site_code),
        Season::ALL
            .iter()
            .copied()
            .find(|s| s.to_string() == season_name),
        Mix::by_name(&mix_name),
    ) else {
        eprintln!("usage: policy_comparison [site] [season] [mix]");
        return Ok(ExitCode::FAILURE);
    };

    println!(
        "Policy comparison — {} / {season} / {} (normalized to Battery-L)",
        site.name(),
        mix.name()
    );

    // Battery baselines (Table 3 bounds) on the same trace and phases.
    let array = PvArray::solarcore_default();
    let trace = EnvTrace::generate(&site, season, 0);
    let seed = phase_seed(&site, season, 0);
    let lower = BatterySystem::lower_bound().simulate_day(&array, &trace, &mix, seed)?;
    let upper = BatterySystem::upper_bound().simulate_day(&array, &trace, &mix, seed)?;

    let policies = [
        Policy::FixedPower(Watts::new(75.0)),
        Policy::MpptIc,
        Policy::MpptRr,
        Policy::MpptOpt,
    ];
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "policy", "energy (Wh)", "util (%)", "PTP (norm)", "error (%)"
    );
    for policy in policies {
        let r = DaySimulation::builder()
            .site(site.clone())
            .season(season)
            .mix(mix.clone())
            .policy(policy)
            .build()?
            .run()?;
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>12.2} {:>10.1}",
            policy.to_string(),
            r.energy_drawn().get(),
            100.0 * r.utilization(),
            r.solar_instructions() / lower.instructions,
            100.0 * r.mean_tracking_error()
        );
    }
    println!(
        "{:<16} {:>12.1} {:>12.1} {:>12.2} {:>10}",
        "Battery-L",
        lower.stored.get(),
        100.0 * lower.utilization(),
        1.0,
        "-"
    );
    println!(
        "{:<16} {:>12.1} {:>12.1} {:>12.2} {:>10}",
        "Battery-U",
        upper.stored.get(),
        100.0 * upper.utilization(),
        upper.instructions / lower.instructions,
        "-"
    );
    Ok(ExitCode::SUCCESS)
}
