//! Runnable examples for the SolarCore reproduction.
//!
//! Each binary exercises the public API on a realistic scenario:
//!
//! * `quickstart` — one simulated SolarCore day, headline metrics;
//! * `pv_explorer` — I-V / P-V characteristics at arbitrary (G, T);
//! * `mppt_day_trace` — terminal sketch of budget vs drawn power (Figs 13/14);
//! * `policy_comparison` — Table 6 policies + battery bounds on one day;
//! * `site_planner` — rank the four sites for a green-compute deployment.
//!
//! Run with `cargo run -p examples --bin <name> [-- args]`.
