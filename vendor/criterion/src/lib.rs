//! Offline stub of the `criterion` benchmark harness.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! benchmark groups and `black_box` so `[[bench]]` targets compile and run
//! without the real statistics engine. Each benchmark is timed with a
//! simple warmup + fixed-iteration loop and reported as mean ns/iter on
//! stdout — adequate for relative, same-machine comparisons.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    measured_ns: f64,
    iters: u64,
}

/// Batch-size hint for [`Bencher::iter_batched`]; the stub only uses it to
/// mirror criterion's signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup cost.
    SmallInput,
    /// Large per-iteration setup cost.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

impl Bencher {
    /// Times `routine` with a fresh `setup()` value per call, excluding the
    /// setup cost from the measurement as well as the stub can manage
    /// (setup runs outside the timed section).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Calibrate on one timed call.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(200).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.measured_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `f` over a warmup pass and a measurement pass.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + iteration-count calibration: aim for ~0.2 s measurement.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(200).as_nanos() / once.as_nanos())
            .clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.measured_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, name.as_ref()), &b);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

fn report(name: &str, b: &Bencher) {
    println!(
        "bench {name:<40} {:>14.1} ns/iter  ({} iters)",
        b.measured_ns, b.iters
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Benchmark group `", stringify!($group), "`.")]
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("one", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }
}
