//! Offline stub of the `criterion` benchmark harness.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! benchmark groups and `black_box` so `[[bench]]` targets compile and run
//! without the real statistics engine. Each benchmark is timed with a
//! warmup/calibration pass followed by several fixed-iteration samples and
//! reported as the **median** ns/iter — robust to one-off scheduler noise
//! and adequate for relative, same-machine comparisons.
//!
//! Two environment variables drive the harness (read per benchmark, so a
//! parent process can set them for `cargo bench`):
//!
//! * `SOLARCORE_BENCH_JSON=<path>` — append one JSON line per benchmark:
//!   `{"name":…,"median_ns":…,"iters":…,"samples":…}`. `cargo xtask bench`
//!   collects these into `BENCH_pr3.json`.
//! * `SOLARCORE_BENCH_SMOKE=1` — reduced sample count and measurement
//!   time, for CI smoke runs where only "runs without panicking and emits
//!   well-formed numbers" is asserted.

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// True when `SOLARCORE_BENCH_SMOKE` requests a reduced smoke run.
fn smoke_mode() -> bool {
    std::env::var_os("SOLARCORE_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Timed samples per benchmark (median is reported).
fn sample_count() -> usize {
    if smoke_mode() {
        3
    } else {
        7
    }
}

/// Wall-clock budget per sample.
fn sample_time() -> Duration {
    if smoke_mode() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(100)
    }
}

/// Median of a small sample vector (mean of the middle pair when even).
fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Per-iteration timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    median_ns: f64,
    iters: u64,
    samples: usize,
}

/// Batch-size hint for [`Bencher::iter_batched`]; the stub only uses it to
/// mirror criterion's signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup cost.
    SmallInput,
    /// Large per-iteration setup cost.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

impl Bencher {
    /// Times `routine` with a fresh `setup()` value per call, excluding the
    /// setup cost from the measurement as well as the stub can manage
    /// (setup runs outside the timed section).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Warmup + calibration on one timed call.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (sample_time().as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(sample_count());
        for _ in 0..sample_count() {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            samples.push(total.as_nanos() as f64 / iters as f64);
        }
        self.median_ns = median(&mut samples);
        self.iters = iters;
        self.samples = samples.len();
    }

    /// Times `f` over a warmup pass and several fixed-iteration samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + iteration-count calibration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (sample_time().as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(sample_count());
        for _ in 0..sample_count() {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.median_ns = median(&mut samples);
        self.iters = iters;
        self.samples = samples.len();
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, name.as_ref()), &b);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Minimal JSON string escaping for benchmark names.
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report(name: &str, b: &Bencher) {
    println!(
        "bench {name:<44} {:>14.1} ns/iter  ({} iters x {} samples)",
        b.median_ns, b.iters, b.samples
    );
    if let Some(path) = std::env::var_os("SOLARCORE_BENCH_JSON") {
        let line = format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.3},\"iters\":{},\"samples\":{}}}\n",
            escape_json(name),
            b.median_ns,
            b.iters,
            b.samples
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(err) = written {
            eprintln!("criterion stub: cannot append to {path:?}: {err}");
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Benchmark group `", stringify!($group), "`.")]
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("one", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn json_names_are_escaped() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }
}
