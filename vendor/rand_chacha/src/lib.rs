//! Offline stub of `rand_chacha`: a deterministic, seedable generator
//! exposed under the [`ChaCha8Rng`] name the workspace imports.
//!
//! The state transition is xoshiro256++ (Blackman/Vigna) with a splitmix64
//! seed expansion — excellent statistical quality for simulation use, but
//! **not** bit-compatible with the real ChaCha8 stream cipher. Workspace
//! code depends only on determinism per seed, which this provides.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG standing in for `rand_chacha::ChaCha8Rng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_forks_identical_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
