//! Offline stub of `serde_json`: renders the `serde` stub's `Value` tree
//! as JSON text, plus a small recursive-descent reader ([`from_str`]) so
//! tests can load the committed `results/*.json` artifacts back into a
//! [`Value`] tree.

use std::fmt;

use serde::Serialize;
pub use serde::Value;

/// JSON serialization error (currently unreachable: non-finite floats are
/// written as `null` instead of erroring, which is what the experiment
/// harness wants for optional series points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Reserved for future use; the stub currently always succeeds.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Reserved for future use; the stub currently always succeeds.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                ('[', ']'),
                items.iter(),
                indent,
                depth,
                |out, v, ind, d| {
                    write_value(out, v, ind, d);
                },
            );
        }
        Value::Object(entries) => {
            write_seq(
                out,
                ('{', '}'),
                entries.iter(),
                indent,
                depth,
                |out, (k, v), ind, d| {
                    write_string(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, ind, d);
                },
            );
        }
    }
}

fn write_seq<'a, I, T, F>(
    out: &mut String,
    (open, close): (char, char),
    items: I,
    indent: Option<&str>,
    depth: usize,
    f: F,
) where
    I: ExactSizeIterator<Item = &'a T>,
    T: 'a,
    F: Fn(&mut String, &T, Option<&str>, usize),
{
    let empty = items.len() == 0;
    out.push(open);
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            out.push_str(&pad.repeat(depth + 1));
        }
        f(out, item, indent, depth + 1);
    }
    if let Some(pad) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&pad.repeat(depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional part so round-trips stay typed as floats.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Supports the subset the workspace writes: objects, arrays, strings
/// (with `\uXXXX` escapes), numbers, booleans and `null`.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing non-whitespace.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_owned())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_owned()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer
                            // half; map lone surrogates to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".to_owned()))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error("unterminated string".to_owned()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_owned()))?;
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    #[allow(clippy::cast_sign_loss)] // checked non-negative
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                });
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Str("x\"y".into())),
            (
                "c".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":"x\"y","c":[1.5,null]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(-2)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    -2\n  ]\n}");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<u32>::new()).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
            ("n".into(), Value::Int(-3)),
            ("u".into(), Value::UInt(7)),
            ("ok".into(), Value::Bool(true)),
        ]);
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn parser_reads_scientific_notation_and_indexing_works() {
        let v = from_str(r#"{"rows":[["AZ",[0.08521867475698039,1e-3]]]}"#).unwrap();
        let row = &v["rows"][0];
        assert_eq!(row[0].as_str(), Some("AZ"));
        let cell = row[1][0].as_f64().unwrap();
        assert!((cell - 0.08521867475698039).abs() < 1e-18);
        assert!((row[1][1].as_f64().unwrap() - 1e-3).abs() < 1e-12);
        // Missing keys index to Null instead of panicking.
        assert_eq!(v["absent"][9], Value::Null);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,2").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        assert_eq!(
            from_str("\"\\u0041\\u00e9\"").unwrap(),
            Value::Str("Aé".into())
        );
    }
}
