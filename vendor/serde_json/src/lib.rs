//! Offline stub of `serde_json`: renders the `serde` stub's `Value` tree
//! as JSON text. Only the writer half is implemented (the workspace never
//! parses JSON).

use std::fmt;

use serde::{Serialize, Value};

/// JSON serialization error (currently unreachable: non-finite floats are
/// written as `null` instead of erroring, which is what the experiment
/// harness wants for optional series points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Reserved for future use; the stub currently always succeeds.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Reserved for future use; the stub currently always succeeds.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, ('[', ']'), items.iter(), indent, depth, |out, v, ind, d| {
                write_value(out, v, ind, d);
            });
        }
        Value::Object(entries) => {
            write_seq(
                out,
                ('{', '}'),
                entries.iter(),
                indent,
                depth,
                |out, (k, v), ind, d| {
                    write_string(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, ind, d);
                },
            );
        }
    }
}

fn write_seq<'a, I, T, F>(
    out: &mut String,
    (open, close): (char, char),
    items: I,
    indent: Option<&str>,
    depth: usize,
    f: F,
) where
    I: ExactSizeIterator<Item = &'a T>,
    T: 'a,
    F: Fn(&mut String, &T, Option<&str>, usize),
{
    let empty = items.len() == 0;
    out.push(open);
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            out.push_str(&pad.repeat(depth + 1));
        }
        f(out, item, indent, depth + 1);
    }
    if let Some(pad) = indent {
        if !empty {
            out.push('\n');
            out.push_str(&pad.repeat(depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional part so round-trips stay typed as floats.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Str("x\"y".into())),
            ("c".into(), Value::Array(vec![Value::Float(1.5), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x\"y","c":[1.5,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Int(-2)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    -2\n  ]\n}");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<u32>::new()).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
