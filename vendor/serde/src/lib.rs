//! Offline stub of the `serde` serialization facade.
//!
//! The workspace only serializes result structs to JSON files, so instead
//! of the full `Serializer`-driven data model this stub reduces
//! serialization to one step: [`Serialize::to_value`] produces a [`Value`]
//! tree that `serde_json` (the sibling stub) renders. The derive macro
//! (`#[derive(Serialize)]`, re-exported from `serde_derive` under the
//! `derive` feature) supports named-field structs and fieldless enums —
//! exactly the shapes the workspace derives.

/// A JSON-shaped value tree, the intermediate form of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key/value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string slice, if this is [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric value widened to `f64`, for any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            #[allow(clippy::cast_precision_loss)] // JSON numbers round-trip via f64
            Value::Int(n) => Some(*n as f64),
            #[allow(clippy::cast_precision_loss)]
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The element list, if this is [`Value::Array`].
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The unsigned integer, if this is a non-negative integer variant.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The boolean, if this is [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up an object field by key (first match, like `serde_json`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Shared `Null` for the infallible `Index` impls below.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; missing keys and non-objects yield `Null`,
    /// mirroring `serde_json`'s panic-free indexing.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; out-of-range and non-arrays yield `Null`.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the stub's serialization value tree.
    fn to_value(&self) -> Value;
}

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64);
ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![1u32, 2, 3].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
    }
}
