//! Offline stub of `serde_derive`: `#[derive(Serialize)]` for named-field
//! structs and fieldless enums, hand-parsed from the token stream (the
//! offline build has no `syn`/`quote`).
//!
//! Generated code targets the sibling `serde` stub's one-method
//! `Serialize { fn to_value(&self) -> Value }` trait.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (stub flavour) for a named-field struct or a
/// fieldless enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive stub: emit failed: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error! tokens always parse")
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde_derive stub does not support generics on `{name}`"
                ))
            }
            Some(_) => i += 1,
            None => return Err(format!("`{name}` has no brace-delimited body")),
        }
    };

    match kind.as_str() {
        "struct" => {
            let fields = parse_named_fields(body)?;
            let mut entries = String::new();
            for f in &fields {
                entries.push_str(&format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                ));
            }
            Ok(format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            ))
        }
        "enum" => {
            let variants = parse_fieldless_variants(body, &name)?;
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                ));
            }
            Ok(format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            ))
        }
        other => Err(format!("cannot derive Serialize for `{other}`")),
    }
}

/// Extracts field names from a named-field struct body, skipping
/// attributes, visibility and types (angle-bracket depth aware).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes (doc comments arrive as #[doc = ...]).
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?} \
                     (tuple structs are unsupported by the serde_derive stub)"
                ))
            }
        }
        // Skip the type: consume until a comma at zero angle-bracket depth.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Extracts variant names from a fieldless enum body.
fn parse_fieldless_variants(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive stub supports only fieldless enums; \
                     `{name}::{variant}` carries data"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip until comma.
                while let Some(tt) = tokens.get(i) {
                    i += 1;
                    if matches!(tt, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}
