//! Test-runner support types for the proptest stub: configuration, the
//! per-test deterministic RNG, and the case-level error type.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (regenerate, don't fail).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// Deterministic case-generation RNG (splitmix64), seeded from the test
/// name so every property has a stable, independent stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named property test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name for a stable cross-platform seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        // Modulo bias is negligible at 128-bit width for test generation.
        ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 32);
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
        assert_eq!(ProptestConfig::with_cases(0).cases, 1);
    }

    #[test]
    fn named_rng_is_deterministic_and_name_sensitive() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
