//! Value-generation strategies for the proptest stub.
//!
//! A [`Strategy`] deterministically generates values from a [`TestRng`].
//! Unlike upstream proptest there is no shrinking tree — `generate`
//! returns the value directly.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty integer range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty inclusive range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical full-domain strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// A full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;

    fn arbitrary() -> Any<f64> {
        Any(std::marker::PhantomData)
    }
}

/// The full-domain strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut r = rng();
        let s = -3.0..7.0_f64;
        for _ in 0..500 {
            let x = s.generate(&mut r);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn inclusive_int_range_hits_both_endpoints() {
        let mut r = rng();
        let s = 0u8..=3;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut r = rng();
        let s = -5i32..5;
        let mut any_neg = false;
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((-5..5).contains(&v));
            any_neg |= v < 0;
        }
        assert!(any_neg);
    }

    #[test]
    fn tuple_and_map_compose() {
        let mut r = rng();
        let s = (0.0..1.0_f64, 10u32..20).prop_map(|(a, b)| a + f64::from(b));
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((10.0..21.0).contains(&v));
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut r = rng();
        assert_eq!(Just(41u8).generate(&mut r), 41);
    }

    #[test]
    fn any_u64_varies() {
        let mut r = rng();
        let s = any::<u64>();
        let a = s.generate(&mut r);
        let b = s.generate(&mut r);
        assert_ne!(a, b);
    }
}
