//! Offline stub of the `proptest` property-testing framework.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, range and tuple
//! strategies, [`Strategy::prop_map`], `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`
//! macros. Differences from upstream: no shrinking (a failing case reports
//! its seed-derived inputs directly) and no persistence of regression
//! files. Case generation is deterministic per test name, so failures
//! reproduce across runs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests over strategy-generated inputs.
///
/// Supported grammar (the workspace's usage):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop_name(x in 0.0..1.0_f64, n in 0u32..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(20);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match case {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property `{}` failed at case {}: {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
            assert!(
                accepted > 0,
                "proptest property `{}` rejected every generated input (prop_assume too strict?)",
                stringify!($name)
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current property case with a formatted message unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property-case equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Property-case inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure)
/// unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5..9.5_f64, n in 3u32..=7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..=7).contains(&n));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0.0..1.0_f64, 0u8..=u8::MAX).prop_map(|(a, b)| a + f64::from(b))) {
            prop_assert!((0.0..257.0).contains(&pair));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }

        #[test]
        fn any_u64_covers_wide_range(x in any::<u64>()) {
            // Smoke: generation works; nothing meaningful to assert per-case.
            let _ = x;
            prop_assert!(true);
        }

        #[test]
        fn early_ok_return_is_accepted(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn inner(x in 0.0..1.0_f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        use crate::strategy::Strategy;
        let s = 0.0..100.0_f64;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
