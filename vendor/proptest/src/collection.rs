//! Collection strategies (upstream `proptest::collection`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies (upstream
/// `SizeRange`). Constructed via `From`, so plain `1..200` literals in
/// test files infer `usize` exactly as they do with upstream proptest.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let width = (self.hi_inclusive - self.lo) as u128 + 1;
        self.lo + rng.below(width) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        debug_assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// A strategy generating `Vec`s of `element` with a length drawn from
/// `len` (upstream `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_stay_in_range() {
        let mut rng = TestRng::for_test("collection-tests");
        let s = vec(0.0..10.0_f64, 1..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..10.0).contains(x)));
        }
    }

    #[test]
    fn fixed_size_and_inclusive_specs() {
        let mut rng = TestRng::for_test("collection-tests-2");
        assert_eq!(vec(0u8..=1, 7).generate(&mut rng).len(), 7);
        let s = vec(0u8..=1, 2..=3);
        for _ in 0..50 {
            assert!((2..=3).contains(&s.generate(&mut rng).len()));
        }
    }
}
