//! Offline stub of the `rand` crate surface this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a minimal, deterministic re-implementation of the
//! small `rand` API it consumes: [`RngCore`], [`SeedableRng`] and
//! [`Rng::gen`] for `f64`/integer samples. Streams are high-quality
//! (xoshiro-class state transitions) but are **not** bit-compatible with
//! upstream `rand`; all workspace code only relies on seed-determinism and
//! statistical quality, never on exact stream values.

/// A source of 32/64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution of an RNG.
///
/// Floating-point samples are uniform in `[0, 1)`; integers are uniform
/// over their full range.
pub trait SampleStandard {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1) — the upstream convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution (uniform `[0, 1)`
    /// for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak generator is fine for unit-testing the trait plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn mean<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            (0..100).map(|_| rng.gen::<f64>()).sum::<f64>() / 100.0
        }
        let mut rng = Counter(7);
        let m = mean(&mut rng);
        assert!(m > 0.2 && m < 0.8);
    }
}
