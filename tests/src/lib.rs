//! Cross-crate integration tests for the SolarCore reproduction.
//!
//! The tests live in `tests/tests/`:
//!
//! * `end_to_end.rs` — closed-loop day simulations: determinism, physical
//!   invariants (never drawing beyond the budget), ATS behaviour;
//! * `paper_claims.rs` — the paper's qualitative results on a reduced grid;
//! * `properties.rs` — proptest invariants spanning pv + powertrain +
//!   solarcore (tracking convergence, budget allocation, trace bounds).
