//! Explicit replay of the saved proptest regression corpus.
//!
//! Upstream `proptest` re-runs `*.proptest-regressions` seeds before
//! generating novel cases; the vendored offline stub does not persist or
//! read those files, so the corpus next to `properties.rs` would be dead
//! weight unless replayed by hand. Each `cc` line is reproduced here as a
//! plain `#[test]` with the shrunken inputs recorded in the corpus
//! comment, and a meta-test parses the corpus so a newly appended seed
//! fails CI until it gains an explicit replay below.
//!
//! Workflow for a new proptest failure:
//! 1. Append a `cc <hash> # shrinks to <inputs>` line to
//!    `tests/tests/properties.proptest-regressions` (matching upstream's
//!    format, so migrating back to real proptest keeps the corpus).
//! 2. Add a `#[test]` here replaying those inputs through the property
//!    body, and bump the expected count in `corpus_is_fully_replayed`.

use archsim::{MultiCoreChip, VfLevel};
use powertrain::DcDcConverter;
use pv::units::{Celsius, Irradiance};
use pv::{CellEnv, PvArray, PvGenerator};
use solarcore::{ControllerConfig, LoadTuner, Policy, SolarCoreController, TrackingRig};
use workloads::Mix;

/// The property body of `tracking_converges_from_any_start` (from
/// `properties.rs`), replayed for one concrete corpus case.
fn assert_tracking_converges(env: CellEnv, start_ratio: f64, mix_idx: usize) {
    let array = PvArray::solarcore_default();
    let mpp = array.mpp(env).power.get();
    assert!(
        mpp > 30.0,
        "corpus case no longer satisfies the prop_assume"
    );
    let mix = Mix::all().swap_remove(mix_idx);
    let mut chip = MultiCoreChip::new(&mix);
    chip.set_all_levels(VfLevel::lowest());
    let mut converter = DcDcConverter::solarcore_default();
    converter.set_ratio(start_ratio).unwrap();
    let mut tuner = LoadTuner::new(Policy::MpptOpt);
    let mut controller = SolarCoreController::new(ControllerConfig::paper_defaults()).unwrap();
    let report = controller
        .track(&mut TrackingRig {
            array: &array,
            env,
            converter: &mut converter,
            chip: &mut chip,
            tuner: &mut tuner,
        })
        .unwrap();
    let chip_max = {
        let mut probe = MultiCoreChip::new(&mix);
        probe.set_all_levels(VfLevel::highest());
        probe.total_power().get()
    };
    let target = mpp.min(chip_max * 1.05);
    assert!(
        report.final_output_power > 0.75 * target * converter.efficiency(),
        "tracked {:.1} W of target {target:.1} W (mpp {mpp:.1}, chip max {chip_max:.1})",
        report.final_output_power
    );
    assert!(report.final_output_power <= mpp + 1e-6);
}

/// Corpus seed `2b6d281c…`: mid-irradiance warm day, H1 mix, a start
/// ratio near the middle of the converter's range.
#[test]
fn corpus_2b6d281c_tracking_converges() {
    assert_tracking_converges(
        CellEnv::new(
            Irradiance::new(907.7953093411271),
            Celsius::new(24.74973744268775),
        ),
        3.9251149362726583,
        0,
    );
}

/// Corpus seed `71037942…`: half irradiance at freezing temperature, M1
/// mix, a start ratio at the low edge of the legal range.
#[test]
fn corpus_71037942_tracking_converges() {
    assert_tracking_converges(
        CellEnv::new(Irradiance::new(498.5999066709034), Celsius::new(0.0)),
        1.6934587830487686,
        2,
    );
}

/// Every `cc` line in the corpus must have an explicit replay above: this
/// count assertion fails the build when a new seed is appended without
/// one, enforcing the workflow in the module docs.
#[test]
fn corpus_is_fully_replayed() {
    const REPLAYED: usize = 2;
    let corpus = include_str!("properties.proptest-regressions");
    let seeds: Vec<&str> = corpus
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("cc "))
        .collect();
    assert_eq!(
        seeds.len(),
        REPLAYED,
        "corpus has {} seed(s) but {REPLAYED} are replayed; \
         add a #[test] replaying the new seed's inputs",
        seeds.len()
    );
    // Each corpus line records its shrunken inputs, which is what the
    // replays above encode; make sure the comments are still there.
    for line in &seeds {
        assert!(
            line.contains("# shrinks to"),
            "corpus line lost its shrunken-input comment: {line}"
        );
    }
}
