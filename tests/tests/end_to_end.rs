//! End-to-end integration tests: the full weather → PV → power train →
//! controller → chip loop.

use powertrain::PowerSource;
use pv::units::Watts;
use pv::PvArray;
use pv::PvGenerator;
use solarcore::{DayResult, DaySimulation, Policy};
use solarenv::{EnvTrace, Season, Site};
use workloads::Mix;

fn run_day(site: Site, season: Season, mix: Mix, policy: Policy) -> DayResult {
    DaySimulation::builder()
        .site(site)
        .season(season)
        .mix(mix)
        .policy(policy)
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn full_day_is_deterministic_across_runs() {
    let a = run_day(Site::golden_co(), Season::Oct, Mix::m2(), Policy::MpptOpt);
    let b = run_day(Site::golden_co(), Season::Oct, Mix::m2(), Policy::MpptOpt);
    assert_eq!(a, b);
}

#[test]
fn no_minute_draws_more_than_the_oracle_budget() {
    for policy in [Policy::MpptOpt, Policy::MpptRr, Policy::MpptIc] {
        let result = run_day(Site::elizabeth_city_nc(), Season::Apr, Mix::h2(), policy);
        for r in result.records() {
            assert!(
                r.drawn.get() <= r.budget.get() + 0.5,
                "{policy:?} minute {}: drew {} of {}",
                r.minute,
                r.drawn,
                r.budget
            );
        }
    }
}

#[test]
fn energy_accounting_is_consistent() {
    let result = run_day(Site::phoenix_az(), Season::Apr, Mix::l2(), Policy::MpptOpt);
    // Summed records equal the aggregate accessors.
    let drawn: f64 = result.records().iter().map(|r| r.drawn.get() / 60.0).sum();
    assert!((drawn - result.energy_drawn().get()).abs() < 1e-9);
    let avail: f64 = result.records().iter().map(|r| r.budget.get() / 60.0).sum();
    assert!((avail - result.energy_available().get()).abs() < 1e-9);
    assert!(result.utilization() <= 1.0);
    // The oracle budget must equal the PV array's MPP trace.
    let array = PvArray::solarcore_default();
    let trace = EnvTrace::generate(&Site::phoenix_az(), Season::Apr, 0);
    for (rec, sample) in result.records().iter().zip(trace.samples()) {
        let mpp = array.mpp(sample.cell_env()).power;
        assert!((rec.budget.get() - mpp.get()).abs() < 1e-9);
    }
}

#[test]
fn ats_separates_solar_and_utility_cleanly() {
    let result = run_day(
        Site::oak_ridge_tn(),
        Season::Oct,
        Mix::h1(),
        Policy::MpptOpt,
    );
    let mut solar_minutes = 0;
    for r in result.records() {
        match r.source {
            PowerSource::Utility => {
                assert_eq!(r.drawn, Watts::ZERO, "utility minutes draw no solar");
                // On utility the chip runs as a conventional CMP at speed.
                assert!(r.chip_power.get() > 50.0, "minute {}", r.minute);
            }
            PowerSource::Solar => {
                solar_minutes += 1;
            }
        }
    }
    assert_eq!(solar_minutes, result.effective_minutes());
    // Oak Ridge in October has genuine utility fallback periods.
    assert!(result.effective_fraction() < 1.0);
    assert!(result.effective_fraction() > 0.3);
}

#[test]
fn instructions_flow_during_both_sources() {
    let result = run_day(Site::golden_co(), Season::Jan, Mix::ml1(), Policy::MpptRr);
    assert!(result.total_instructions() > result.solar_instructions());
    assert!(result.solar_instructions() > 0.0);
    for r in result.records() {
        assert!(r.instructions > 0.0, "the chip never stalls completely");
    }
}

#[test]
fn fixed_power_transfers_at_its_budget_threshold() {
    let budget = Watts::new(100.0);
    let result = run_day(
        Site::oak_ridge_tn(),
        Season::Jan,
        Mix::m1(),
        Policy::FixedPower(budget),
    );
    for r in result.records() {
        if r.source == PowerSource::Solar {
            // Only operates when the budget threshold was reached
            // (hysteresis allows brief dips below).
            assert!(
                r.budget.get() >= budget.get() - 5.0,
                "minute {}: solar at {} available",
                r.minute,
                r.budget
            );
            assert!(r.drawn <= budget + Watts::new(1e-9));
        }
    }
    // A 100 W threshold in an Oak Ridge winter means little solar operation.
    assert!(result.effective_fraction() < 0.5);
}

#[test]
fn higher_insolation_site_harvests_more() {
    // Same-season AZ-vs-TN margins are narrow enough that Phoenix's summer
    // cell-temperature derating can flip the ordering on an individual
    // weather realization; compare across seasons where insolation dominates.
    let az = run_day(Site::phoenix_az(), Season::Jul, Mix::hm1(), Policy::MpptOpt);
    let tn = run_day(
        Site::oak_ridge_tn(),
        Season::Jan,
        Mix::hm1(),
        Policy::MpptOpt,
    );
    assert!(az.energy_drawn() > tn.energy_drawn());
    assert!(az.solar_instructions() > tn.solar_instructions());
}

#[test]
fn all_ten_mixes_complete_a_day() {
    for mix in Mix::all() {
        let result = run_day(
            Site::phoenix_az(),
            Season::Jan,
            mix.clone(),
            Policy::MpptOpt,
        );
        assert_eq!(result.records().len(), 601, "{}", mix.name());
        assert!(result.utilization() > 0.5, "{}", mix.name());
    }
}
