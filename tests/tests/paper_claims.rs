//! The paper's qualitative evaluation results, checked on a reduced grid
//! (2 sites × 2 seasons × 3 mixes): policy ordering, battery bracketing,
//! fixed-budget inferiority, utilization scale, and tracking error ranges.

use pv::units::Watts;
use pv::PvArray;
use solarcore::engine::phase_seed;
use solarcore::metrics::mean;
use solarcore::{BatterySystem, DaySimulation, Policy};
use solarenv::{EnvTrace, Season, Site};
use workloads::Mix;

struct Cell {
    ic: f64,
    rr: f64,
    opt: f64,
    battery_u: f64,
    battery_l: f64,
    opt_util: f64,
    opt_err: f64,
}

fn grid() -> Vec<Cell> {
    let array = PvArray::solarcore_default();
    let mut cells = Vec::new();
    for site in [Site::phoenix_az(), Site::oak_ridge_tn()] {
        for season in [Season::Jan, Season::Jul] {
            for mix in [Mix::h1(), Mix::hm2(), Mix::l1()] {
                let run = |policy: Policy| {
                    DaySimulation::builder()
                        .site(site.clone())
                        .season(season)
                        .mix(mix.clone())
                        .policy(policy)
                        .build()
                        .unwrap()
                        .run()
                        .unwrap()
                };
                let ic = run(Policy::MpptIc);
                let rr = run(Policy::MpptRr);
                let opt = run(Policy::MpptOpt);
                let trace = EnvTrace::generate(&site, season, 0);
                let seed = phase_seed(&site, season, 0);
                let bu = BatterySystem::upper_bound()
                    .simulate_day(&array, &trace, &mix, seed)
                    .unwrap();
                let bl = BatterySystem::lower_bound()
                    .simulate_day(&array, &trace, &mix, seed)
                    .unwrap();
                cells.push(Cell {
                    ic: ic.solar_instructions() / bl.instructions,
                    rr: rr.solar_instructions() / bl.instructions,
                    opt: opt.solar_instructions() / bl.instructions,
                    battery_u: bu.instructions / bl.instructions,
                    battery_l: 1.0,
                    opt_util: opt.utilization(),
                    opt_err: opt.mean_tracking_error(),
                });
            }
        }
    }
    cells
}

#[test]
fn policy_ordering_battery_bracketing_and_utilization() {
    let cells = grid();
    let ic = mean(&cells.iter().map(|c| c.ic).collect::<Vec<_>>());
    let rr = mean(&cells.iter().map(|c| c.rr).collect::<Vec<_>>());
    let opt = mean(&cells.iter().map(|c| c.opt).collect::<Vec<_>>());
    let bu = mean(&cells.iter().map(|c| c.battery_u).collect::<Vec<_>>());
    let bl = mean(&cells.iter().map(|c| c.battery_l).collect::<Vec<_>>());

    // Section 6.4's ordering: IC < RR ≤ Opt, Battery-U ≈ Opt, everything
    // above Battery-L.
    assert!(ic < rr, "IC {ic:.3} < RR {rr:.3}");
    assert!(rr <= opt + 1e-9, "RR {rr:.3} <= Opt {opt:.3}");
    assert!(opt > bl, "Opt {opt:.3} must beat Battery-L");
    assert!(
        (opt - bu).abs() / bu < 0.10,
        "Opt {opt:.3} within 10 % of Battery-U {bu:.3} (paper: <1 %)"
    );
    assert!(
        (bu - 1.136).abs() < 0.02,
        "Battery-U/L ratio fixed by Table 3"
    );

    // Section 6.3: average utilization at the ~82 % scale.
    let util = mean(&cells.iter().map(|c| c.opt_util).collect::<Vec<_>>());
    assert!(
        (0.72..=0.95).contains(&util),
        "mean utilization {util:.3} out of the paper's band"
    );

    // Table 7: tracking errors are single-digit to low-double-digit percent.
    for c in &cells {
        assert!(
            (0.005..0.30).contains(&c.opt_err),
            "tracking error {:.3} outside Table 7 range",
            c.opt_err
        );
    }
}

#[test]
fn solarcore_dominates_every_fixed_budget() {
    // Section 6.2: even the best fixed budget stays well below SolarCore
    // (the paper reports ≤ 70 % ⇒ a ≥ 43 % win).
    let site = Site::phoenix_az();
    let season = Season::Apr;
    let mix = Mix::hm2();
    let opt = DaySimulation::builder()
        .site(site.clone())
        .season(season)
        .mix(mix.clone())
        .policy(Policy::MpptOpt)
        .build()
        .unwrap()
        .run()
        .unwrap();
    for budget in [25.0, 50.0, 75.0, 100.0, 125.0] {
        let fixed = DaySimulation::builder()
            .site(site.clone())
            .season(season)
            .mix(mix.clone())
            .policy(Policy::FixedPower(Watts::new(budget)))
            .build()
            .unwrap()
            .run()
            .unwrap();
        let energy_ratio = fixed.energy_drawn().get() / opt.energy_drawn().get();
        let ptp_ratio = fixed.solar_instructions() / opt.solar_instructions();
        assert!(
            energy_ratio < 0.9,
            "{budget} W budget recovered {energy_ratio:.2} of SolarCore energy"
        );
        assert!(
            ptp_ratio < 0.9,
            "{budget} W budget recovered {ptp_ratio:.2} of SolarCore PTP"
        );
    }
}

#[test]
fn irregular_weather_degrades_tracking_accuracy() {
    // Figures 13 vs 14: the July monsoon pattern tracks worse than January.
    let site = Site::phoenix_az();
    let error = |season: Season| {
        DaySimulation::builder()
            .site(site.clone())
            .season(season)
            .mix(Mix::h1())
            .policy(Policy::MpptOpt)
            .build()
            .unwrap()
            .run()
            .unwrap()
            .mean_tracking_error()
    };
    assert!(error(Season::Jul) > error(Season::Jan) * 0.9);
}

#[test]
fn homogeneous_high_epi_has_the_largest_power_ripple() {
    // Section 6.1: H1 shows large ripples; low-EPI and heterogeneous mixes
    // are smooth.
    let ripple = |mix: Mix| {
        let r = DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(mix)
            .policy(Policy::MpptOpt)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let gaps: Vec<f64> = r
            .records()
            .iter()
            .filter(|m| m.drawn.get() > 0.0)
            .map(|m| m.chip_power.get())
            .collect();
        let mu = mean(&gaps);
        (gaps.iter().map(|g| (g - mu).powi(2)).sum::<f64>() / gaps.len() as f64).sqrt()
    };
    let h1 = ripple(Mix::h1());
    let l1 = ripple(Mix::l1());
    assert!(h1 > l1, "H1 ripple {h1:.2} vs L1 {l1:.2}");
}
