//! Property-based invariants spanning pv + powertrain + archsim + solarcore.

use proptest::prelude::*;

use archsim::{MultiCoreChip, VfLevel};
use powertrain::{solve_operating_point, DcDcConverter, LoadModel};
use pv::units::{Celsius, Irradiance, Ohms, Volts, Watts};
use pv::{CellEnv, PvArray, PvGenerator, PvModule};
use solarcore::engine::allocate_budget;
use solarcore::{ControllerConfig, LoadTuner, Policy, SolarCoreController, TrackingRig};
use workloads::Mix;

fn arb_env() -> impl Strategy<Value = CellEnv> {
    (100.0..1100.0_f64, -5.0..75.0_f64)
        .prop_map(|(g, t)| CellEnv::new(Irradiance::new(g), Celsius::new(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The module's I-V curve is non-increasing and the MPP dominates a
    /// sampled sweep under any physical environment.
    #[test]
    fn iv_curve_monotone_and_mpp_dominant(env in arb_env()) {
        let module = PvModule::bp3180n();
        let voc = module.open_circuit_voltage(env).get();
        prop_assume!(voc > 1.0);
        let mpp = module.mpp(env);
        let mut prev = f64::INFINITY;
        for step in 0..=40 {
            let v = Volts::new(voc * step as f64 / 40.0);
            let i = module.current_at(env, v).unwrap().get();
            prop_assert!(i <= prev + 1e-9);
            prev = i;
            let p = v.get() * i;
            prop_assert!(p <= mpp.power.get() + 1e-6);
        }
    }

    /// The operating-point solver lands on both the PV curve and the load
    /// line for any reasonable (k, R) combination.
    #[test]
    fn operating_point_is_consistent(
        env in arb_env(),
        k in 1.0..6.0_f64,
        r_load in 0.5..20.0_f64,
    ) {
        let array = PvArray::solarcore_default();
        let mut converter = DcDcConverter::solarcore_default();
        converter.set_ratio(k).unwrap();
        let op = solve_operating_point(&array, env, &converter, &LoadModel::Resistance(Ohms::new(r_load)));
        let i_pv = array.current_at(env, op.panel_voltage).unwrap().get();
        prop_assert!((i_pv - op.panel_current.get()).abs() < 1e-4);
        let r_panel = converter.reflected_resistance(Ohms::new(r_load)).get();
        prop_assert!((op.panel_current.get() - op.panel_voltage.get() / r_panel).abs() < 1e-4);
        // Power never exceeds the MPP oracle.
        prop_assert!(op.panel_power().get() <= array.mpp(env).power.get() + 1e-6);
    }

    /// One full tracking invocation converges close to the MPP from any
    /// starting ratio, for any mix, under any daylight environment.
    #[test]
    fn tracking_converges_from_any_start(
        env in arb_env(),
        start_ratio in 1.5..6.0_f64,
        mix_idx in 0usize..10,
    ) {
        let array = PvArray::solarcore_default();
        let mpp = array.mpp(env).power.get();
        prop_assume!(mpp > 30.0); // enough to power the floor configuration
        let mix = Mix::all().swap_remove(mix_idx);
        let mut chip = MultiCoreChip::new(&mix);
        chip.set_all_levels(VfLevel::lowest());
        let mut converter = DcDcConverter::solarcore_default();
        converter.set_ratio(start_ratio).unwrap();
        let mut tuner = LoadTuner::new(Policy::MpptOpt);
        let mut controller = SolarCoreController::new(ControllerConfig::paper_defaults()).unwrap();
        let report = controller.track(&mut TrackingRig {
            array: &array,
            env,
            converter: &mut converter,
            chip: &mut chip,
            tuner: &mut tuner,
        }).unwrap();
        // Within 20 % of the MPP unless the chip itself saturates below it.
        let chip_max = {
            let mut probe = MultiCoreChip::new(&mix);
            probe.set_all_levels(VfLevel::highest());
            probe.total_power().get()
        };
        let target = mpp.min(chip_max * 1.05);
        prop_assert!(
            report.final_output_power > 0.75 * target * converter.efficiency(),
            "tracked {:.1} W of target {target:.1} W (mpp {mpp:.1}, chip max {chip_max:.1})",
            report.final_output_power
        );
        prop_assert!(report.final_output_power <= mpp + 1e-6);
    }

    /// The fixed-budget greedy fill never exceeds its budget and never
    /// leaves a whole V/F step of headroom unused.
    #[test]
    fn budget_allocation_is_tight(budget in 10.0..160.0_f64, mix_idx in 0usize..10) {
        let mix = Mix::all().swap_remove(mix_idx);
        let mut chip = MultiCoreChip::new(&mix);
        allocate_budget(&mut chip, Watts::new(budget)).unwrap();
        let used = chip.total_power().get();
        prop_assert!(used <= budget + 1e-9, "used {used:.1} of {budget:.1}");
        // Tightness: no single remaining upgrade fits.
        for core in chip.cores() {
            if core.is_gated() {
                continue;
            }
            if let Some(next) = core.level().faster() {
                let would_be = chip.power_if(core.id(), next).unwrap().get();
                prop_assert!(
                    would_be > budget,
                    "core {} could still step up ({would_be:.1} <= {budget:.1})",
                    core.id()
                );
            }
        }
    }

    /// The runtime sanitizer stays silent on valid traces: a full simulated
    /// day at any site/season/mix keeps every record inside the budget
    /// invariant, so re-asserting it after the fact never trips.
    #[test]
    fn budget_conservation_never_trips_on_valid_days(
        site_idx in 0usize..4,
        season_idx in 0usize..4,
        mix_idx in 0usize..10,
    ) {
        use solarcore::{invariants, DaySimulation};
        use solarenv::{Season, Site};
        let site = Site::all().swap_remove(site_idx);
        let season = Season::ALL[season_idx];
        let mix = Mix::all().swap_remove(mix_idx);
        let result = DaySimulation::builder()
            .site(site)
            .season(season)
            .mix(mix)
            .policy(Policy::MpptOpt)
            .build()
            .unwrap()
            .run()
            .unwrap();
        for record in result.records() {
            invariants::assert_power("property replay", record.budget);
            invariants::assert_budget("property replay", record.drawn, record.budget);
        }
    }

    /// Battery-system harvest scales exactly with the derating factor.
    #[test]
    fn battery_harvest_scales_with_derating(d1 in 0.3..0.9_f64) {
        use solarcore::BatterySystem;
        use solarenv::{EnvTrace, Season, Site};
        let array = PvArray::solarcore_default();
        let trace = EnvTrace::generate(&Site::golden_co(), Season::Apr, 0);
        let a = BatterySystem::with_derating(d1).simulate_day(&array, &trace, &Mix::l1(), 1).unwrap();
        let b = BatterySystem::with_derating(d1 / 2.0).simulate_day(&array, &trace, &Mix::l1(), 1).unwrap();
        prop_assert!((a.stored.get() / b.stored.get() - 2.0).abs() < 1e-9);
        prop_assert!(a.instructions >= b.instructions);
    }
}
