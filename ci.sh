#!/usr/bin/env sh
# Full local CI gate, in order: invariant lints (cargo xtask lint),
# documentation cross-references (cargo xtask docs: every §N pointer
# resolves to a DESIGN.md heading, every committed results/*.json is
# catalogued in EXPERIMENTS.md, every crate has a README crate-map row),
# clippy -D warnings, static analysis (cargo xtask analyze: dimensional /
# determinism / exhaustiveness passes), dataflow analysis (cargo xtask
# flow: interval/range proofs over the sanitizer sites — sharpened by the
# interprocedural summaries from the call graph — with a *ratchet* on the
# proven-checks ratio: it may never drop below the baseline recorded in
# the committed results/flow_report.json, and `cargo xtask flow --bless`
# is the only way to advance it; plus telemetry schema conformance +
# dead-schema audit and dropped-Result hygiene), interprocedural
# call-graph analysis (cargo xtask graph: derived function summaries
# cross-checked against every hand-written seed contract, race-freedom
# proofs for every parallel_map worker closure, reachability/dead-pub
# audit; writes results/graph_report.json), rustdoc with
# RUSTDOCFLAGS="-D warnings" (cargo doc --no-deps — the telemetry
# schema in solarcore::schema is rustdoc, so doc rot fails CI), release build,
# workspace tests, the bitwise-reproducibility harness (cargo xtask
# determinism — now also proves traced runs are bit-transparent and
# their JSONL byte-identical, and that a sharded campaign digests
# identically across thread counts and a kill/resume cycle), the chaos
# smoke gate (cargo xtask chaos --smoke), the campaign smoke gate
# (cargo xtask campaign --smoke: four shards, byte-identity across
# 1/N threads and kill+resume, DESIGN.md §18), and a benchmark smoke
# run (cargo xtask bench --smoke) that validates every bench target
# and archives BENCH_pr3.json at the repo root.
#
# The gate order is load-bearing: flow consumes the summaries graph
# derives, so a summary regression surfaces in flow first (as a proven-
# ratio drop against the ratchet); graph then re-checks the same
# workspace independently so a seed/summary mismatch cannot hide behind
# a flow waiver.
# Exits non-zero on the first failing gate. See DESIGN.md §11 for the
# invariant catalog, §12 for the static analysis passes, §13 for the
# caching/benchmark layer, §14 for the observability contract, §15
# for the dataflow passes and their proof/runtime split, §16 for the
# call-graph analysis and the proven-ratio ratchet, §17 for fault
# injection, and §18 for the campaign engine; docs/HANDBOOK.md is the
# operator-facing walkthrough of this gate order.
#
# Note on proptest regressions: the vendored proptest stub does not read
# tests/tests/properties.proptest-regressions. The corpus is replayed as
# explicit tests in tests/tests/regressions.rs (covered by the workspace
# test step); see DESIGN.md §13 for the workflow when adding a new seed.
set -eu
cd "$(dirname "$0")"
exec cargo xtask ci
