#!/usr/bin/env sh
# Full local CI gate, in order: invariant lints (cargo xtask lint),
# clippy -D warnings, static analysis (cargo xtask analyze: dimensional /
# determinism / exhaustiveness passes), dataflow analysis (cargo xtask
# flow: interval/range proofs over the sanitizer sites with a >= 70%
# proven-checks gate, telemetry schema conformance + dead-schema audit,
# and dropped-Result hygiene; writes results/flow_report.json), rustdoc
# with RUSTDOCFLAGS="-D warnings" (cargo doc --no-deps — the telemetry
# schema in solarcore::schema is rustdoc, so doc rot fails CI), release build,
# workspace tests, the bitwise-reproducibility harness (cargo xtask
# determinism — now also proves traced runs are bit-transparent and
# their JSONL byte-identical), and a benchmark smoke run (cargo xtask
# bench --smoke) that validates every bench target and archives
# BENCH_pr3.json at the repo root.
# Exits non-zero on the first failing gate. See DESIGN.md §11 for the
# invariant catalog, §12 for the static analysis passes, §13 for the
# caching/benchmark layer, §14 for the observability contract, and §15
# for the dataflow passes and their proof/runtime split.
#
# Note on proptest regressions: the vendored proptest stub does not read
# tests/tests/properties.proptest-regressions. The corpus is replayed as
# explicit tests in tests/tests/regressions.rs (covered by the workspace
# test step); see DESIGN.md §13 for the workflow when adding a new seed.
set -eu
cd "$(dirname "$0")"
exec cargo xtask ci
