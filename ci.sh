#!/usr/bin/env sh
# Full local CI gate, in order: invariant lints (cargo xtask lint),
# clippy -D warnings, static analysis (cargo xtask analyze: dimensional /
# determinism / exhaustiveness passes), release build, workspace tests,
# and the bitwise-reproducibility harness (cargo xtask determinism).
# Exits non-zero on the first failing gate. See DESIGN.md §11 for the
# invariant catalog and §12 for the static analysis passes.
set -eu
cd "$(dirname "$0")"
exec cargo xtask ci
