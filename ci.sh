#!/usr/bin/env sh
# Full local CI gate: release build, workspace tests, clippy -D warnings,
# and the workspace invariant lints (cargo xtask lint). Exits non-zero on
# the first failing gate. See DESIGN.md §11 for the invariant catalog.
set -eu
cd "$(dirname "$0")"
exec cargo xtask ci
