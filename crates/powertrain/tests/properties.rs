//! Property-based tests of the power-delivery chain.

use proptest::prelude::*;

use powertrain::{
    solve_operating_point, AutomaticTransferSwitch, DcDcConverter, LoadModel, PowerSource,
};
use pv::units::{Celsius, Irradiance, Ohms, Watts};
use pv::{CellEnv, PvArray};

fn arb_env() -> impl Strategy<Value = CellEnv> {
    (50.0..1150.0_f64, -10.0..75.0_f64)
        .prop_map(|(g, t)| CellEnv::new(Irradiance::new(g), Celsius::new(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transformer relations hold at every solved operating point, and
    /// output power is exactly η × panel power.
    #[test]
    fn transformer_relations_hold(
        env in arb_env(),
        k in 1.0..7.0_f64,
        r in 0.3..30.0_f64,
        eta in 0.85..1.0_f64,
    ) {
        let array = PvArray::solarcore_default();
        let converter = DcDcConverter::new(k, 0.8, 8.0, 0.05, eta).unwrap();
        let op = solve_operating_point(&array, env, &converter, &LoadModel::Resistance(Ohms::new(r)));
        prop_assert!((op.output_voltage.get() - op.panel_voltage.get() / k).abs() < 1e-9);
        prop_assert!((op.output_current.get() - eta * k * op.panel_current.get()).abs() < 1e-9);
        prop_assert!(
            (op.output_power().get() - eta * op.panel_power().get()).abs() < 1e-6
        );
    }

    /// A heavier load never raises the panel voltage (the load-line
    /// rotation of Figure 5).
    #[test]
    fn load_monotonicity(env in arb_env(), r in 1.0..20.0_f64) {
        let array = PvArray::solarcore_default();
        let converter = DcDcConverter::solarcore_default();
        let light = solve_operating_point(&array, env, &converter, &LoadModel::Resistance(Ohms::new(r * 1.5)));
        let heavy = solve_operating_point(&array, env, &converter, &LoadModel::Resistance(Ohms::new(r)));
        prop_assert!(heavy.panel_voltage <= light.panel_voltage);
        prop_assert!(heavy.panel_current >= light.panel_current);
    }

    /// The ATS never chatters: over any power sequence, consecutive
    /// transfers require crossing the full hysteresis band.
    #[test]
    fn ats_transfers_respect_hysteresis(
        powers in proptest::collection::vec(0.0..60.0_f64, 1..200),
        threshold in 10.0..40.0_f64,
        hysteresis in 1.0..8.0_f64,
    ) {
        let mut ats = AutomaticTransferSwitch::new(
            Watts::new(threshold),
            Watts::new(hysteresis),
        ).unwrap();
        let mut last_source = ats.source();
        for &p in &powers {
            let source = ats.update(Watts::new(p));
            match (last_source, source) {
                (PowerSource::Utility, PowerSource::Solar) => {
                    prop_assert!(p >= threshold + hysteresis);
                }
                (PowerSource::Solar, PowerSource::Utility) => {
                    prop_assert!(p < threshold);
                }
                _ => {}
            }
            last_source = source;
        }
    }

    /// Ratio nudges saturate exactly at the configured range.
    #[test]
    fn nudges_stay_in_range(steps in proptest::collection::vec(-4i32..=4, 1..100)) {
        let mut converter = DcDcConverter::solarcore_default();
        let (lo, hi) = converter.ratio_range();
        for &s in &steps {
            converter.nudge_ratio(s);
            prop_assert!(converter.ratio() >= lo - 1e-12);
            prop_assert!(converter.ratio() <= hi + 1e-12);
        }
    }
}
