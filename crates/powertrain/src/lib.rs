//! Power-delivery chain for the SolarCore reproduction (Figure 8).
//!
//! The paper's direct-coupled PV system places a tunable DC/DC converter
//! (a PWM "power-conservative matching network") between the solar panel and
//! the multi-core load, an automatic transfer switch (ATS) that falls back
//! to grid utility when solar output is insufficient, and I/V sensors that
//! feed the SolarCore controller.
//!
//! This crate implements all of those pieces plus the electrical
//! operating-point solver: the intersection of the panel's I-V curve with
//! the load line reflected through the converter. The converter follows the
//! paper's ideal-transformer model (`V_out = V_in / k`, `I_out = k · I_in`),
//! extended with an optional conversion efficiency.
//!
//! # Quick start
//!
//! ```
//! use powertrain::{DcDcConverter, LoadModel, solve_operating_point};
//! use pv::{PvArray, CellEnv};
//! use pv::units::Ohms;
//!
//! let array = PvArray::solarcore_default();
//! let dcdc = DcDcConverter::solarcore_default();
//! let load = LoadModel::Resistance(Ohms::new(1.2)); // 12 V / 10 A class load
//! let op = solve_operating_point(&array, CellEnv::stc(), &dcdc, &load);
//! assert!(op.output_power().get() > 0.0);
//! ```
//!
//! ## Panic policy
//!
//! Non-test code in this crate must not panic on recoverable conditions:
//! `unwrap`/`expect`/`panic!` are denied by the gate below and by
//! `cargo xtask lint`; justified sites carry an explicit allow + waiver.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values

pub mod ats;
pub mod converter;
pub mod error;
pub mod opsolve;
pub mod sensors;

pub use ats::{AutomaticTransferSwitch, PowerSource};
pub use converter::DcDcConverter;
pub use error::PowerError;
pub use opsolve::{
    solve_operating_point, solve_operating_point_traced, LoadModel, OperatingPoint, SolveStats,
};
pub use sensors::{FaultedIvSensor, IvSensor};
