//! Tunable DC/DC converter (the "power-conservative matching network").
//!
//! Modeled as the paper does (Section 2.3): an ideal PWM transformer with
//! transfer ratio `k`, `V_out = V_in / k` and `I_out = k · I_in`, extended
//! with an optional conversion efficiency `η` applied to the output power.
//! The MPPT controller tunes `k` in steps of `Δk` (paper Section 4.2).

use pv::units::{Amps, Ohms, Volts};

use crate::error::PowerError;

/// The tunable DC/DC converter between panel and load bus.
#[derive(Debug, Clone, PartialEq)]
pub struct DcDcConverter {
    ratio: f64,
    min_ratio: f64,
    max_ratio: f64,
    ratio_step: f64,
    efficiency: f64,
    /// Actuator-lag fault seam: when > 0, nudge commands are queued and
    /// land this many commands late. `0` (the default) is the original
    /// direct-drive path, bit-identical to a converter without the seam.
    lag: u32,
    pending: Vec<i32>,
}

impl DcDcConverter {
    /// Builds a converter.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidConverter`] unless
    /// `0 < min ≤ initial ≤ max`, `step > 0` and `0 < efficiency ≤ 1`.
    pub fn new(
        initial_ratio: f64,
        min_ratio: f64,
        max_ratio: f64,
        ratio_step: f64,
        efficiency: f64,
    ) -> Result<Self, PowerError> {
        if !(min_ratio > 0.0 && min_ratio.is_finite()) {
            return Err(PowerError::InvalidConverter {
                name: "min_ratio",
                value: min_ratio,
                constraint: "must be > 0",
            });
        }
        if !(max_ratio >= min_ratio && max_ratio.is_finite()) {
            return Err(PowerError::InvalidConverter {
                name: "max_ratio",
                value: max_ratio,
                constraint: "must be >= min_ratio",
            });
        }
        if !(initial_ratio >= min_ratio && initial_ratio <= max_ratio) {
            return Err(PowerError::InvalidConverter {
                name: "initial_ratio",
                value: initial_ratio,
                constraint: "must lie in [min_ratio, max_ratio]",
            });
        }
        if !(ratio_step > 0.0 && ratio_step.is_finite()) {
            return Err(PowerError::InvalidConverter {
                name: "ratio_step",
                value: ratio_step,
                constraint: "must be > 0",
            });
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(PowerError::InvalidConverter {
                name: "efficiency",
                value: efficiency,
                constraint: "must be in (0, 1]",
            });
        }
        Ok(Self {
            ratio: initial_ratio,
            min_ratio,
            max_ratio,
            ratio_step,
            efficiency,
            lag: 0,
            pending: Vec::new(),
        })
    }

    /// The configuration used throughout the SolarCore experiments: a 36 V
    /// panel matched to a 12 V processor bus (`k = 3`), `k ∈ [0.8, 8]`,
    /// `Δk = 0.05`, and 95 % conversion efficiency — the same converter
    /// class the battery baselines' MPPT controllers assume (Table 3), so
    /// the comparison is apples-to-apples. (The paper's analysis assumes
    /// `P_in = P_out`; use [`DcDcConverter::new`] with `efficiency = 1.0`
    /// for that idealization.)
    #[allow(clippy::expect_used)]
    pub fn solarcore_default() -> Self {
        // lint:allow(panic): compile-time-constant paper configuration, pinned by a unit test
        Self::new(3.0, 0.8, 8.0, 0.05, 0.95).expect("static configuration is valid")
    }

    /// The current transfer ratio `k`.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The tuning step `Δk`.
    pub fn ratio_step(&self) -> f64 {
        self.ratio_step
    }

    /// Conversion efficiency `η ∈ (0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Supported ratio range `(min, max)`.
    pub fn ratio_range(&self) -> (f64, f64) {
        (self.min_ratio, self.max_ratio)
    }

    /// Sets the transfer ratio exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::RatioOutOfRange`] outside the supported range.
    pub fn set_ratio(&mut self, ratio: f64) -> Result<(), PowerError> {
        if !(ratio >= self.min_ratio && ratio <= self.max_ratio) {
            return Err(PowerError::RatioOutOfRange {
                requested: ratio,
                min: self.min_ratio,
                max: self.max_ratio,
            });
        }
        self.ratio = ratio;
        Ok(())
    }

    /// Nudges the ratio by `steps` increments of `Δk` (negative = down),
    /// saturating at the range limits. Returns the actually applied delta.
    ///
    /// With an actuator lag armed ([`set_actuator_lag`](Self::set_actuator_lag)),
    /// the command is queued instead and the command issued `lag` calls ago
    /// lands now; until the queue fills, the applied delta is `0.0`.
    pub fn nudge_ratio(&mut self, steps: i32) -> f64 {
        if self.lag == 0 {
            let before = self.ratio;
            let target = self.ratio + steps as f64 * self.ratio_step;
            self.ratio = target.clamp(self.min_ratio, self.max_ratio);
            return self.ratio - before;
        }
        self.pending.push(steps);
        if self.pending.len() > self.lag as usize {
            let delayed = self.pending.remove(0);
            let before = self.ratio;
            let target = self.ratio + f64::from(delayed) * self.ratio_step;
            self.ratio = target.clamp(self.min_ratio, self.max_ratio);
            self.ratio - before
        } else {
            0.0
        }
    }

    /// Arms (or disarms, with `steps == 0`) the Δk-step actuator-lag fault
    /// seam. Reducing the lag drains the now-excess queued commands in
    /// issue order — a recovering actuator applies what was already
    /// commanded rather than forgetting it.
    pub fn set_actuator_lag(&mut self, steps: u32) {
        self.lag = steps;
        while self.pending.len() > self.lag as usize {
            let delayed = self.pending.remove(0);
            let target = self.ratio + f64::from(delayed) * self.ratio_step;
            self.ratio = target.clamp(self.min_ratio, self.max_ratio);
        }
    }

    /// The armed actuator-lag queue depth (`0` = direct drive).
    pub fn actuator_lag(&self) -> u32 {
        self.lag
    }

    /// Output (load bus) voltage for a given panel voltage.
    pub fn output_voltage(&self, panel_voltage: Volts) -> Volts {
        panel_voltage / self.ratio
    }

    /// Output (load bus) current for a given panel current, including the
    /// efficiency derating.
    pub fn output_current(&self, panel_current: Amps) -> Amps {
        panel_current * self.ratio * self.efficiency
    }

    /// The resistance the *panel* sees when a resistance `r_load` hangs on
    /// the output bus: `R_panel = η · k² · R_load`.
    ///
    /// (From `V_out = V_p/k`, `I_out = η·k·I_p` and `V_out = I_out·R`.)
    pub fn reflected_resistance(&self, r_load: Ohms) -> Ohms {
        r_load * (self.efficiency * self.ratio * self.ratio)
    }
}

impl Default for DcDcConverter {
    fn default() -> Self {
        Self::solarcore_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_nonsense() {
        assert!(DcDcConverter::new(3.0, 0.0, 8.0, 0.05, 1.0).is_err());
        assert!(DcDcConverter::new(3.0, 2.0, 1.0, 0.05, 1.0).is_err());
        assert!(DcDcConverter::new(9.0, 1.0, 8.0, 0.05, 1.0).is_err());
        assert!(DcDcConverter::new(3.0, 1.0, 8.0, 0.0, 1.0).is_err());
        assert!(DcDcConverter::new(3.0, 1.0, 8.0, 0.05, 0.0).is_err());
        assert!(DcDcConverter::new(3.0, 1.0, 8.0, 0.05, 1.1).is_err());
    }

    #[test]
    fn ideal_transformer_conserves_power() {
        let c = DcDcConverter::new(3.0, 0.8, 8.0, 0.05, 1.0).unwrap();
        let vp = Volts::new(36.0);
        let ip = Amps::new(5.0);
        let vo = c.output_voltage(vp);
        let io = c.output_current(ip);
        assert!((vo.get() - 12.0).abs() < 1e-12);
        assert!((io.get() - 15.0).abs() < 1e-12);
        assert!(((vo * io).get() - (vp * ip).get()).abs() < 1e-9);
    }

    #[test]
    fn efficiency_derates_output_power() {
        let c = DcDcConverter::new(3.0, 1.0, 8.0, 0.05, 0.9).unwrap();
        let vp = Volts::new(36.0);
        let ip = Amps::new(5.0);
        let p_out = (c.output_voltage(vp) * c.output_current(ip)).get();
        assert!((p_out - 0.9 * 180.0).abs() < 1e-9);
    }

    #[test]
    fn nudge_saturates_at_limits() {
        let mut c = DcDcConverter::new(7.95, 0.8, 8.0, 0.05, 1.0).unwrap();
        let applied = c.nudge_ratio(3); // wants +0.15, only +0.05 available
        assert!((applied - 0.05).abs() < 1e-12);
        assert!((c.ratio() - 8.0).abs() < 1e-12);
        let applied = c.nudge_ratio(-2);
        assert!((applied + 0.10).abs() < 1e-12);
    }

    #[test]
    fn actuator_lag_delays_commands_by_queue_depth() {
        let mut c = DcDcConverter::new(3.0, 0.8, 8.0, 0.05, 1.0).unwrap();
        c.set_actuator_lag(2);
        // First two commands only fill the queue.
        assert_eq!(c.nudge_ratio(1), 0.0);
        assert_eq!(c.nudge_ratio(1), 0.0);
        assert_eq!(c.ratio(), 3.0);
        // Third command lands the first one.
        let applied = c.nudge_ratio(-1);
        assert!((applied - 0.05).abs() < 1e-12);
        assert!((c.ratio() - 3.05).abs() < 1e-12);
    }

    #[test]
    fn clearing_lag_drains_queued_commands() {
        let mut c = DcDcConverter::new(3.0, 0.8, 8.0, 0.05, 1.0).unwrap();
        c.set_actuator_lag(3);
        c.nudge_ratio(1);
        c.nudge_ratio(1);
        assert_eq!(c.ratio(), 3.0);
        c.set_actuator_lag(0);
        assert!((c.ratio() - 3.10).abs() < 1e-12);
        assert_eq!(c.actuator_lag(), 0);
        // Back on the direct path.
        let applied = c.nudge_ratio(-1);
        assert!((applied + 0.05).abs() < 1e-12);
    }

    #[test]
    fn set_ratio_validates_range() {
        let mut c = DcDcConverter::solarcore_default();
        assert!(c.set_ratio(0.5).is_err());
        assert!(c.set_ratio(4.0).is_ok());
        assert_eq!(c.ratio(), 4.0);
    }

    #[test]
    fn reflected_resistance_grows_with_k_squared() {
        let mut c = DcDcConverter::solarcore_default();
        c.set_ratio(2.0).unwrap();
        let r2 = c.reflected_resistance(Ohms::new(1.2));
        c.set_ratio(4.0).unwrap();
        let r4 = c.reflected_resistance(Ohms::new(1.2));
        assert!((r4.get() / r2.get() - 4.0).abs() < 1e-12);
    }
}
