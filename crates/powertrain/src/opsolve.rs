//! Electrical operating-point solver: PV curve ∩ reflected load line.
//!
//! "The actual operating point of the PV system occurs at the intersection
//! of the electrical characteristics of the solar panel and the load"
//! (paper Section 2.3). The intersection is unique for resistive loads
//! because the PV current is non-increasing in voltage while the load line
//! is strictly increasing; solved by bisection on `[0, Voc]`.

use pv::cell::CellEnv;
use pv::error::PvError;
use pv::generator::PvGenerator;
use pv::mpp::MppPoint;
use pv::units::{Amps, Ohms, Volts, Watts};

use crate::converter::DcDcConverter;

/// Bisection iterations for the operating-point solve (~1e-12 V resolution
/// over a 50 V bracket).
const BISECT_ITERS: u32 = 96;

/// `true` when the solver sanitizer checks are compiled in: always in debug
/// builds, and in release builds with the `sanitize` feature (forwarded from
/// `solarcore/sanitize`).
const SANITIZE: bool = cfg!(any(debug_assertions, feature = "sanitize"));

/// What hangs on the converter's output bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadModel {
    /// An effective resistance — how the multi-core processor at a fixed
    /// DVFS configuration presents to the bus (`R = V_bus² / P_chip`).
    Resistance(Ohms),
    /// A constant-power sink (used for battery-charger style comparisons).
    /// The solver picks the *stable* intersection on the voltage-source side
    /// (right of the MPP); if the panel cannot supply the power the result
    /// collapses to the origin (brown-out).
    ConstantPower(Watts),
    /// Open circuit (load disconnected by the ATS).
    Open,
}

/// A solved electrical operating point on both sides of the converter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OperatingPoint {
    /// Panel-side terminal voltage.
    pub panel_voltage: Volts,
    /// Panel-side output current.
    pub panel_current: Amps,
    /// Load-bus voltage (`V_panel / k`).
    pub output_voltage: Volts,
    /// Load-bus current (`η · k · I_panel`).
    pub output_current: Amps,
}

impl OperatingPoint {
    /// Power extracted from the panel.
    pub fn panel_power(&self) -> Watts {
        self.panel_voltage * self.panel_current
    }

    /// Power delivered to the load bus.
    pub fn output_power(&self) -> Watts {
        self.output_voltage * self.output_current
    }
}

/// Interior-mutable work counters for the operating-point solver, shared
/// with the telemetry subsystem (`Cell`-based so they can be bumped behind
/// the `&self` methods of [`PvGenerator`]).
///
/// Counting is observationally free: the traced solver wraps the generator
/// in a pass-through adapter whose arithmetic path is identical to the
/// untraced one, so every solved bit matches `solve_operating_point`.
#[derive(Debug, Default)]
pub struct SolveStats {
    solves: core::cell::Cell<u64>,
    pv_evals: core::cell::Cell<u64>,
    newton_iters: core::cell::Cell<u64>,
}

impl SolveStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operating-point solves performed.
    pub fn solves(&self) -> u64 {
        self.solves.get()
    }

    /// Number of PV I-V curve evaluations across all solves (~96 bisection
    /// probes + 1 finish per solve).
    pub fn pv_evals(&self) -> u64 {
        self.pv_evals.get()
    }

    /// Total inner Newton/bisection iterations across all PV evaluations
    /// (zero for memo hits on a [`pv::CachedArray`]).
    pub fn newton_iters(&self) -> u64 {
        self.newton_iters.get()
    }
}

/// Pass-through [`PvGenerator`] adapter that tallies evaluation work into a
/// [`SolveStats`]. Every call delegates to the counted inner path, which is
/// bit-identical to the plain one by the `pv` crate's contract.
struct CountingGenerator<'a, G: PvGenerator + ?Sized> {
    inner: &'a G,
    stats: &'a SolveStats,
}

impl<G: PvGenerator + ?Sized> PvGenerator for CountingGenerator<'_, G> {
    fn open_circuit_voltage(&self, env: CellEnv) -> Volts {
        self.inner.open_circuit_voltage(env)
    }

    fn current_at(&self, env: CellEnv, voltage: Volts) -> Result<Amps, PvError> {
        Ok(self.current_at_counted(env, voltage)?.0)
    }

    fn mpp(&self, env: CellEnv) -> MppPoint {
        self.inner.mpp(env)
    }

    fn current_at_counted(&self, env: CellEnv, voltage: Volts) -> Result<(Amps, u32), PvError> {
        let (current, iters) = self.inner.current_at_counted(env, voltage)?;
        self.stats
            .pv_evals
            .set(self.stats.pv_evals.get().saturating_add(1));
        self.stats.newton_iters.set(
            self.stats
                .newton_iters
                .get()
                .saturating_add(u64::from(iters)),
        );
        Ok((current, iters))
    }
}

/// [`solve_operating_point`] with work counters: identical output bits,
/// plus `stats` accumulates the solve/evaluation/iteration tallies the
/// telemetry subsystem reports (DESIGN.md §14).
pub fn solve_operating_point_traced<G: PvGenerator + ?Sized>(
    generator: &G,
    env: CellEnv,
    converter: &DcDcConverter,
    load: &LoadModel,
    stats: &SolveStats,
) -> OperatingPoint {
    stats.solves.set(stats.solves.get().saturating_add(1));
    let counting = CountingGenerator {
        inner: generator,
        stats,
    };
    solve_operating_point(&counting, env, converter, load)
}

/// Solves the operating point of `generator` + `converter` + `load` under
/// environment `env`.
pub fn solve_operating_point<G: PvGenerator + ?Sized>(
    generator: &G,
    env: CellEnv,
    converter: &DcDcConverter,
    load: &LoadModel,
) -> OperatingPoint {
    let voc = generator.open_circuit_voltage(env);
    if voc <= Volts::ZERO {
        return OperatingPoint::default();
    }
    match load {
        LoadModel::Open => OperatingPoint {
            panel_voltage: voc,
            panel_current: Amps::ZERO,
            output_voltage: converter.output_voltage(voc),
            output_current: Amps::ZERO,
        },
        LoadModel::Resistance(r) => {
            if r.get() <= 0.0 {
                return OperatingPoint::default();
            }
            let r_panel = converter.reflected_resistance(*r).get();
            let v = bisect_panel_voltage(generator, env, voc, |v, i| v / r_panel - i);
            finish(generator, env, converter, v)
        }
        LoadModel::ConstantPower(p) => {
            if p.get() <= 0.0 {
                return OperatingPoint {
                    panel_voltage: voc,
                    panel_current: Amps::ZERO,
                    output_voltage: converter.output_voltage(voc),
                    output_current: Amps::ZERO,
                };
            }
            let p_panel = p.get() / converter.efficiency();
            let mpp = generator.mpp(env);
            if p_panel > mpp.power.get() {
                // Demand exceeds supply: direct-coupled bus collapses.
                return OperatingPoint::default();
            }
            // On [Vmpp, Voc], P(V) falls monotonically from Pmax to 0, so
            // p_panel − P(V) is increasing there; bisect for its root.
            let v = bisect_voltage_range(generator, env, mpp.voltage.get(), voc.get(), |v, i| {
                p_panel - v * i
            });
            finish(generator, env, converter, v)
        }
    }
}

/// Bisects on `[0, Voc]` for the root of `f(V, I_pv(V))`, where `f` is
/// increasing in `V` along the PV curve.
fn bisect_panel_voltage<G: PvGenerator + ?Sized>(
    generator: &G,
    env: CellEnv,
    voc: Volts,
    f: impl Fn(f64, f64) -> f64,
) -> Volts {
    bisect_voltage_range(generator, env, 0.0, voc.get(), f)
}

fn bisect_voltage_range<G: PvGenerator + ?Sized>(
    generator: &G,
    env: CellEnv,
    mut lo: f64,
    mut hi: f64,
    f: impl Fn(f64, f64) -> f64,
) -> Volts {
    for _ in 0..BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        let i = generator
            .current_at(env, Volts::new(mid))
            .map(Amps::get)
            .unwrap_or(0.0);
        if f(mid, i) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Volts::new(0.5 * (lo + hi))
}

fn finish<G: PvGenerator + ?Sized>(
    generator: &G,
    env: CellEnv,
    converter: &DcDcConverter,
    panel_voltage: Volts,
) -> OperatingPoint {
    let panel_current = generator
        .current_at(env, panel_voltage)
        .unwrap_or(Amps::ZERO);
    let panel_current = panel_current.max(Amps::ZERO);
    let op = OperatingPoint {
        panel_voltage,
        panel_current,
        output_voltage: converter.output_voltage(panel_voltage),
        output_current: converter.output_current(panel_current),
    };
    assert_point_sane(generator, env, converter, &op);
    op
}

/// Solver-side physics sanitizer: a solved point must lie on the panel's
/// reachable curve and satisfy the converter's transformer relations
/// exactly. A violation means the bisection diverged or the converter
/// state was corrupted mid-solve — conditions no caller can recover from
/// meaningfully, so they fail fast.
fn assert_point_sane<G: PvGenerator + ?Sized>(
    generator: &G,
    env: CellEnv,
    converter: &DcDcConverter,
    op: &OperatingPoint,
) {
    if !SANITIZE {
        return;
    }
    let voc = generator.open_circuit_voltage(env).get();
    let v = op.panel_voltage.get();
    assert!(
        // lint:allow(dim): 1e-9 is an absolute nanovolt tolerance on a volt compare
        v.is_finite() && v >= 0.0 && v <= voc + 1e-9,
        "operating-point invariant violated: panel voltage {v} V outside [0, Voc = {voc} V]"
    );
    let i = op.panel_current.get();
    assert!(
        i.is_finite() && i >= 0.0,
        "operating-point invariant violated: panel current {i} A is not finite non-negative"
    );
    assert!(
        (op.output_voltage.get() - v / converter.ratio()).abs() <= 1e-9,
        "operating-point invariant violated: V_out = {} V but V_panel/k = {} V",
        op.output_voltage.get(),
        v / converter.ratio()
    );
    assert!(
        (op.output_current.get() - converter.efficiency() * converter.ratio() * i).abs() <= 1e-9,
        "operating-point invariant violated: I_out = {} A but eta*k*I_panel = {} A",
        op.output_current.get(),
        converter.efficiency() * converter.ratio() * i
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv::units::Celsius;
    use pv::PvArray;

    fn rig() -> (PvArray, DcDcConverter, CellEnv) {
        (
            PvArray::solarcore_default(),
            DcDcConverter::solarcore_default(),
            CellEnv::stc(),
        )
    }

    #[test]
    fn resistive_point_lies_on_both_curves() {
        let (array, dcdc, env) = rig();
        let op = solve_operating_point(&array, env, &dcdc, &LoadModel::Resistance(Ohms::new(1.2)));
        // On the PV curve:
        let i_pv = array.current_at(env, op.panel_voltage).unwrap();
        assert!((i_pv.get() - op.panel_current.get()).abs() < 1e-6);
        // On the reflected load line:
        let r_panel = dcdc.reflected_resistance(Ohms::new(1.2));
        assert!((op.panel_current.get() - op.panel_voltage.get() / r_panel.get()).abs() < 1e-6);
        // Transformer relations hold:
        assert!((op.output_voltage.get() - op.panel_voltage.get() / dcdc.ratio()).abs() < 1e-9);
        assert!(
            (op.output_power().get() - dcdc.efficiency() * op.panel_power().get()).abs() < 1e-6
        );
    }

    #[test]
    fn raising_k_raises_panel_voltage() {
        // Table 1 / Figure 5: tuning k moves the operating point along the
        // I-V curve; higher k ⇒ higher panel-side resistance ⇒ higher V.
        let (array, mut dcdc, env) = rig();
        let load = LoadModel::Resistance(Ohms::new(1.2));
        dcdc.set_ratio(2.0).unwrap();
        let v_low_k = solve_operating_point(&array, env, &dcdc, &load).panel_voltage;
        dcdc.set_ratio(4.0).unwrap();
        let v_high_k = solve_operating_point(&array, env, &dcdc, &load).panel_voltage;
        assert!(v_high_k > v_low_k);
    }

    #[test]
    fn heavier_load_pulls_voltage_down() {
        let (array, dcdc, env) = rig();
        let v_light =
            solve_operating_point(&array, env, &dcdc, &LoadModel::Resistance(Ohms::new(3.0)))
                .panel_voltage;
        let v_heavy =
            solve_operating_point(&array, env, &dcdc, &LoadModel::Resistance(Ohms::new(0.8)))
                .panel_voltage;
        assert!(v_heavy < v_light);
    }

    #[test]
    fn open_circuit_and_darkness() {
        let (array, dcdc, env) = rig();
        let op = solve_operating_point(&array, env, &dcdc, &LoadModel::Open);
        assert_eq!(op.panel_current, Amps::ZERO);
        assert!(op.panel_voltage.get() > 40.0);

        let dark = CellEnv::dark(Celsius::new(25.0));
        let op = solve_operating_point(&array, dark, &dcdc, &LoadModel::Resistance(Ohms::new(1.0)));
        assert_eq!(op, OperatingPoint::default());
    }

    #[test]
    fn constant_power_tracks_demand_on_stable_branch() {
        let (array, dcdc, env) = rig();
        let op = solve_operating_point(
            &array,
            env,
            &dcdc,
            &LoadModel::ConstantPower(Watts::new(100.0)),
        );
        // The panel must supply the demand plus the conversion loss.
        assert!((op.panel_power().get() - 100.0 / dcdc.efficiency()).abs() < 0.1);
        // Stable branch: at or right of the MPP voltage.
        assert!(op.panel_voltage.get() >= array.mpp(env).voltage.get() - 0.01);
    }

    #[test]
    fn constant_power_overload_browns_out() {
        let (array, dcdc, env) = rig();
        let op = solve_operating_point(
            &array,
            env,
            &dcdc,
            &LoadModel::ConstantPower(Watts::new(500.0)),
        );
        assert_eq!(op, OperatingPoint::default());
    }

    #[test]
    fn zero_and_negative_loads_are_safe() {
        let (array, dcdc, env) = rig();
        let op = solve_operating_point(&array, env, &dcdc, &LoadModel::Resistance(Ohms::ZERO));
        assert_eq!(op, OperatingPoint::default());
        let op = solve_operating_point(&array, env, &dcdc, &LoadModel::ConstantPower(Watts::ZERO));
        assert_eq!(op.panel_current, Amps::ZERO);
    }

    #[test]
    fn traced_solve_is_bit_identical_and_counts_work() {
        let (array, dcdc, env) = rig();
        let load = LoadModel::Resistance(Ohms::new(1.2));
        let plain = solve_operating_point(&array, env, &dcdc, &load);
        let stats = SolveStats::new();
        let traced = solve_operating_point_traced(&array, env, &dcdc, &load, &stats);
        assert_eq!(
            plain.panel_voltage.get().to_bits(),
            traced.panel_voltage.get().to_bits()
        );
        assert_eq!(
            plain.output_current.get().to_bits(),
            traced.output_current.get().to_bits()
        );
        assert_eq!(stats.solves(), 1);
        // 96 bisection probes + 1 finish evaluation.
        assert_eq!(stats.pv_evals(), 97);
        assert!(stats.newton_iters() >= stats.pv_evals());
    }

    #[test]
    fn there_exists_a_k_that_reaches_near_mpp() {
        // Sweep k: the best extracted power must come within 1 % of MPP.
        let (array, mut dcdc, env) = rig();
        let load = LoadModel::Resistance(Ohms::new(1.2));
        let mpp = array.mpp(env).power.get();
        let mut best = 0.0_f64;
        let mut k = 1.0;
        while k <= 6.0 {
            dcdc.set_ratio(k).unwrap();
            let p = solve_operating_point(&array, env, &dcdc, &load)
                .panel_power()
                .get();
            best = best.max(p);
            k += 0.02;
        }
        assert!(best > 0.99 * mpp, "best {best:.1} W vs MPP {mpp:.1} W");
    }
}
