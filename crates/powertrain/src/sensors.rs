//! Load-bus current/voltage sensing (the "I/V sensors" of Figure 8).
//!
//! The SolarCore controller observes the load bus through sensors whose
//! readings may carry multiplicative measurement noise. The default sensor
//! is ideal (the paper does not model sensor error); tests and robustness
//! experiments can enable seeded Gaussian noise.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use pv::units::{Amps, Volts};

/// A (possibly noisy) voltage/current sensor pair.
#[derive(Debug, Clone)]
pub struct IvSensor {
    noise_sigma: f64,
    rng: ChaCha8Rng,
}

impl IvSensor {
    /// An ideal, noiseless sensor.
    pub fn ideal() -> Self {
        Self {
            noise_sigma: 0.0,
            rng: ChaCha8Rng::seed_from_u64(0),
        }
    }

    /// A sensor with multiplicative Gaussian noise of relative standard
    /// deviation `sigma` (e.g. `0.01` = 1 % error), deterministically
    /// seeded.
    pub fn noisy(sigma: f64, seed: u64) -> Self {
        Self {
            noise_sigma: sigma.max(0.0),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Relative noise standard deviation.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Samples the sensor pair for true values `(v, i)`.
    pub fn measure(&mut self, v: Volts, i: Amps) -> (Volts, Amps) {
        if self.noise_sigma == 0.0 {
            return (v, i);
        }
        let nv = 1.0 + self.noise_sigma * self.normal();
        let ni = 1.0 + self.noise_sigma * self.normal();
        (v * nv.max(0.0), i * ni.max(0.0))
    }

    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Default for IvSensor {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_transparent() {
        let mut s = IvSensor::ideal();
        let (v, i) = s.measure(Volts::new(12.0), Amps::new(8.0));
        assert_eq!(v, Volts::new(12.0));
        assert_eq!(i, Amps::new(8.0));
    }

    #[test]
    fn noisy_sensor_is_unbiased_and_bounded() {
        let mut s = IvSensor::noisy(0.01, 42);
        let n = 20_000;
        let mut sum_v = 0.0;
        for _ in 0..n {
            let (v, _) = s.measure(Volts::new(12.0), Amps::new(8.0));
            assert!(v.get() > 0.0);
            sum_v += v.get();
        }
        let mean = sum_v / n as f64;
        assert!((mean - 12.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = IvSensor::noisy(0.02, 7);
        let mut b = IvSensor::noisy(0.02, 7);
        for _ in 0..50 {
            let ra = a.measure(Volts::new(10.0), Amps::new(1.0));
            let rb = b.measure(Volts::new(10.0), Amps::new(1.0));
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn negative_sigma_is_clamped_to_ideal() {
        let mut s = IvSensor::noisy(-0.5, 1);
        assert_eq!(s.noise_sigma(), 0.0);
        let (v, _) = s.measure(Volts::new(5.0), Amps::new(1.0));
        assert_eq!(v, Volts::new(5.0));
    }
}
