//! Load-bus current/voltage sensing (the "I/V sensors" of Figure 8).
//!
//! The SolarCore controller observes the load bus through sensors whose
//! readings may carry multiplicative measurement noise. The default sensor
//! is ideal (the paper does not model sensor error); tests and robustness
//! experiments can enable seeded Gaussian noise. For chaos experiments,
//! [`FaultedIvSensor`] wraps a sensor with an optional fault injector that
//! corrupts readings according to an armed `faults::FaultPlan`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use pv::units::{Amps, Volts};

/// A (possibly noisy) voltage/current sensor pair.
///
/// # RNG stream contract
///
/// The noise stream is owned, seeded state: `IvSensor::noisy(sigma, seed)`
/// fixes the entire sample sequence, and each [`measure`](Self::measure)
/// call with `sigma > 0` consumes exactly two normal draws (voltage first,
/// then current). Consequences callers may rely on:
///
/// - Two sensors built with the same `(sigma, seed)` return bit-identical
///   reading sequences for identical inputs.
/// - `Clone` copies the stream position: a clone and its original return
///   bit-identical sequences from the clone point onward (pinned by the
///   `clone_then_read_matches_original` test). Cloning never forks to an
///   independent stream.
/// - Ideal sensors (`sigma == 0`) short-circuit without touching the RNG,
///   so interleaving ideal reads does not perturb the stream.
#[derive(Debug, Clone)]
pub struct IvSensor {
    noise_sigma: f64,
    rng: ChaCha8Rng,
}

impl IvSensor {
    /// An ideal, noiseless sensor.
    pub fn ideal() -> Self {
        Self {
            noise_sigma: 0.0,
            rng: ChaCha8Rng::seed_from_u64(0),
        }
    }

    /// A sensor with multiplicative Gaussian noise of relative standard
    /// deviation `sigma` (e.g. `0.01` = 1 % error), deterministically
    /// seeded.
    pub fn noisy(sigma: f64, seed: u64) -> Self {
        Self {
            noise_sigma: sigma.max(0.0),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Relative noise standard deviation.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Samples the sensor pair for true values `(v, i)`.
    pub fn measure(&mut self, v: Volts, i: Amps) -> (Volts, Amps) {
        if self.noise_sigma == 0.0 {
            return (v, i);
        }
        let nv = 1.0 + self.noise_sigma * self.normal();
        let ni = 1.0 + self.noise_sigma * self.normal();
        (v * nv.max(0.0), i * ni.max(0.0))
    }

    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Default for IvSensor {
    fn default() -> Self {
        Self::ideal()
    }
}

/// An [`IvSensor`] with an optional fault-injection seam.
///
/// When no injector is armed (`transparent`), `measure` is exactly the
/// inner sensor's `measure` — same code path, same RNG consumption — so the
/// disarmed stack stays bit-identical to a bare [`IvSensor`] (the bench
/// determinism harness pins this). When an injector is armed, readings pass
/// through `faults::SensorInjector::inject` after the inner sensor samples
/// them, so baseline sensor noise and injected faults compose.
#[derive(Debug, Clone)]
pub struct FaultedIvSensor {
    inner: IvSensor,
    injector: Option<faults::SensorInjector>,
}

impl FaultedIvSensor {
    /// Wraps `inner` with no injector armed — bit-transparent.
    pub fn transparent(inner: IvSensor) -> Self {
        Self {
            inner,
            injector: None,
        }
    }

    /// Wraps `inner` with an armed injector.
    pub fn armed(inner: IvSensor, injector: faults::SensorInjector) -> Self {
        Self {
            inner,
            injector: Some(injector),
        }
    }

    /// `true` when a fault injector is armed.
    pub fn is_armed(&self) -> bool {
        self.injector.is_some()
    }

    /// The wrapped sensor.
    pub fn inner(&self) -> &IvSensor {
        &self.inner
    }

    /// Advances the injector's sim-time clock (no-op when disarmed).
    pub fn set_minute(&mut self, minute: u32) {
        if let Some(injector) = self.injector.as_mut() {
            injector.set_minute(minute);
        }
    }

    /// Samples the sensor pair for true values `(v, i)`, applying any
    /// active injected fault after the inner sensor's own noise.
    pub fn measure(&mut self, v: Volts, i: Amps) -> (Volts, Amps) {
        let (mv, mi) = self.inner.measure(v, i);
        match self.injector.as_mut() {
            None => (mv, mi),
            Some(injector) => {
                let (fv, fi) = injector.inject(mv.get(), mi.get());
                (Volts::new(fv), Amps::new(fi))
            }
        }
    }
}

impl From<IvSensor> for FaultedIvSensor {
    fn from(inner: IvSensor) -> Self {
        Self::transparent(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_transparent() {
        let mut s = IvSensor::ideal();
        let (v, i) = s.measure(Volts::new(12.0), Amps::new(8.0));
        assert_eq!(v, Volts::new(12.0));
        assert_eq!(i, Amps::new(8.0));
    }

    #[test]
    fn noisy_sensor_is_unbiased_and_bounded() {
        let mut s = IvSensor::noisy(0.01, 42);
        let n = 20_000;
        let mut sum_v = 0.0;
        for _ in 0..n {
            let (v, _) = s.measure(Volts::new(12.0), Amps::new(8.0));
            assert!(v.get() > 0.0);
            sum_v += v.get();
        }
        let mean = sum_v / n as f64;
        assert!((mean - 12.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = IvSensor::noisy(0.02, 7);
        let mut b = IvSensor::noisy(0.02, 7);
        for _ in 0..50 {
            let ra = a.measure(Volts::new(10.0), Amps::new(1.0));
            let rb = b.measure(Volts::new(10.0), Amps::new(1.0));
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn clone_then_read_matches_original() {
        // The documented RNG stream contract: a clone copies the stream
        // position, so clone and original agree bit-for-bit from the clone
        // point onward.
        let mut original = IvSensor::noisy(0.05, 1234);
        // Advance the stream so the clone point is mid-stream, not at seed.
        for _ in 0..17 {
            let _ = original.measure(Volts::new(9.0), Amps::new(2.0));
        }
        let mut clone = original.clone();
        for _ in 0..50 {
            let ra = original.measure(Volts::new(12.0), Amps::new(8.0));
            let rb = clone.measure(Volts::new(12.0), Amps::new(8.0));
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn transparent_wrapper_matches_bare_sensor() {
        let mut bare = IvSensor::noisy(0.02, 99);
        let mut wrapped = FaultedIvSensor::transparent(IvSensor::noisy(0.02, 99));
        assert!(!wrapped.is_armed());
        for m in 0..30 {
            wrapped.set_minute(m);
            let ra = bare.measure(Volts::new(11.0), Amps::new(3.0));
            let rb = wrapped.measure(Volts::new(11.0), Amps::new(3.0));
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn armed_wrapper_applies_injection() {
        let mut plan = faults::FaultPlan::new("t", 0);
        plan.schedule(faults::ScheduledFault {
            start_minute: 5,
            end_minute: 10,
            kind: faults::FaultKind::SensorDropout,
        })
        .unwrap();
        let injector = faults::SensorInjector::new(&plan);
        let mut s = FaultedIvSensor::armed(IvSensor::ideal(), injector);
        s.set_minute(0);
        let (v, _) = s.measure(Volts::new(10.0), Amps::new(1.0));
        assert_eq!(v, Volts::new(10.0));
        s.set_minute(7);
        let (v, i) = s.measure(Volts::new(10.0), Amps::new(1.0));
        assert!(v.get().is_nan() && i.get().is_nan());
    }

    #[test]
    fn negative_sigma_is_clamped_to_ideal() {
        let mut s = IvSensor::noisy(-0.5, 1);
        assert_eq!(s.noise_sigma(), 0.0);
        let (v, _) = s.measure(Volts::new(5.0), Amps::new(1.0));
        assert_eq!(v, Volts::new(5.0));
    }
}
