//! Automatic transfer switch (ATS) between solar and grid utility.
//!
//! "When the solar power supply drops below a certain threshold, a secondary
//! power supply (e.g. grid utilities) will be switched in and used as a
//! power supply until sufficient solar power is available" (paper §1). The
//! UPS in Figure 8 guarantees the handover is seamless; we model the switch
//! logic with hysteresis so marginal sunshine does not cause chattering.

use pv::units::Watts;

use crate::error::PowerError;

/// Which supply currently feeds the processor rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerSource {
    /// Direct-coupled PV array (SolarCore active).
    Solar,
    /// Grid utility backup (conventional CMP operation).
    Utility,
}

/// The automatic transfer switch with hysteresis.
#[derive(Debug, Clone, PartialEq)]
pub struct AutomaticTransferSwitch {
    threshold: Watts,
    hysteresis: Watts,
    source: PowerSource,
    transfers: u64,
}

impl AutomaticTransferSwitch {
    /// Builds a switch that selects solar while the available PV power stays
    /// at or above `threshold`, and returns to solar only once it recovers
    /// to `threshold + hysteresis`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidSwitch`] for negative or non-finite
    /// parameters.
    pub fn new(threshold: Watts, hysteresis: Watts) -> Result<Self, PowerError> {
        if !(threshold.get() >= 0.0 && threshold.is_finite()) {
            return Err(PowerError::InvalidSwitch {
                reason: "threshold must be non-negative and finite",
            });
        }
        if !(hysteresis.get() >= 0.0 && hysteresis.is_finite()) {
            return Err(PowerError::InvalidSwitch {
                reason: "hysteresis must be non-negative and finite",
            });
        }
        Ok(Self {
            threshold,
            hysteresis,
            source: PowerSource::Utility,
            transfers: 0,
        })
    }

    /// The SolarCore default: transfer at 25 W available solar power (the
    /// lowest fixed budget the paper sweeps) with 3 W hysteresis.
    #[allow(clippy::expect_used)]
    pub fn solarcore_default() -> Self {
        // lint:allow(panic): compile-time-constant paper configuration, pinned by a unit test
        Self::new(Watts::new(25.0), Watts::new(3.0)).expect("static configuration is valid")
    }

    /// The currently selected source.
    pub fn source(&self) -> PowerSource {
        self.source
    }

    /// The power-transfer threshold.
    pub fn threshold(&self) -> Watts {
        self.threshold
    }

    /// How many source transfers have occurred.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Forces the switch onto `source` regardless of available power — the
    /// ATS-flapping fault seam (a failing changeover relay). Counts as a
    /// transfer when the source actually changes, exactly like
    /// [`update`](Self::update). Returns the selected source.
    pub fn force(&mut self, source: PowerSource) -> PowerSource {
        if source != self.source {
            self.transfers += 1;
            self.source = source;
        }
        source
    }

    /// Updates the switch with the currently available PV power (e.g. the
    /// tracked MPP estimate) and returns the newly selected source.
    pub fn update(&mut self, available_solar: Watts) -> PowerSource {
        let next = match self.source {
            PowerSource::Solar if available_solar < self.threshold => PowerSource::Utility,
            PowerSource::Utility if available_solar >= self.threshold + self.hysteresis => {
                PowerSource::Solar
            }
            current => current,
        };
        if next != self.source {
            self.transfers += 1;
            self.source = next;
        }
        next
    }
}

impl Default for AutomaticTransferSwitch {
    fn default() -> Self {
        Self::solarcore_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_on_utility() {
        let ats = AutomaticTransferSwitch::solarcore_default();
        assert_eq!(ats.source(), PowerSource::Utility);
        assert_eq!(ats.transfer_count(), 0);
    }

    #[test]
    fn switches_to_solar_above_threshold_plus_hysteresis() {
        let mut ats = AutomaticTransferSwitch::new(Watts::new(25.0), Watts::new(3.0)).unwrap();
        assert_eq!(ats.update(Watts::new(26.0)), PowerSource::Utility); // below 28
        assert_eq!(ats.update(Watts::new(28.0)), PowerSource::Solar);
        assert_eq!(ats.transfer_count(), 1);
    }

    #[test]
    fn falls_back_below_threshold_with_hysteresis_band() {
        let mut ats = AutomaticTransferSwitch::new(Watts::new(25.0), Watts::new(3.0)).unwrap();
        ats.update(Watts::new(100.0));
        assert_eq!(ats.source(), PowerSource::Solar);
        // Inside the band: stays on solar.
        assert_eq!(ats.update(Watts::new(26.0)), PowerSource::Solar);
        // Below threshold: falls back.
        assert_eq!(ats.update(Watts::new(24.9)), PowerSource::Utility);
        assert_eq!(ats.transfer_count(), 2);
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        let mut ats = AutomaticTransferSwitch::new(Watts::new(25.0), Watts::new(3.0)).unwrap();
        // Oscillate right around the threshold: only one transfer happens
        // (up at 28), not one per sample.
        let mut transfers = 0;
        let mut last = ats.source();
        for p in [24.0, 26.0, 24.5, 26.5, 28.5, 27.0, 26.0, 27.5, 26.2] {
            let s = ats.update(Watts::new(p));
            if s != last {
                transfers += 1;
                last = s;
            }
        }
        assert_eq!(transfers, 1);
    }

    #[test]
    fn force_overrides_and_counts_real_changes() {
        let mut ats = AutomaticTransferSwitch::new(Watts::new(25.0), Watts::new(3.0)).unwrap();
        assert_eq!(ats.force(PowerSource::Solar), PowerSource::Solar);
        assert_eq!(ats.transfer_count(), 1);
        // Forcing the already-selected source is not a transfer.
        assert_eq!(ats.force(PowerSource::Solar), PowerSource::Solar);
        assert_eq!(ats.transfer_count(), 1);
        assert_eq!(ats.force(PowerSource::Utility), PowerSource::Utility);
        assert_eq!(ats.transfer_count(), 2);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(AutomaticTransferSwitch::new(Watts::new(-1.0), Watts::ZERO).is_err());
        assert!(AutomaticTransferSwitch::new(Watts::new(f64::NAN), Watts::ZERO).is_err());
        assert!(AutomaticTransferSwitch::new(Watts::ZERO, Watts::new(-2.0)).is_err());
    }
}
