//! Error types for the `powertrain` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by power-delivery components.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A converter parameter was out of range.
    InvalidConverter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A transfer-ratio request fell outside the converter's range.
    RatioOutOfRange {
        /// The requested ratio.
        requested: f64,
        /// Minimum supported ratio.
        min: f64,
        /// Maximum supported ratio.
        max: f64,
    },
    /// An ATS parameter was out of range.
    InvalidSwitch {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidConverter {
                name,
                value,
                constraint,
            } => write!(
                f,
                "invalid converter parameter `{name}` = {value}: {constraint}"
            ),
            PowerError::RatioOutOfRange {
                requested,
                min,
                max,
            } => write!(f, "transfer ratio {requested} outside [{min}, {max}]"),
            PowerError::InvalidSwitch { reason } => write!(f, "invalid transfer switch: {reason}"),
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        let e = PowerError::RatioOutOfRange {
            requested: 9.0,
            min: 0.5,
            max: 8.0,
        };
        assert!(e.to_string().contains('9'));
        let e = PowerError::InvalidSwitch { reason: "bad" };
        assert!(e.to_string().contains("bad"));
    }
}
