//! Property-based tests of the workload models.

use proptest::prelude::*;

use workloads::{spec2000, Mix, PhaseTrace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Effective IPC interpolates monotonically between its bounds for any
    /// benchmark and frequency in range.
    #[test]
    fn effective_ipc_is_monotone_in_frequency(
        bench_idx in 0usize..12,
        f_ghz in 1.0..2.5_f64,
    ) {
        let spec = spec2000::all().swap_remove(bench_idx);
        let f_nom = 2.5e9;
        let ipc = spec.ipc_at(f_ghz * 1e9, f_nom);
        // IPC rises as frequency falls (memory stalls shrink in cycles)…
        prop_assert!(ipc >= spec.ipc - 1e-12);
        // …but bounded by the zero-memory-time limit.
        prop_assert!(ipc <= spec.ipc / (1.0 - spec.mem_frac) + 1e-12);
        // And throughput is still monotone increasing in frequency.
        let ips_lo = spec.ips_at((f_ghz - 0.1).max(0.5) * 1e9, f_nom);
        let ips_hi = spec.ips_at(f_ghz * 1e9, f_nom);
        prop_assert!(ips_hi >= ips_lo);
    }

    /// Phase traces are bounded, deterministic and name-keyed for any seed
    /// and length.
    #[test]
    fn phase_traces_bounded_and_deterministic(
        seed in any::<u64>(),
        len in 1usize..800,
        bench_idx in 0usize..12,
    ) {
        let spec = spec2000::all().swap_remove(bench_idx);
        let a = PhaseTrace::generate(&spec, seed, len);
        let b = PhaseTrace::generate(&spec, seed, len);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
        for &m in a.multipliers() {
            prop_assert!((0.5..=1.5).contains(&m), "multiplier {m}");
        }
    }

    /// Every mix keeps its Table 5 aggregate EPI class consistent with its
    /// members.
    #[test]
    fn mix_mean_epi_is_within_member_range(mix_idx in 0usize..10) {
        let mix = Mix::all().swap_remove(mix_idx);
        let min = mix.benchmarks().iter().map(|b| b.epi_nj).fold(f64::MAX, f64::min);
        let max = mix.benchmarks().iter().map(|b| b.epi_nj).fold(f64::MIN, f64::max);
        let mean = mix.mean_epi_nj();
        prop_assert!(mean >= min && mean <= max);
    }
}
