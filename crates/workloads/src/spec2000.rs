//! The twelve SPEC CPU2000 benchmarks used by the paper (Table 5),
//! as statistical models.
//!
//! EPI values place each benchmark in its Table 5 class (High ≥ 15 nJ,
//! Moderate 8–15 nJ, Low ≤ 8 nJ). IPC and memory-boundedness are set to
//! plausible Alpha-21264-class values such that per-core power at top V/F
//! lands in the 8–18 W range (giving the ~100–150 W 8-core chip budgets the
//! paper's figures show). Phase volatility is higher for the high-EPI codes,
//! reproducing the power-ripple structure of Figures 13–14.

use crate::benchmark::BenchmarkSpec;

/// `179.art` — image recognition / neural net; cache-thrashing, hot.
pub fn art() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "art",
        epi_nj: 18.0,
        ipc: 0.35,
        mem_frac: 0.45,
        phase_volatility: 0.22,
    }
}

/// `301.apsi` — meteorology; FP heavy, high activity.
pub fn apsi() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "apsi",
        epi_nj: 16.5,
        ipc: 0.42,
        mem_frac: 0.25,
        phase_volatility: 0.16,
    }
}

/// `256.bzip2` — compression; integer, bursty.
pub fn bzip2() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "bzip",
        epi_nj: 15.5,
        ipc: 0.42,
        mem_frac: 0.20,
        phase_volatility: 0.18,
    }
}

/// `164.gzip` — compression; integer, compute bound.
pub fn gzip() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gzip",
        epi_nj: 15.0,
        ipc: 0.45,
        mem_frac: 0.12,
        phase_volatility: 0.14,
    }
}

/// `176.gcc` — compiler; moderate everything.
pub fn gcc() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gcc",
        epi_nj: 12.0,
        ipc: 0.50,
        mem_frac: 0.30,
        phase_volatility: 0.12,
    }
}

/// `181.mcf` — combinatorial optimization; extremely memory bound.
pub fn mcf() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "mcf",
        epi_nj: 14.0,
        ipc: 0.28,
        mem_frac: 0.75,
        phase_volatility: 0.10,
    }
}

/// `254.gap` — group theory; integer, moderately memory bound.
pub fn gap() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "gap",
        epi_nj: 10.0,
        ipc: 0.55,
        mem_frac: 0.30,
        phase_volatility: 0.11,
    }
}

/// `175.vpr` — FPGA place & route; integer.
pub fn vpr() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "vpr",
        epi_nj: 11.0,
        ipc: 0.50,
        mem_frac: 0.25,
        phase_volatility: 0.12,
    }
}

/// `177.mesa` — 3D graphics library; efficient FP, low EPI.
pub fn mesa() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "mesa",
        epi_nj: 7.5,
        ipc: 0.80,
        mem_frac: 0.10,
        phase_volatility: 0.06,
    }
}

/// `183.equake` — seismic wave simulation; FP, streaming.
pub fn equake() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "equake",
        epi_nj: 7.0,
        ipc: 0.65,
        mem_frac: 0.40,
        phase_volatility: 0.08,
    }
}

/// `189.lucas` — number theory FP; regular access patterns.
pub fn lucas() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "lucas",
        epi_nj: 6.5,
        ipc: 0.70,
        mem_frac: 0.35,
        phase_volatility: 0.07,
    }
}

/// `171.swim` — shallow water modeling; streaming FP, memory bound.
pub fn swim() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "swim",
        epi_nj: 6.0,
        ipc: 0.65,
        mem_frac: 0.55,
        phase_volatility: 0.07,
    }
}

/// All twelve modeled benchmarks, High-EPI first.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![
        art(),
        apsi(),
        bzip2(),
        gzip(),
        gcc(),
        mcf(),
        gap(),
        vpr(),
        mesa(),
        equake(),
        lucas(),
        swim(),
    ]
}

/// Looks a benchmark up by its SPEC short name (e.g. `"art"`, `"bzip"`).
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::EpiClass;

    #[test]
    fn twelve_unique_benchmarks() {
        let specs = all();
        assert_eq!(specs.len(), 12);
        let mut names: Vec<&str> = specs.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn table5_class_membership() {
        for name in ["art", "apsi", "bzip", "gzip"] {
            assert_eq!(by_name(name).unwrap().epi_class(), EpiClass::High, "{name}");
        }
        for name in ["gcc", "mcf", "gap", "vpr"] {
            assert_eq!(
                by_name(name).unwrap().epi_class(),
                EpiClass::Moderate,
                "{name}"
            );
        }
        for name in ["mesa", "equake", "lucas", "swim"] {
            assert_eq!(by_name(name).unwrap().epi_class(), EpiClass::Low, "{name}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("art").unwrap().name, "art");
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn parameters_are_physical() {
        for b in all() {
            assert!(b.epi_nj > 0.0);
            assert!(b.ipc > 0.0 && b.ipc < 4.0);
            assert!((0.0..1.0).contains(&b.mem_frac));
            assert!(b.phase_volatility >= 0.0 && b.phase_volatility < 1.0);
        }
    }

    #[test]
    fn high_epi_codes_are_more_volatile() {
        // The ripple structure of Figures 13–14 requires high-EPI programs
        // to swing more than low-EPI ones.
        let avg = |names: &[&str]| -> f64 {
            names
                .iter()
                .map(|n| by_name(n).unwrap().phase_volatility)
                .sum::<f64>()
                / names.len() as f64
        };
        assert!(avg(&["art", "apsi", "bzip", "gzip"]) > avg(&["mesa", "equake", "lucas", "swim"]));
    }
}
