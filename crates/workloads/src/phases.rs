//! Program-phase traces: per-interval IPC/activity multipliers.
//!
//! Real programs move through phases whose IPC (and therefore power) differ.
//! We model a phase trace as a bounded AR(1) multiplier around 1.0 with a
//! per-benchmark volatility, *seeded by benchmark name*: two cores running
//! the same program started together share the same trace, so homogeneous
//! mixes (H1 = art×8) swing coherently — reproducing the large power ripples
//! of Figures 13–14 — while heterogeneous mixes average out.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::benchmark::BenchmarkSpec;
use crate::mix::Mix;

/// Persistence of the phase AR(1) process per macro-interval (1 minute).
const PHASE_RHO: f64 = 0.88;

/// Hard bounds on the phase multiplier.
const MULT_MIN: f64 = 0.55;
const MULT_MAX: f64 = 1.45;

/// A per-interval sequence of IPC/activity multipliers for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTrace {
    multipliers: Vec<f64>,
}

impl PhaseTrace {
    /// Generates `len` interval multipliers for one benchmark. The trace is
    /// a deterministic function of `(benchmark name, seed)` — *not* of the
    /// core it runs on — so identical programs phase together.
    pub fn generate(spec: &BenchmarkSpec, seed: u64, len: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(spec.name, seed));
        let sigma = spec.phase_volatility;
        let mut state = 0.0_f64;
        let multipliers = (0..len)
            .map(|_| {
                let eps = standard_normal(&mut rng);
                state = PHASE_RHO * state + (1.0 - PHASE_RHO * PHASE_RHO).sqrt() * sigma * eps;
                (1.0 + state).clamp(MULT_MIN, MULT_MAX)
            })
            .collect();
        Self { multipliers }
    }

    /// Generates one trace per core of a mix (same seed ⇒ same-program cores
    /// share identical traces).
    pub fn for_mix(mix: &Mix, seed: u64, len: usize) -> Vec<PhaseTrace> {
        mix.benchmarks()
            .iter()
            .map(|b| PhaseTrace::generate(b, seed, len))
            .collect()
    }

    /// The multiplier sequence.
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// Multiplier at interval `t`, clamping past the end (programs loop
    /// through their representative interval, per the paper's methodology).
    pub fn at(&self, t: usize) -> f64 {
        if self.multipliers.is_empty() {
            return 1.0;
        }
        self.multipliers[t % self.multipliers.len()]
    }

    /// Trace length in intervals.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// `true` if the trace holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }
}

/// Derives a sub-seed from the benchmark name and the run seed (FNV-1a).
fn mix_seed(name: &str, seed: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2000;

    #[test]
    fn multipliers_stay_bounded_near_one() {
        let t = PhaseTrace::generate(&spec2000::art(), 1, 5000);
        let mean: f64 = t.multipliers().iter().sum::<f64>() / t.len() as f64;
        assert!((mean - 1.0).abs() < 0.08, "mean {mean}");
        for &m in t.multipliers() {
            assert!((MULT_MIN..=MULT_MAX).contains(&m));
        }
    }

    #[test]
    fn same_program_same_seed_share_a_trace() {
        let a = PhaseTrace::generate(&spec2000::art(), 7, 100);
        let b = PhaseTrace::generate(&spec2000::art(), 7, 100);
        assert_eq!(a, b);
        let c = PhaseTrace::generate(&spec2000::art(), 8, 100);
        assert_ne!(a, c);
        let d = PhaseTrace::generate(&spec2000::gzip(), 7, 100);
        assert_ne!(a, d);
    }

    #[test]
    fn homogeneous_mix_is_coherent_heterogeneous_is_not() {
        let len = 600;
        let h1 = PhaseTrace::for_mix(&Mix::h1(), 3, len);
        // All 8 cores of H1 share the identical art trace.
        for t in &h1[1..] {
            assert_eq!(t, &h1[0]);
        }
        // HM2's cores differ pairwise.
        let hm2 = PhaseTrace::for_mix(&Mix::hm2(), 3, len);
        let mut distinct = 0;
        for t in &hm2[1..] {
            if t != &hm2[0] {
                distinct += 1;
            }
        }
        assert_eq!(distinct, 7);
    }

    #[test]
    fn aggregate_ripple_larger_for_h1_than_hm2_and_l1() {
        // Chip-level multiplier = mean across cores; H1 must ripple hardest.
        let len = 2000;
        let ripple = |mix: &Mix| -> f64 {
            let traces = PhaseTrace::for_mix(mix, 5, len);
            let agg: Vec<f64> = (0..len)
                .map(|t| traces.iter().map(|tr| tr.at(t)).sum::<f64>() / traces.len() as f64)
                .collect();
            let mean = agg.iter().sum::<f64>() / agg.len() as f64;
            (agg.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / agg.len() as f64).sqrt()
        };
        let h1 = ripple(&Mix::h1());
        let hm2 = ripple(&Mix::hm2());
        let l1 = ripple(&Mix::l1());
        assert!(h1 > 1.5 * hm2, "H1 {h1:.4} vs HM2 {hm2:.4}");
        assert!(h1 > 2.0 * l1, "H1 {h1:.4} vs L1 {l1:.4}");
    }

    #[test]
    fn at_wraps_past_the_end() {
        let t = PhaseTrace::generate(&spec2000::mesa(), 2, 10);
        assert_eq!(t.at(0), t.at(10));
        assert_eq!(t.at(3), t.at(13));
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_yields_unit_multiplier() {
        let t = PhaseTrace {
            multipliers: vec![],
        };
        assert_eq!(t.at(5), 1.0);
        assert!(t.is_empty());
    }
}
