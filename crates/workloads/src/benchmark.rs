//! Per-benchmark statistical models and EPI classification (Table 5).

use std::fmt;

/// EPI (energy-per-instruction) class boundaries from Section 5 of the
/// paper: High ≥ 15 nJ, 8 nJ < Moderate < 15 nJ, Low ≤ 8 nJ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpiClass {
    /// EPI ≥ 15 nJ per instruction.
    High,
    /// 8 nJ < EPI < 15 nJ.
    Moderate,
    /// EPI ≤ 8 nJ.
    Low,
}

impl EpiClass {
    /// Classifies a nominal EPI value in nanojoules.
    pub fn classify(epi_nj: f64) -> Self {
        if epi_nj >= 15.0 {
            EpiClass::High
        } else if epi_nj > 8.0 {
            EpiClass::Moderate
        } else {
            EpiClass::Low
        }
    }
}

impl fmt::Display for EpiClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EpiClass::High => "High",
            EpiClass::Moderate => "Moderate",
            EpiClass::Low => "Low",
        };
        f.write_str(s)
    }
}

/// Statistical model of one benchmark: what the SolarCore control algorithms
/// can observe about a running program (via performance counters), expressed
/// as nominal values at the top V/F level (2.5 GHz / 1.45 V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// SPEC2000 benchmark name, e.g. `"art"`.
    pub name: &'static str,
    /// Average energy per instruction at nominal V/F, in nanojoules.
    pub epi_nj: f64,
    /// Average instructions per cycle at nominal frequency.
    pub ipc: f64,
    /// Fraction of nominal CPI spent waiting on memory (0–1). Memory stall
    /// time is constant in wall-clock terms, so memory-bound programs lose
    /// less throughput when the core slows down.
    pub mem_frac: f64,
    /// Relative magnitude of program-phase IPC/power variation (std-dev of
    /// the phase multiplier process).
    pub phase_volatility: f64,
}

impl BenchmarkSpec {
    /// The benchmark's EPI class (Table 5 grouping).
    pub fn epi_class(&self) -> EpiClass {
        EpiClass::classify(self.epi_nj)
    }

    /// Effective IPC at a clock frequency `f_hz`, given the nominal
    /// frequency `f_nom_hz`. Core-bound cycles are frequency-invariant in
    /// cycle terms, memory-bound cycles are frequency-invariant in *time*
    /// terms:
    ///
    /// `IPC(f) = IPC_nom / (1 − mem_frac + mem_frac · f / f_nom)`
    ///
    /// The paper's assumption (3) — "voltage scaling has little impact on
    /// IPC" — is the `mem_frac → 0` limit; this model keeps the second-order
    /// memory effect so the TPR allocator has realistic inputs.
    pub fn ipc_at(&self, f_hz: f64, f_nom_hz: f64) -> f64 {
        self.ipc / (1.0 - self.mem_frac + self.mem_frac * f_hz / f_nom_hz)
    }

    /// Instructions per second at a clock frequency.
    pub fn ips_at(&self, f_hz: f64, f_nom_hz: f64) -> f64 {
        self.ipc_at(f_hz, f_nom_hz) * f_hz
    }

    /// Nominal per-core dynamic power at top V/F, in watts:
    /// `P = EPI × IPC × f`.
    pub fn nominal_dynamic_power(&self, f_nom_hz: f64) -> f64 {
        self.epi_nj * 1e-9 * self.ipc * f_nom_hz
    }
}

impl fmt::Display for BenchmarkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2000;

    #[test]
    fn classification_boundaries() {
        assert_eq!(EpiClass::classify(15.0), EpiClass::High);
        assert_eq!(EpiClass::classify(14.9), EpiClass::Moderate);
        assert_eq!(EpiClass::classify(8.1), EpiClass::Moderate);
        assert_eq!(EpiClass::classify(8.0), EpiClass::Low);
        assert_eq!(EpiClass::classify(20.0), EpiClass::High);
        assert_eq!(EpiClass::classify(3.0), EpiClass::Low);
    }

    #[test]
    fn ipc_at_full_frequency_is_nominal() {
        let art = spec2000::art();
        let f = 2.5e9;
        assert!((art.ipc_at(f, f) - art.ipc).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_benchmarks_keep_more_ipc_when_slowed() {
        let mcf = spec2000::mcf(); // heavily memory bound
        let gzip = spec2000::gzip(); // compute bound
        let f_nom = 2.5e9;
        let f_low = 1.0e9;
        let mcf_gain = mcf.ipc_at(f_low, f_nom) / mcf.ipc;
        let gzip_gain = gzip.ipc_at(f_low, f_nom) / gzip.ipc;
        assert!(mcf_gain > gzip_gain);
        assert!(mcf_gain > 1.0, "IPC rises as frequency falls");
    }

    #[test]
    fn throughput_still_falls_with_frequency() {
        // Even for mcf, IPS must drop monotonically with f.
        let mcf = spec2000::mcf();
        let f_nom = 2.5e9;
        let mut prev = f64::INFINITY;
        for f_ghz in [2.5, 2.2, 1.9, 1.6, 1.3, 1.0] {
            let ips = mcf.ips_at(f_ghz * 1e9, f_nom);
            assert!(ips < prev);
            prev = ips;
        }
    }

    #[test]
    fn nominal_power_is_in_per_core_envelope() {
        // Each core should draw roughly 8–18 W at top V/F, matching the
        // paper's ~100–150 W 8-core budgets.
        for spec in spec2000::all() {
            let p = spec.nominal_dynamic_power(2.5e9);
            assert!(
                (7.0..=19.0).contains(&p),
                "{}: {p:.1} W at nominal",
                spec.name
            );
        }
    }
}
