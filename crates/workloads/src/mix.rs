//! The ten multi-programmed workload mixes of Table 5.

use std::fmt;

use crate::benchmark::{BenchmarkSpec, EpiClass};
use crate::spec2000;

/// Number of cores (and therefore programs per mix) in the paper's setup.
pub const CORES_PER_MIX: usize = 8;

/// A multi-programmed workload: one benchmark pinned to each of 8 cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    name: &'static str,
    benchmarks: Vec<BenchmarkSpec>,
}

impl Mix {
    /// Builds a custom 8-program mix.
    ///
    /// # Panics
    ///
    /// Panics if `benchmarks` does not contain exactly
    /// [`CORES_PER_MIX`] entries.
    pub fn custom(name: &'static str, benchmarks: Vec<BenchmarkSpec>) -> Self {
        assert_eq!(
            benchmarks.len(),
            CORES_PER_MIX,
            "a mix pins one benchmark per core"
        );
        Self { name, benchmarks }
    }

    /// H1 = art×8 (homogeneous high EPI).
    pub fn h1() -> Self {
        Self::custom("H1", vec![spec2000::art(); 8])
    }

    /// H2 = art×2, apsi×2, bzip×2, gzip×2 (less homogeneous high EPI).
    pub fn h2() -> Self {
        Self::custom(
            "H2",
            duplicate_pairs([
                spec2000::art(),
                spec2000::apsi(),
                spec2000::bzip2(),
                spec2000::gzip(),
            ]),
        )
    }

    /// M1 = gcc×8 (homogeneous moderate EPI).
    pub fn m1() -> Self {
        Self::custom("M1", vec![spec2000::gcc(); 8])
    }

    /// M2 = gcc×2, mcf×2, gap×2, vpr×2.
    pub fn m2() -> Self {
        Self::custom(
            "M2",
            duplicate_pairs([
                spec2000::gcc(),
                spec2000::mcf(),
                spec2000::gap(),
                spec2000::vpr(),
            ]),
        )
    }

    /// L1 = mesa×8 (homogeneous low EPI).
    pub fn l1() -> Self {
        Self::custom("L1", vec![spec2000::mesa(); 8])
    }

    /// L2 = mesa×2, equake×2, lucas×2, swim×2.
    pub fn l2() -> Self {
        Self::custom(
            "L2",
            duplicate_pairs([
                spec2000::mesa(),
                spec2000::equake(),
                spec2000::lucas(),
                spec2000::swim(),
            ]),
        )
    }

    /// HM1 = bzip×4, gcc×4 (high-moderate, less heterogeneous).
    pub fn hm1() -> Self {
        let mut v = vec![spec2000::bzip2(); 4];
        v.extend(vec![spec2000::gcc(); 4]);
        Self::custom("HM1", v)
    }

    /// HM2 = bzip, gzip, art, apsi, gcc, mcf, gap, vpr (fully heterogeneous
    /// high-moderate).
    pub fn hm2() -> Self {
        Self::custom(
            "HM2",
            vec![
                spec2000::bzip2(),
                spec2000::gzip(),
                spec2000::art(),
                spec2000::apsi(),
                spec2000::gcc(),
                spec2000::mcf(),
                spec2000::gap(),
                spec2000::vpr(),
            ],
        )
    }

    /// ML1 = gcc×4, mesa×4 (moderate-low, less heterogeneous).
    pub fn ml1() -> Self {
        let mut v = vec![spec2000::gcc(); 4];
        v.extend(vec![spec2000::mesa(); 4]);
        Self::custom("ML1", v)
    }

    /// ML2 = gcc, mcf, gap, vpr, mesa, equake, lucas, swim (fully
    /// heterogeneous moderate-low).
    pub fn ml2() -> Self {
        Self::custom(
            "ML2",
            vec![
                spec2000::gcc(),
                spec2000::mcf(),
                spec2000::gap(),
                spec2000::vpr(),
                spec2000::mesa(),
                spec2000::equake(),
                spec2000::lucas(),
                spec2000::swim(),
            ],
        )
    }

    /// All ten Table 5 mixes in the paper's order
    /// (H1, H2, M1, M2, L1, L2, HM1, HM2, ML1, ML2).
    pub fn all() -> Vec<Mix> {
        vec![
            Mix::h1(),
            Mix::h2(),
            Mix::m1(),
            Mix::m2(),
            Mix::l1(),
            Mix::l2(),
            Mix::hm1(),
            Mix::hm2(),
            Mix::ml1(),
            Mix::ml2(),
        ]
    }

    /// Looks a mix up by Table 5 name (e.g. `"HM2"`).
    pub fn by_name(name: &str) -> Option<Mix> {
        Mix::all().into_iter().find(|m| m.name == name)
    }

    /// The mix's Table 5 name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The per-core benchmark assignment (core *i* runs `benchmarks()[i]`).
    pub fn benchmarks(&self) -> &[BenchmarkSpec] {
        &self.benchmarks
    }

    /// Mean nominal EPI across the mix, in nanojoules.
    pub fn mean_epi_nj(&self) -> f64 {
        self.benchmarks.iter().map(|b| b.epi_nj).sum::<f64>() / self.benchmarks.len() as f64
    }

    /// Number of *distinct* programs in the mix — 1 for homogeneous (H1),
    /// 8 for fully heterogeneous (HM2). Drives how correlated the chip's
    /// aggregate power ripple is.
    pub fn distinct_programs(&self) -> usize {
        let mut names: Vec<&str> = self.benchmarks.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Dominant EPI class of the mix by mean EPI.
    pub fn epi_class(&self) -> EpiClass {
        EpiClass::classify(self.mean_epi_nj())
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// Expands four specs into the paper's ×2 pair layout.
fn duplicate_pairs(four: [BenchmarkSpec; 4]) -> Vec<BenchmarkSpec> {
    four.into_iter().flat_map(|b| [b, b]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_mixes_with_eight_programs_each() {
        let mixes = Mix::all();
        assert_eq!(mixes.len(), 10);
        for m in &mixes {
            assert_eq!(m.benchmarks().len(), 8, "{m}");
        }
        let names: Vec<&str> = mixes.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["H1", "H2", "M1", "M2", "L1", "L2", "HM1", "HM2", "ML1", "ML2"]
        );
    }

    #[test]
    fn homogeneity_counts() {
        assert_eq!(Mix::h1().distinct_programs(), 1);
        assert_eq!(Mix::h2().distinct_programs(), 4);
        assert_eq!(Mix::hm1().distinct_programs(), 2);
        assert_eq!(Mix::hm2().distinct_programs(), 8);
        assert_eq!(Mix::ml2().distinct_programs(), 8);
    }

    #[test]
    fn mean_epi_ordering_h_over_m_over_l() {
        assert!(Mix::h1().mean_epi_nj() > Mix::m1().mean_epi_nj());
        assert!(Mix::m1().mean_epi_nj() > Mix::l1().mean_epi_nj());
        assert!(Mix::h2().mean_epi_nj() > Mix::l2().mean_epi_nj());
        assert_eq!(Mix::h1().epi_class(), EpiClass::High);
        assert_eq!(Mix::l1().epi_class(), EpiClass::Low);
    }

    #[test]
    fn hm2_matches_table5_composition() {
        let names: Vec<&str> = Mix::hm2().benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["bzip", "gzip", "art", "apsi", "gcc", "mcf", "gap", "vpr"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Mix::by_name("ML1").unwrap().name(), "ML1");
        assert!(Mix::by_name("X9").is_none());
    }

    #[test]
    #[should_panic(expected = "one benchmark per core")]
    fn custom_mix_requires_eight() {
        let _ = Mix::custom("bad", vec![spec2000::art(); 3]);
    }
}
