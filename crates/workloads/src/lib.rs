//! Workload models for the SolarCore reproduction.
//!
//! The paper evaluates SolarCore with SPEC CPU2000 multi-programmed mixes on
//! an 8-core machine (Table 5), with benchmarks classified by average
//! energy-per-instruction (EPI): High (≥ 15 nJ), Moderate (8–15 nJ) and Low
//! (≤ 8 nJ). SPEC2000 binaries and reference inputs are not redistributable,
//! so this crate substitutes *statistical* models of the twelve benchmarks
//! the paper uses: per-benchmark nominal IPC, EPI, memory-boundedness and
//! phase volatility, plus seeded phase traces that reproduce the
//! load-variation structure the paper reports (large power ripple for
//! homogeneous high-EPI mixes, smooth power for heterogeneous/low-EPI ones).
//!
//! # Quick start
//!
//! ```
//! use workloads::{Mix, EpiClass};
//!
//! let h1 = Mix::h1();
//! assert_eq!(h1.benchmarks().len(), 8);
//! assert_eq!(h1.benchmarks()[0].epi_class(), EpiClass::High);
//! assert_eq!(Mix::all().len(), 10);
//! ```
//!
//! ## Panic policy
//!
//! Non-test code in this crate must not panic on recoverable conditions:
//! `unwrap`/`expect`/`panic!` are denied by the gate below and by
//! `cargo xtask lint`; justified sites carry an explicit allow + waiver.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![cfg_attr(test, allow(clippy::float_cmp))] // unit tests assert exact constructed values

pub mod benchmark;
pub mod mix;
pub mod phases;
pub mod spec2000;

pub use benchmark::{BenchmarkSpec, EpiClass};
pub use mix::Mix;
pub use phases::PhaseTrace;
