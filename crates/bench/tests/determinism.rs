//! Golden bitwise-determinism test: the policy-grid sweep must produce
//! byte-identical output at 1 thread, 8 threads, and with shuffled input
//! order. This is the in-tree twin of `cargo xtask determinism` (which
//! runs a larger sweep in release mode).

use bench::determinism::{day_hash, grid_hash};
use bench::grid::{GridConfig, PolicyGrid};
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

/// A small grid (2 cells) so the debug-mode runtime stays reasonable while
/// still giving the shuffle a permutation to apply and `parallel_map`
/// cross-thread work to reorder.
fn config(threads: usize) -> GridConfig {
    GridConfig {
        sites: vec![Site::phoenix_az(), Site::oak_ridge_tn()],
        seasons: vec![Season::Jul],
        mixes: vec![Mix::hm2()],
        days: 1,
        threads,
        telemetry_dir: None,
    }
}

/// One test computes the three grid variants once and checks both the
/// canonical hashes and the serialized JSON, so the (expensive, debug-mode)
/// day simulations are not repeated per assertion.
#[test]
fn grid_is_bit_identical_across_threads_and_input_order() {
    let serial = PolicyGrid::compute(&config(1));
    let parallel = PolicyGrid::compute(&config(8));
    // Seed chosen so the 2-cell Fisher-Yates draw actually swaps the cells
    // (a seed whose first splitmix64 output is even would be the identity).
    let shuffled = PolicyGrid::compute_shuffled(&config(8), 0x5eed);

    assert_eq!(
        grid_hash(&serial),
        grid_hash(&parallel),
        "1-thread vs 8-thread grid output diverged"
    );
    assert_eq!(
        grid_hash(&serial),
        grid_hash(&shuffled),
        "shuffled input order changed the grid output"
    );

    let a = serde_json::to_string(&serial).expect("serializes");
    let b = serde_json::to_string(&shuffled).expect("serializes");
    assert_eq!(a, b, "serialized grid JSON is not byte-stable");
}

#[test]
fn repeated_day_simulation_hashes_identically() {
    let run = || {
        DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jul)
            .day(0)
            .mix(Mix::hm2())
            .policy(Policy::MpptOpt)
            .build()
            .expect("valid config")
            .run()
            .expect("day runs")
    };
    assert_eq!(day_hash(&run()), day_hash(&run()));
}

/// The solver cache is bit-transparent end to end: a day simulated with
/// the memo enabled, with it disabled, and replayed over an already-warm
/// [`solarcore::SimSetup`] all hash to the same canonical digest.
#[test]
fn solver_cache_does_not_change_day_hash() {
    let builder = || {
        DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jul)
            .day(0)
            .mix(Mix::hm2())
            .policy(Policy::MpptOpt)
    };
    let cached = builder().build().expect("valid config");
    let uncached = builder().solver_cache(false).build().expect("valid config");

    let reference = day_hash(&uncached.run().expect("day runs"));
    assert_eq!(
        reference,
        day_hash(&cached.run().expect("day runs")),
        "enabling the solver cache changed the day digest"
    );

    // Re-running over the same prepared setup keeps the memo warm from the
    // first pass; the second pass is ~all hits and must not drift.
    let setup = cached.prepare();
    let first = day_hash(&cached.run_prepared(&setup).expect("day runs"));
    let second = day_hash(&cached.run_prepared(&setup).expect("day runs"));
    assert_eq!(reference, first, "cold-memo prepared run diverged");
    assert_eq!(reference, second, "warm-memo prepared run diverged");
    assert!(
        setup.cache_stats().hits > 0,
        "warm replay should actually hit the memo"
    );
}
