//! Golden test of the telemetry observability contract (DESIGN.md §14).
//!
//! Deserializes the committed sample stream
//! `results/telemetry_golden_co_jan_hm2.jsonl` and asserts the record
//! envelope, the per-record field sets, their JSON types and their unit
//! conventions — so any schema-breaking change to the emitting code fails
//! here until the contract documents, the sample and this test are updated
//! together.

use serde_json::Value;
use solarcore::schema;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/telemetry_golden_co_jan_hm2.jsonl"
);

fn golden_records() -> Vec<Value> {
    let stream = std::fs::read_to_string(GOLDEN).expect("committed golden stream exists");
    stream
        .lines()
        .map(|line| serde_json::from_str(line).expect("golden line parses as JSON"))
        .collect()
}

fn fields_of(record: &Value) -> Vec<String> {
    match &record["fields"] {
        Value::Object(entries) => entries.iter().map(|(k, _)| k.clone()).collect(),
        other => panic!("fields must be an object, got {other:?}"),
    }
}

#[test]
fn every_record_has_the_envelope() {
    let records = golden_records();
    assert!(!records.is_empty());
    for (i, r) in records.iter().enumerate() {
        let t = r["t"].as_str().expect("t tag");
        assert!(
            matches!(t, "event" | "span" | "counter" | "histogram"),
            "line {i}: unknown record type {t}"
        );
        assert!(r["name"].as_str().is_some(), "line {i}: missing name");
        // Sequence numbers are the stream's total order: 0,1,2,…
        assert_eq!(r["seq"].as_u64(), Some(i as u64), "line {i}: seq broken");
        match t {
            "event" => {
                let minute = r["minute"].as_u64().expect("event minute stamp");
                assert!(minute < 1440, "line {i}: minute {minute} out of range");
            }
            "span" => {
                let start = r["start_minute"].as_u64().expect("span start");
                let end = r["end_minute"].as_u64().expect("span end");
                assert!(start <= end, "line {i}: span ends before it starts");
            }
            _ => {}
        }
    }
}

#[test]
fn day_start_opens_the_stream_with_run_identity() {
    let records = golden_records();
    let first = &records[0];
    assert_eq!(first["t"].as_str(), Some("event"));
    assert_eq!(first["name"].as_str(), Some(schema::EVENT_DAY_START));
    let f = &first["fields"];
    assert_eq!(f[schema::SITE].as_str(), Some("CO"));
    assert_eq!(f[schema::SEASON].as_str(), Some("Jan"));
    assert_eq!(f[schema::DAY].as_u64(), Some(0));
    assert_eq!(f[schema::MIX].as_str(), Some("HM2"));
    assert_eq!(f[schema::POLICY].as_str(), Some("MPPT&Opt"));
}

#[test]
fn minute_events_carry_the_documented_fields_and_units() {
    let records = golden_records();
    let minutes: Vec<&Value> = records
        .iter()
        .filter(|r| r["name"].as_str() == Some(schema::EVENT_MINUTE))
        .collect();
    assert_eq!(minutes.len(), 601, "one minute event per simulated minute");
    let expected = [
        schema::BUDGET_W,
        schema::DRAWN_W,
        schema::BUS_V,
        schema::SOURCE,
        schema::CHIP_POWER_W,
        schema::CHIP_CAPACITY_W,
        schema::RATIO_K,
        schema::INSTRUCTIONS,
    ];
    for m in &minutes {
        assert_eq!(
            fields_of(m),
            expected.map(String::from),
            "minute field set/order drifted"
        );
        let f = &m["fields"];
        // `_w`/`_v`/`_k` fields are numbers; watts are non-negative.
        for key in [
            schema::BUDGET_W,
            schema::DRAWN_W,
            schema::CHIP_POWER_W,
            schema::CHIP_CAPACITY_W,
        ] {
            let w = f[key].as_f64().unwrap_or(f64::NAN);
            assert!(w >= 0.0, "{key} must be a non-negative wattage, got {w}");
        }
        assert!(f[schema::BUS_V].as_f64().is_some());
        assert!(f[schema::RATIO_K].as_f64().is_some());
        assert!(f[schema::INSTRUCTIONS].as_f64().is_some());
        let source = f[schema::SOURCE].as_str().expect("source label");
        assert!(matches!(source, "solar" | "utility"));
    }
}

#[test]
fn track_spans_describe_the_mppt_loop() {
    let records = golden_records();
    let spans: Vec<&Value> = records
        .iter()
        .filter(|r| r["t"].as_str() == Some("span"))
        .collect();
    assert!(!spans.is_empty(), "an MPPT day must emit tracking spans");
    for s in &spans {
        assert_eq!(s["name"].as_str(), Some(schema::SPAN_TRACK));
        let f = &s["fields"];
        assert!(f[schema::ROUNDS].as_u64().is_some());
        assert!(f[schema::ACTIONS].as_u64().is_some());
        assert!(f[schema::REVERSALS].as_u64().is_some());
        assert!(f[schema::FINAL_POWER_W].as_f64().is_some());
        assert!(f[schema::RATIO_K].as_f64().is_some());
        assert!(f[schema::FORCED].as_bool().is_some());
    }
    // The first span is the forced source-transition track.
    assert_eq!(spans[0]["fields"][schema::FORCED].as_bool(), Some(true));
}

#[test]
fn histograms_are_internally_consistent() {
    let records = golden_records();
    let hists: Vec<&Value> = records
        .iter()
        .filter(|r| r["t"].as_str() == Some("histogram"))
        .collect();
    let names: Vec<&str> = hists.iter().filter_map(|h| h["name"].as_str()).collect();
    assert_eq!(
        names,
        vec![
            schema::HIST_NEWTON_ITERS,
            schema::HIST_TRACK_ROUNDS,
            schema::HIST_TRACK_ACTIONS,
            schema::HIST_TRACK_REVERSALS,
            schema::HIST_TPR_MOVES,
            schema::HIST_RATIO_K_CENTI,
        ],
    );
    for h in &hists {
        let bounds = h["bounds"].as_array().expect("bounds");
        let counts = h["counts"].as_array().expect("counts");
        assert_eq!(
            counts.len(),
            bounds.len() + 1,
            "inclusive bounds plus one overflow bucket"
        );
        let total: u64 = counts.iter().filter_map(Value::as_u64).sum();
        assert_eq!(Some(total), h["count"].as_u64(), "bucket counts must sum");
        assert!(h["sum"].as_u64().is_some());
        assert!(h["max"].as_u64().is_some());
    }
}

#[test]
fn counters_and_day_summary_close_the_stream() {
    let records = golden_records();
    let counter_names: Vec<&str> = records
        .iter()
        .filter(|r| r["t"].as_str() == Some("counter"))
        .filter_map(|r| r["name"].as_str())
        .collect();
    assert_eq!(
        counter_names,
        vec![schema::COUNTER_MPP_QUERIES, schema::COUNTER_PV_EVALS]
    );

    let last = records.last().expect("nonempty stream");
    assert_eq!(last["name"].as_str(), Some(schema::EVENT_DAY_SUMMARY));
    let f = &last["fields"];
    let expected = [
        schema::TRACKING_ERROR,
        schema::ENERGY_DRAWN_WH,
        schema::ENERGY_AVAILABLE_WH,
        schema::UTILIZATION,
        schema::INSTRUCTIONS,
        schema::CACHE_HITS,
        schema::CACHE_MISSES,
        schema::SOLVES,
        schema::PV_EVALS,
        schema::NEWTON_ITERS_TOTAL,
    ];
    assert_eq!(
        fields_of(last),
        expected.map(String::from),
        "day_summary field set drifted"
    );
    let err = f[schema::TRACKING_ERROR].as_f64().expect("tracking_error");
    assert!((0.0..=1.0).contains(&err));
    let util = f[schema::UTILIZATION].as_f64().expect("utilization");
    assert!((0.0..=1.0).contains(&util));
}

#[test]
fn vf_residency_covers_every_core_and_level() {
    let records = golden_records();
    let residency: Vec<&Value> = records
        .iter()
        .filter(|r| r["name"].as_str() == Some(schema::EVENT_VF_RESIDENCY))
        .collect();
    assert_eq!(residency.len(), 8, "one record per core");
    for (core, r) in residency.iter().enumerate() {
        let f = &r["fields"];
        assert_eq!(f[schema::CORE].as_u64(), Some(core as u64));
        let gated = f[schema::GATED_MINUTES].as_u64().expect("gated_minutes");
        let levels: u64 = schema::RESIDENCY_LEVELS
            .iter()
            .map(|key| f[*key].as_u64().expect("residency level field"))
            .sum();
        // Residency partitions the day: gated + per-level == 601 minutes.
        assert_eq!(gated + levels, 601);
    }
}
