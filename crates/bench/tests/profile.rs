//! Profiler contract tests (DESIGN.md §19).
//!
//! Three properties the profiling layer must hold:
//!
//! 1. **Flamegraph round-trip** — any forest reachable from collapsed
//!    stack lines survives `parse → collapse → parse` unchanged
//!    (property-tested over random path/value multisets, duplicates
//!    included).
//! 2. **Null cost** — a disabled profiler's `scope()` must stay under a
//!    pinned per-call bound, so always-on instrumentation seams are free
//!    when nobody is measuring.
//! 3. **Structural determinism** — the profile's structural section
//!    renders byte-identically at 1 and 2 worker threads, twice over,
//!    while the campaign digest matches the unprofiled run's.

use bench::campaign::{run, CampaignSpec, RunOptions};
use bench::profile::{collapse_lines, parse_collapsed, structural_json};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use telemetry::{Profiler, Stopwatch};

/// Frame-name alphabet for generated stacks.
const NAMES: [&str; 6] = ["prepare", "run_day", "tpr", "mppt", "shard", "io"];

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse → collapse → parse` is the identity on parsed forests —
    /// including duplicate paths (which accumulate on first parse) and
    /// zero-valued interior frames.
    #[test]
    fn collapsed_stack_lines_round_trip(
        paths in pvec((pvec(0usize..6, 1..5), 0u64..10_000), 1..24)
    ) {
        let lines: Vec<String> = paths
            .iter()
            .map(|(path, value)| {
                let names: Vec<&str> = path.iter().map(|&i| NAMES[i]).collect();
                format!("{} {value}", names.join(";"))
            })
            .collect();
        let forest = parse_collapsed(&lines).expect("generated lines parse");
        let relines = collapse_lines(&forest);
        let reforest = parse_collapsed(&relines).expect("round-tripped lines parse");
        prop_assert_eq!(forest, reforest);
    }
}

/// The stated null-cost bound: a disabled `scope()` must average under
/// 500 ns per call over 100 000 calls (it is one `Option` check and a
/// no-drop guard; 500 ns leaves two orders of magnitude of headroom for
/// loaded CI machines).
#[test]
fn disabled_profiler_scope_is_free() {
    const CALLS: u32 = 100_000;
    const MAX_NS_PER_CALL: u64 = 500;

    let prof = Profiler::disabled();
    let watch = Stopwatch::new();
    for _ in 0..CALLS {
        let _guard = prof.scope("null");
    }
    let per_call = watch.elapsed_ns() / u64::from(CALLS);
    assert!(!prof.is_enabled());
    assert_eq!(prof.tree().node_count(), 0, "disabled profiler recorded spans");
    assert!(
        per_call < MAX_NS_PER_CALL,
        "disabled scope() costs {per_call} ns/call, bound is {MAX_NS_PER_CALL}"
    );
}

/// The structural section is deterministic: byte-identical across worker
/// thread counts and across repeated renders, while the profiled run's
/// digest matches the unprofiled run's.
#[test]
fn structural_section_is_byte_stable_across_thread_counts() {
    let spec = CampaignSpec::parse(
        "[campaign]\nname = \"profile-test\"\nsites = \"AZ,TN\"\nmonths = \"Jan\"\n\
         mixes = \"HM2\"\npolicies = \"MPPT&Opt\"\ncheckpoint_every = 1\n",
    )
    .expect("spec parses");
    let scenarios = scenarios_dir();

    let profiled = |threads: usize| {
        run(&spec, &scenarios, &RunOptions {
            threads,
            profile: true,
            ..RunOptions::default()
        })
        .expect("profiled run")
    };
    let narrow = profiled(1);
    let wide = profiled(2);
    let plain = run(&spec, &scenarios, &RunOptions {
        threads: 2,
        ..RunOptions::default()
    })
    .expect("unprofiled run");

    let narrow_tree = &narrow.profile.as_ref().expect("narrow profile").tree;
    let wide_tree = &wide.profile.as_ref().expect("wide profile").tree;
    assert!(narrow_tree.node_count() > 0, "profiled campaign recorded nothing");

    let narrow_doc = structural_json(narrow_tree).render();
    let wide_doc = structural_json(wide_tree).render();
    assert_eq!(narrow_doc, wide_doc, "structure depends on thread count");
    assert_eq!(
        wide_doc,
        structural_json(wide_tree).render(),
        "structural render is unstable"
    );

    assert_eq!(wide.digest(), plain.digest(), "profiling moved the campaign digest");
    assert_eq!(
        wide.report_json().render(),
        plain.report_json().render(),
        "profiling changed the report bytes"
    );
    assert!(plain.profile.is_none(), "unprofiled run carried a profile");
}
