//! Checkpoint/resume correctness properties of the campaign engine.
//!
//! The engine's contract (DESIGN.md §18): killing a campaign after any
//! number of completed shards and resuming from its checkpoint yields a
//! final report **byte-identical** to an uninterrupted run, re-executes
//! nothing before the durable checkpoint frontier, and restores
//! checkpointed rows verbatim rather than recomputing them. The last
//! property is proven the strong way — by *tampering* with a
//! checkpointed row and observing the tampered value survive resume.

use std::path::{Path, PathBuf};

use bench::campaign::{run, CampaignSpec, RunOptions};
use proptest::prelude::*;

/// A four-shard spec with single-shard waves, so every kill point
/// `1..=3` exercises a distinct frontier.
const SPEC: &str = r#"
[campaign]
name = "resume-props"
sites = "AZ,NC"
months = "Apr"
mixes = "HM2"
policies = "MPPT&Opt,MPPT&RR"
checkpoint_every = 1
"#;

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// A checkpoint path unique to this process and `tag` (proptest cases
/// run sequentially per process, so a per-case tag keeps them disjoint).
fn scratch(tag: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "solarcore_resume_props_{}_{tag}.json",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Kill after `k` shards, resume, and compare against an
    /// uninterrupted run: the reports must render byte-identically, the
    /// resume must restore exactly the killed run's durable frontier,
    /// and no shard before that frontier may re-execute.
    #[test]
    fn killed_and_resumed_campaign_is_byte_identical(k in 1usize..=3) {
        let spec = CampaignSpec::parse(SPEC).expect("spec parses");
        let scenarios = scenarios_dir();
        let reference = run(&spec, &scenarios, &RunOptions::default())
            .expect("uninterrupted run");

        let checkpoint = scratch(k);
        let _ = std::fs::remove_file(&checkpoint);
        let killed = run(&spec, &scenarios, &RunOptions {
            threads: 1,
            checkpoint: Some(checkpoint.clone()),
            kill_after: Some(k),
            ..RunOptions::default()
        })
        .expect("killed run returns");
        let resumed = run(&spec, &scenarios, &RunOptions {
            threads: 1,
            checkpoint: Some(checkpoint.clone()),
            kill_after: None,
            ..RunOptions::default()
        })
        .expect("resume runs");
        let _ = std::fs::remove_file(&checkpoint);

        prop_assert!(!killed.complete, "kill_after={k} did not abort");
        prop_assert!(resumed.complete);
        prop_assert_eq!(
            resumed.report_json().render(),
            reference.report_json().render(),
            "kill@{}+resume diverged from the uninterrupted bytes", k
        );
        prop_assert_eq!(resumed.resumed_from, killed.checkpointed);
        prop_assert!(
            resumed.executed.iter().all(|&i| i >= killed.checkpointed),
            "resume re-executed a shard before the frontier {}", killed.checkpointed
        );
        prop_assert_eq!(
            resumed.resumed_from + resumed.executed.len(),
            reference.rows.len(),
            "restored + executed shards must cover the campaign exactly"
        );
    }
}

/// Restored rows are trusted verbatim, never recomputed: corrupt a
/// checkpointed row's `ptp` and the corruption must survive resume (and
/// surface as a digest change). If resume recomputed restored shards the
/// tampering would be silently healed — and the no-re-execution guarantee
/// would be a lie.
#[test]
fn tampered_checkpoint_rows_survive_resume_verbatim() {
    let spec = CampaignSpec::parse(SPEC).expect("spec parses");
    let scenarios = scenarios_dir();
    let checkpoint = scratch(99);
    let _ = std::fs::remove_file(&checkpoint);
    run(&spec, &scenarios, &RunOptions {
        threads: 1,
        checkpoint: Some(checkpoint.clone()),
        kill_after: Some(2),
        ..RunOptions::default()
    })
    .expect("killed run returns");

    // Tamper: overwrite the first row's ptp with a sentinel value.
    let text = std::fs::read_to_string(&checkpoint).expect("checkpoint exists");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("checkpoint parses");
    let rows = doc["rows"].as_array().expect("rows present");
    assert!(!rows.is_empty(), "kill_after=2 checkpointed no rows");
    let original = format!("{}", rows[0]["ptp"].as_f64().expect("ptp present"));
    let tampered = text.replacen(&original, "123456789", 1);
    assert_ne!(tampered, text, "tampering failed to change the checkpoint");
    std::fs::write(&checkpoint, &tampered).expect("tampered checkpoint written");

    let resumed = run(&spec, &scenarios, &RunOptions {
        threads: 1,
        checkpoint: Some(checkpoint.clone()),
        kill_after: None,
        ..RunOptions::default()
    })
    .expect("resume runs");
    let _ = std::fs::remove_file(&checkpoint);

    let reference = run(&spec, &scenarios, &RunOptions::default()).expect("clean run");
    assert_eq!(
        resumed.rows[0].ptp.to_bits(),
        123_456_789.0f64.to_bits(),
        "restored row was recomputed instead of trusted verbatim"
    );
    assert_ne!(
        resumed.digest(),
        reference.digest(),
        "tampering must surface in the campaign digest"
    );
    // Only the tampered field differs: every shard at/after the frontier
    // matches the clean run bit-for-bit.
    for (r, c) in resumed.rows.iter().zip(&reference.rows).skip(1) {
        assert_eq!(r.digest, c.digest, "untampered shard {} drifted", r.index);
    }
}
