//! Golden regression layer over the committed `results/` artifacts.
//!
//! Two guards:
//!
//! 1. *Reproduction*: selected Table 7 tracking-error cells are recomputed
//!    from scratch through the (now cached/batched) engine and compared
//!    against the committed JSON within `1e-9`. The solver cache claims
//!    bitwise transparency, so a pre-cache artifact must still reproduce
//!    exactly; any drift here means the fast path changed the physics.
//! 2. *Snapshot*: headline scalars are pinned to in-test constants so an
//!    accidental regeneration of `results/` with different numbers fails
//!    loudly instead of silently rewriting the paper comparison.

use serde_json::Value;
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

const TOLERANCE: f64 = 1e-9;

fn read_results(name: &str) -> Value {
    let path = format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"));
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read committed artifact {path}: {e}"));
    serde_json::from_str(&raw).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"))
}

/// Looks up one committed Table 7 cell: `(site code, season, mix name)`.
fn tab07_cell(tab: &Value, site: &str, season: &str, mix: &str) -> f64 {
    let mixes = tab["mixes"].as_array().expect("tab07 has a mixes array");
    let col = mixes
        .iter()
        .position(|m| m.as_str() == Some(mix))
        .unwrap_or_else(|| panic!("mix {mix} not in tab07 columns"));
    let rows = tab["rows"].as_array().expect("tab07 has rows");
    let row = rows
        .iter()
        .find(|r| r[0].as_str() == Some(site) && r[1].as_str() == Some(season))
        .unwrap_or_else(|| panic!("row ({site}, {season}) not in tab07"));
    row[2][col].as_f64().expect("tab07 cell is a number")
}

/// Recomputes one Table 7 cell the way `experiments::tab07` does for the
/// committed single-day grid: one MPPT&Opt day simulation (day 0) and its
/// mean relative tracking error.
fn recompute_cell(site: Site, season: Season, mix: Mix) -> f64 {
    DaySimulation::builder()
        .site(site)
        .season(season)
        .day(0)
        .mix(mix)
        .policy(Policy::MpptOpt)
        .build()
        .expect("valid config")
        .run()
        .expect("day runs")
        .mean_tracking_error()
}

#[test]
fn engine_reproduces_committed_tracking_errors() {
    let tab = read_results("tab07_tracking_error.json");
    let cells = [
        ("AZ", Season::Jan, "H1", Mix::h1()),
        ("AZ", Season::Jan, "HM2", Mix::hm2()),
        ("AZ", Season::Jul, "H1", Mix::h1()),
    ];
    for (code, season, mix_name, mix) in cells {
        let committed = tab07_cell(&tab, code, &season.to_string(), mix_name);
        let site = match code {
            "AZ" => Site::phoenix_az(),
            other => panic!("unmapped site code {other}"),
        };
        let recomputed = recompute_cell(site, season, mix);
        assert!(
            (recomputed - committed).abs() <= TOLERANCE,
            "{code}/{season}/{mix_name}: engine now yields {recomputed:.15}, \
             committed artifact says {committed:.15}"
        );
    }
}

#[test]
fn headline_scalars_match_snapshot() {
    let headline = read_results("headline.json");
    let claims = headline["claims"].as_array().expect("headline has claims");
    assert_eq!(claims.len(), 9, "headline claim count changed");
    for claim in claims {
        assert!(claim["name"].as_str().is_some_and(|n| !n.is_empty()));
        assert!(claim["paper"].as_f64().is_some_and(f64::is_finite));
        assert!(claim["measured"].as_f64().is_some_and(f64::is_finite));
    }

    // Pinned snapshot of the scalars the README/paper comparison cites.
    let snapshot = [
        ("average green energy utilization", 0.82310309210724),
        ("MPPT&Opt gain over best fixed budget (%)", 37.5191395769332),
        ("performance vs Battery-U (ratio)", 0.9572940822042878),
    ];
    for (name, pinned) in snapshot {
        let measured = claims
            .iter()
            .find(|c| c["name"].as_str() == Some(name))
            .unwrap_or_else(|| panic!("headline claim `{name}` missing"))["measured"]
            .as_f64()
            .expect("measured is a number");
        assert!(
            (measured - pinned).abs() <= TOLERANCE,
            "headline `{name}` drifted: committed {measured:.15}, pinned {pinned:.15}"
        );
    }
}
