//! Golden pins for the committed chaos-campaign artifact
//! (`results/chaos_report.json`).
//!
//! The differential chaos harness is only useful if its scalars are
//! stable: a silent drift in PTP retention or detection latency means an
//! engine, controller or injection change altered fault behaviour without
//! anyone noticing. These tests pin the canonical Phoenix-AZ / MPPT&Opt
//! rows of three scenarios plus the clean control to the committed
//! artifact, and recompute one cell from scratch to prove the artifact
//! still matches the code.
//!
//! After an *intentional* behaviour change, regenerate with either
//! `BLESS=1 cargo test -p bench --test chaos_golden` or the faster
//! `cargo run --release -p bench --bin chaos_check`, then review the
//! diff like any golden update.

use std::path::{Path, PathBuf};

use bench::chaos::{load_scenarios, run_campaign, run_cell, scenarios_dir};
use bench::write_json;
use serde_json::Value;
use solarcore::Policy;

/// Absolute scalar tolerance — the artifact stores full-precision f64s,
/// so anything beyond rounding noise is a real divergence.
const TOLERANCE: f64 = 1e-9;

/// Committed campaign rows this test pins, as
/// `(scenario, retention, latency, degrade_enters)` for Phoenix-AZ under
/// MPPT&Opt. Latency `None` means the detector (correctly) never fired.
const PINNED: [(&str, f64, Option<u64>, u64); 4] = [
    ("clean_control", 1.0, None, 0),
    ("stuck_noon", 0.982_896_491_602_303, Some(1), 1),
    ("converter_derate_ramp", 0.838_451_170_630_942_8, None, 0),
    ("monsoon_cliff", 0.827_393_298_268_750_3, None, 0),
];

fn report_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/chaos_report.json")
}

/// Loads the committed report, regenerating it first under `BLESS=1`.
fn load_report() -> Value {
    if std::env::var_os("BLESS").is_some() {
        let scenarios = load_scenarios(&scenarios_dir()).expect("scenarios load");
        let report = run_campaign(&scenarios).expect("campaign runs");
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        write_json(&dir, "chaos_report", &report).expect("report written");
    }
    let raw = std::fs::read_to_string(report_path()).unwrap_or_else(|e| {
        panic!(
            "missing {}: {e}; run with BLESS=1 (or `cargo run --release -p bench \
             --bin chaos_check`) to create it",
            report_path().display()
        )
    });
    serde_json::from_str(&raw).expect("report parses")
}

/// The AZ / MPPT&Opt row for `scenario`, or a panic naming what's absent.
fn canonical_row<'a>(report: &'a Value, scenario: &str) -> &'a Value {
    report["rows"]
        .as_array()
        .expect("rows is an array")
        .iter()
        .find(|r| {
            r["scenario"].as_str() == Some(scenario)
                && r["site"].as_str() == Some("AZ")
                && r["policy"].as_str() == Some("MPPT&Opt")
        })
        .unwrap_or_else(|| panic!("no AZ/MPPT&Opt row for scenario {scenario}"))
}

#[test]
fn canonical_rows_match_pinned_scalars() {
    let report = load_report();
    for (scenario, retention, latency, enters) in PINNED {
        let row = canonical_row(&report, scenario);
        let got = row["ptp_retention"]
            .as_f64()
            .expect("retention is a number");
        assert!(
            (got - retention).abs() < TOLERANCE,
            "{scenario}: retention {got} drifted from pinned {retention}"
        );
        assert_eq!(
            row["detection_latency_minutes"].as_u64(),
            latency,
            "{scenario}: detection latency drifted"
        );
        assert_eq!(
            row["degrade_enters"].as_u64(),
            Some(enters),
            "{scenario}: degrade-enter count drifted"
        );
        assert_eq!(
            row["false_trips"].as_u64(),
            Some(0),
            "{scenario}: committed artifact records a false trip"
        );
    }
}

#[test]
fn control_rows_are_fully_transparent() {
    let report = load_report();
    let rows = report["rows"].as_array().expect("rows is an array");
    let controls: Vec<_> = rows
        .iter()
        .filter(|r| r["scenario"].as_str() == Some("clean_control"))
        .collect();
    assert!(!controls.is_empty(), "campaign lost its control rows");
    for row in controls {
        let retention = row["ptp_retention"]
            .as_f64()
            .expect("retention is a number");
        assert!(
            (retention - 1.0).abs() < TOLERANCE,
            "control retention {retention} is not exactly 1.0 — the armed-empty \
             plan is no longer bit-transparent"
        );
        assert_eq!(row["degrade_enters"].as_u64(), Some(0));
        assert_eq!(row["fault_rejects"].as_u64(), Some(0));
    }
}

#[test]
fn artifact_digest_is_pinned() {
    let report = load_report();
    assert_eq!(
        report["digest"].as_str(),
        Some("e1fd4595e9a2fb37"),
        "chaos report digest drifted — regenerate deliberately and re-pin"
    );
    assert_eq!(
        report["rows"].as_array().map(Vec::len),
        Some(24),
        "campaign cell count changed"
    );
}

/// Recomputes the stuck-sensor cell from the committed scenario file and
/// checks it against the committed artifact — proving the artifact still
/// matches the code, not just itself.
#[test]
fn recomputed_cell_matches_committed_artifact() {
    let scenarios = load_scenarios(&scenarios_dir()).expect("scenarios load");
    let stuck = scenarios
        .iter()
        .find(|s| s.plan.name() == "stuck_noon")
        .expect("canonical scenario present");
    let cell = run_cell(stuck, "AZ", Policy::MpptOpt).expect("cell runs");

    let report = load_report();
    let row = canonical_row(&report, "stuck_noon");
    let committed = row["ptp_retention"]
        .as_f64()
        .expect("retention is a number");
    assert!(
        (cell.ptp_retention - committed).abs() < TOLERANCE,
        "recomputed retention {} diverges from committed {committed}",
        cell.ptp_retention
    );
    assert_eq!(
        Some(cell.detection_latency_minutes),
        Some(row["detection_latency_minutes"].as_u64()),
        "recomputed detection latency diverges from committed"
    );
    assert_eq!(cell.false_trips, 0, "recomputed cell false-tripped");
}
