//! Golden pins for the committed campaign artifact
//! (`results/campaign_report.json`).
//!
//! The year-fleet campaign digest is the repo's broadest determinism
//! anchor: it folds 96 shards × every minute-level record of each
//! simulated day, so any engine, controller, weather or policy change
//! moves it. These tests pin the digest and shard count, verify the
//! committed `determinism` section recorded kill/resume byte-identity,
//! and recompute one shard from scratch to prove the artifact still
//! matches the code.
//!
//! After an *intentional* behaviour change, regenerate with either
//! `BLESS=1 cargo test -p bench --test campaign_golden` or the full
//! `cargo xtask campaign`, then review the diff like any golden update.

use std::path::{Path, PathBuf};

use bench::campaign::{compose_report, run, run_shard, CampaignSpec, RunOptions};
use bench::parallel::default_threads;
use serde_json::Value;

/// The pinned campaign digest (also `determinism.digest` in the
/// artifact). Drift means a simulation-visible behaviour change.
const PINNED_DIGEST: &str = "0058c774acafe8e7";

/// Shards in the committed year-fleet campaign: 4 sites × 12 months ×
/// 1 mix × 2 policies × 1 scenario.
const PINNED_SHARDS: usize = 96;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel)
}

/// The committed campaign spec.
fn committed_spec() -> CampaignSpec {
    let text = std::fs::read_to_string(repo_path("campaigns/year_fleet.toml"))
        .expect("campaigns/year_fleet.toml is committed");
    CampaignSpec::parse(&text).expect("committed spec parses")
}

/// Loads the committed report, regenerating it first under `BLESS=1`
/// (a serial run, a wide run, and a kill/resume cycle — the same three
/// schedules `cargo xtask campaign` performs).
fn load_report() -> Value {
    let path = repo_path("results/campaign_report.json");
    if std::env::var_os("BLESS").is_some() {
        let spec = committed_spec();
        let scenarios = repo_path("scenarios");
        let time = |opts: &RunOptions| {
            let start = std::time::Instant::now();
            let outcome = run(&spec, &scenarios, opts).expect("campaign runs");
            (outcome, start.elapsed().as_secs_f64())
        };
        let (serial, serial_s) = time(&RunOptions::default());
        let threads = default_threads().max(2);
        let (wide, wide_s) = time(&RunOptions {
            threads,
            ..RunOptions::default()
        });
        assert_eq!(serial.digest(), wide.digest(), "bless run is nondeterministic");
        let checkpoint = std::env::temp_dir()
            .join(format!("solarcore_campaign_bless_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&checkpoint);
        run(&spec, &scenarios, &RunOptions {
            threads,
            checkpoint: Some(checkpoint.clone()),
            kill_after: Some(serial.rows.len() / 2),
            ..RunOptions::default()
        })
        .expect("killed run returns");
        let resumed = run(&spec, &scenarios, &RunOptions {
            threads,
            checkpoint: Some(checkpoint.clone()),
            kill_after: None,
            ..RunOptions::default()
        })
        .expect("resume runs");
        let _ = std::fs::remove_file(&checkpoint);
        let shards = serial.rows.len();
        let report = compose_report(&serial, &resumed, &[(1, serial_s), (threads, wide_s)], shards);
        std::fs::write(&path, report.render()).expect("report written");
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {}: {e}; run with BLESS=1 (or `cargo xtask campaign`) to create it",
            path.display()
        )
    });
    serde_json::from_str(&raw).expect("report parses")
}

#[test]
fn artifact_digest_and_shape_are_pinned() {
    let report = load_report();
    assert_eq!(
        report["digest"].as_str(),
        Some(PINNED_DIGEST),
        "campaign digest drifted — regenerate deliberately and re-pin"
    );
    assert_eq!(
        report["rows"].as_array().map(Vec::len),
        Some(PINNED_SHARDS),
        "campaign shard count changed"
    );
    assert_eq!(report["campaign"].as_str(), Some("year_fleet"));
}

#[test]
fn artifact_is_bound_to_the_committed_spec() {
    let report = load_report();
    let expected = format!("{:016x}", committed_spec().digest());
    assert_eq!(
        report["spec_digest"].as_str(),
        Some(expected.as_str()),
        "campaigns/year_fleet.toml no longer matches the committed report"
    );
}

#[test]
fn determinism_section_recorded_resume_agreement() {
    let report = load_report();
    let det = &report["determinism"];
    assert_eq!(
        det["byte_identical"].as_bool(),
        Some(true),
        "the committed artifact records a kill/resume byte divergence"
    );
    assert_eq!(det["digest"].as_str(), report["digest"].as_str());
    assert_eq!(det["resumed_digest"].as_str(), report["digest"].as_str());
}

#[test]
fn scaling_section_is_well_formed() {
    let report = load_report();
    let scaling = report["scaling"].as_array().expect("scaling is an array");
    assert!(scaling.len() >= 2, "scaling must cover 1 and N threads");
    assert_eq!(scaling[0]["threads"].as_u64(), Some(1));
    for entry in scaling {
        assert!(entry["seconds"].as_f64().is_some_and(|s| s > 0.0));
        assert!(entry["shards_per_second"].as_f64().is_some_and(|r| r > 0.0));
    }
}

/// Recomputes the first shard (AZ / Jan / HM2 / MPPT&Opt / none) from
/// scratch and checks its digest and scalars against the committed row —
/// proving the artifact still matches the code, not just itself.
#[test]
fn recomputed_shard_matches_committed_artifact() {
    let spec = committed_spec();
    let shards = spec.shards(&repo_path("scenarios")).expect("shards enumerate");
    let (fresh, _fold) = run_shard(&shards[0], spec.days_per_month).expect("shard runs");

    let report = load_report();
    let row = &report["rows"].as_array().expect("rows is an array")[0];
    assert_eq!(row["site"].as_str(), Some(fresh.site.as_str()));
    assert_eq!(row["month"].as_str(), Some(fresh.month.as_str()));
    assert_eq!(
        row["digest"].as_str(),
        Some(format!("{:016x}", fresh.digest).as_str()),
        "recomputed shard digest diverges from the committed artifact"
    );
    let committed_ptp = row["ptp"].as_f64().expect("ptp is a number");
    assert_eq!(
        committed_ptp.to_bits(),
        fresh.ptp.to_bits(),
        "recomputed PTP diverges bit-wise from the committed artifact"
    );
}
