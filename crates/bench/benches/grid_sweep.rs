//! Policy-grid sweep throughput: one `(site, season, mix, day)` cell is
//! three batched day simulations plus the two battery baselines — the unit
//! of work `parallel_map` distributes in the full evaluation sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::grid::{GridConfig, PolicyGrid};
use solarenv::{Season, Site};
use workloads::Mix;

fn bench_grid_cell(c: &mut Criterion) {
    let config = GridConfig {
        sites: vec![Site::phoenix_az()],
        seasons: vec![Season::Jan],
        mixes: vec![Mix::hm2()],
        days: 1,
        threads: 1,
        telemetry_dir: None,
    };
    let mut group = c.benchmark_group("grid");
    group.sample_size(10);
    group.bench_function("one_cell_serial", |b| {
        b.iter(|| PolicyGrid::compute(&config))
    });
    group.finish();
}

criterion_group!(benches, bench_grid_cell);
criterion_main!(benches);
