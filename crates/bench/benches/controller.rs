//! Microbenchmarks of one SolarCore MPPT tracking invocation — the paper
//! reports < 5 ms tracking latency per 10-minute period on real hardware;
//! here we measure the simulated controller's own cost per invocation.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use archsim::{MultiCoreChip, VfLevel};
use powertrain::DcDcConverter;
use pv::units::{Celsius, Irradiance};
use pv::{CellEnv, PvArray};
use solarcore::{ControllerConfig, LoadTuner, Policy, SolarCoreController, TrackingRig};
use workloads::Mix;

fn bench_track(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller/track");
    for (label, g) in [
        ("full_sun", 950.0),
        ("half_sun", 500.0),
        ("overcast", 150.0),
    ] {
        group.bench_function(label, |b| {
            let array = PvArray::solarcore_default();
            let mut controller = SolarCoreController::new(ControllerConfig::paper_defaults())
                .expect("paper defaults are valid");
            let env = CellEnv::new(Irradiance::new(g), Celsius::new(42.0));
            b.iter_batched(
                || {
                    let mut chip = MultiCoreChip::new(&Mix::hm2());
                    chip.set_all_levels(VfLevel::lowest());
                    (
                        DcDcConverter::solarcore_default(),
                        chip,
                        LoadTuner::new(Policy::MpptOpt),
                    )
                },
                |(mut converter, mut chip, mut tuner)| {
                    controller.track(&mut TrackingRig {
                        array: &array,
                        env: black_box(env),
                        converter: &mut converter,
                        chip: &mut chip,
                        tuner: &mut tuner,
                    })
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_retrack_after_small_drift(c: &mut Criterion) {
    // Once converged, a re-track under slightly changed conditions should be
    // much cheaper than cold-start tracking. The converged state is cloned
    // per iteration; controllers are cheap to clone (config + sensor seed).
    let array = PvArray::solarcore_default();
    let sunny = CellEnv::new(Irradiance::new(800.0), Celsius::new(42.0));
    let drifted = CellEnv::new(Irradiance::new(760.0), Celsius::new(43.0));

    // Converge once outside the measurement loop.
    let mut controller = SolarCoreController::new(ControllerConfig::paper_defaults())
        .expect("paper defaults are valid");
    let mut chip = MultiCoreChip::new(&Mix::hm2());
    chip.set_all_levels(VfLevel::lowest());
    let mut converter = DcDcConverter::solarcore_default();
    let mut tuner = LoadTuner::new(Policy::MpptOpt);
    controller
        .track(&mut TrackingRig {
            array: &array,
            env: sunny,
            converter: &mut converter,
            chip: &mut chip,
            tuner: &mut tuner,
        })
        .expect("tracking succeeds on a consistent rig");

    c.bench_function("controller/retrack_after_drift", |b| {
        b.iter_batched(
            || (controller.clone(), converter.clone(), chip.clone()),
            |(mut controller, mut converter, mut chip)| {
                let mut tuner = LoadTuner::new(Policy::MpptOpt);
                controller.track(&mut TrackingRig {
                    array: &array,
                    env: black_box(drifted),
                    converter: &mut converter,
                    chip: &mut chip,
                    tuner: &mut tuner,
                })
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_track, bench_retrack_after_small_drift);
criterion_main!(benches);
