//! End-to-end day-simulation throughput per policy (601 simulated minutes
//! of weather → PV → controller → chip per iteration).

use criterion::{criterion_group, criterion_main, Criterion};

use pv::units::Watts;
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

fn bench_day_by_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("day_sim");
    group.sample_size(10);
    for (label, policy) in [
        ("mppt_opt", Policy::MpptOpt),
        ("mppt_rr", Policy::MpptRr),
        ("mppt_ic", Policy::MpptIc),
        ("fixed_75w", Policy::FixedPower(Watts::new(75.0))),
    ] {
        group.bench_function(label, |b| {
            let sim = DaySimulation::builder()
                .site(Site::phoenix_az())
                .season(Season::Jan)
                .mix(Mix::hm2())
                .policy(policy)
                .build()
                .expect("valid config");
            b.iter(|| sim.run())
        });
    }
    group.finish();
}

fn bench_day_by_weather(c: &mut Criterion) {
    // Irregular weather triggers more event-driven re-tracks, so the
    // controller cost scales with weather volatility.
    let mut group = c.benchmark_group("day_sim_weather");
    group.sample_size(10);
    for (label, site, season) in [
        ("regular_jan_az", Site::phoenix_az(), Season::Jan),
        ("irregular_jul_az", Site::phoenix_az(), Season::Jul),
        ("stormy_apr_nc", Site::elizabeth_city_nc(), Season::Apr),
    ] {
        group.bench_function(label, |b| {
            let sim = DaySimulation::builder()
                .site(site.clone())
                .season(season)
                .mix(Mix::h1())
                .policy(Policy::MpptOpt)
                .build()
                .expect("valid config");
            b.iter(|| sim.run())
        });
    }
    group.finish();
}

/// The cold-vs-warm comparison behind the PR's headline speedup claim:
///
/// * `uncached` — solver memo disabled, trace regenerated per run: the
///   pre-caching engine, every I-V solve cold.
/// * `cached_cold` — memo enabled but rebuilt per run (`run()` prepares a
///   fresh setup each call): measures the intra-run hit rate alone.
/// * `warm` — one prepared [`solarcore::SimSetup`] reused across runs:
///   trace decode amortized and the memo saturated, the steady state of a
///   batched sweep.
///
/// All three produce bit-identical `DayResult`s (asserted in
/// `tests/determinism.rs`); only the wall clock differs.
fn bench_day_cache_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("day_sim_cache");
    group.sample_size(10);
    let build = |cache: bool| {
        DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(Mix::hm2())
            .policy(Policy::MpptOpt)
            .solver_cache(cache)
            .build()
            .expect("valid config")
    };
    group.bench_function("uncached", |b| {
        let sim = build(false);
        b.iter(|| sim.run())
    });
    group.bench_function("cached_cold", |b| {
        let sim = build(true);
        b.iter(|| sim.run())
    });
    group.bench_function("warm", |b| {
        let sim = build(true);
        let setup = sim.prepare();
        b.iter(|| sim.run_prepared(&setup))
    });
    group.finish();
}

/// One three-policy batch over a shared setup vs. three standalone runs —
/// the amortization the policy grid exercises per cell.
fn bench_policy_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("day_sim_batch");
    group.sample_size(10);
    let policies = [Policy::MpptIc, Policy::MpptRr, Policy::MpptOpt];
    group.bench_function("three_policies_batched", |b| {
        let batch = DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(Mix::hm2())
            .build_batch(&policies)
            .expect("valid config");
        b.iter(|| batch.run_all())
    });
    group.bench_function("three_policies_standalone", |b| {
        let sims: Vec<DaySimulation> = policies
            .iter()
            .map(|&p| {
                DaySimulation::builder()
                    .site(Site::phoenix_az())
                    .season(Season::Jan)
                    .mix(Mix::hm2())
                    .policy(p)
                    .build()
                    .expect("valid config")
            })
            .collect();
        b.iter(|| sims.iter().map(DaySimulation::run).collect::<Vec<_>>())
    });
    group.finish();
}

/// Telemetry overhead on the day-sim hot loop:
///
/// * `disabled` — the default [`Telemetry::disabled`] handle: every
///   emission site is a branch on an empty `Option`.
/// * `null_sink` — a live handle draining into [`telemetry::NullSink`]:
///   records are built, stamped and discarded; this is the full
///   instrumentation cost without I/O.
/// * `jsonl_sink` — records additionally encoded to JSONL in memory, the
///   cost a `cargo xtask trace` run actually pays.
///
/// The acceptance bar for the subsystem is `null_sink` within 3 % of the
/// uninstrumented `day_sim` baseline (`cargo xtask bench` checks the
/// committed ratio).
fn bench_day_telemetry(c: &mut Criterion) {
    use std::cell::RefCell;
    use std::rc::Rc;
    use telemetry::{JsonlSink, NullSink, Telemetry};

    let mut group = c.benchmark_group("day_sim_telemetry");
    group.sample_size(10);
    let build = |tel: Telemetry| {
        DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jan)
            .mix(Mix::hm2())
            .policy(Policy::MpptOpt)
            .telemetry(tel)
            .build()
            .expect("valid config")
    };
    group.bench_function("disabled", |b| {
        let sim = build(Telemetry::disabled());
        b.iter(|| sim.run())
    });
    group.bench_function("null_sink", |b| {
        let sim = build(Telemetry::attached(Rc::new(RefCell::new(NullSink))));
        b.iter(|| sim.run())
    });
    group.bench_function("jsonl_sink", |b| {
        let sink = Rc::new(RefCell::new(JsonlSink::new()));
        let sim = build(Telemetry::attached(sink.clone()));
        b.iter(|| {
            sink.borrow_mut().clear();
            sim.run()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_day_by_policy,
    bench_day_by_weather,
    bench_day_cache_modes,
    bench_policy_batch,
    bench_day_telemetry
);
criterion_main!(benches);
