//! End-to-end day-simulation throughput per policy (601 simulated minutes
//! of weather → PV → controller → chip per iteration).

use criterion::{criterion_group, criterion_main, Criterion};

use pv::units::Watts;
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

fn bench_day_by_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("day_sim");
    group.sample_size(10);
    for (label, policy) in [
        ("mppt_opt", Policy::MpptOpt),
        ("mppt_rr", Policy::MpptRr),
        ("mppt_ic", Policy::MpptIc),
        ("fixed_75w", Policy::FixedPower(Watts::new(75.0))),
    ] {
        group.bench_function(label, |b| {
            let sim = DaySimulation::builder()
                .site(Site::phoenix_az())
                .season(Season::Jan)
                .mix(Mix::hm2())
                .policy(policy)
                .build()
                .expect("valid config");
            b.iter(|| sim.run())
        });
    }
    group.finish();
}

fn bench_day_by_weather(c: &mut Criterion) {
    // Irregular weather triggers more event-driven re-tracks, so the
    // controller cost scales with weather volatility.
    let mut group = c.benchmark_group("day_sim_weather");
    group.sample_size(10);
    for (label, site, season) in [
        ("regular_jan_az", Site::phoenix_az(), Season::Jan),
        ("irregular_jul_az", Site::phoenix_az(), Season::Jul),
        ("stormy_apr_nc", Site::elizabeth_city_nc(), Season::Apr),
    ] {
        group.bench_function(label, |b| {
            let sim = DaySimulation::builder()
                .site(site.clone())
                .season(season)
                .mix(Mix::h1())
                .policy(Policy::MpptOpt)
                .build()
                .expect("valid config");
            b.iter(|| sim.run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_day_by_policy, bench_day_by_weather);
criterion_main!(benches);
