//! Microbenchmarks of the PV electrical substrate: the I-V solver, the MPP
//! oracle, curve sampling, and datasheet fitting. These bound the cost of
//! every experiment (each simulated minute solves operating points).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pv::units::{Celsius, Irradiance, Volts};
use pv::{CellEnv, Datasheet, IvCurve, PvModule};

fn bench_current_solve(c: &mut Criterion) {
    let module = PvModule::bp3180n();
    let env = CellEnv::new(Irradiance::new(850.0), Celsius::new(48.0));
    c.bench_function("pv/current_at_36v", |b| {
        b.iter(|| {
            module
                .current_at(black_box(env), black_box(Volts::new(36.0)))
                .unwrap()
        })
    });
}

fn bench_mpp_search(c: &mut Criterion) {
    let module = PvModule::bp3180n();
    let env = CellEnv::new(Irradiance::new(700.0), Celsius::new(40.0));
    c.bench_function("pv/mpp_golden_section", |b| {
        b.iter(|| module.mpp(black_box(env)))
    });
}

fn bench_curve_sampling(c: &mut Criterion) {
    let module = PvModule::bp3180n();
    let env = CellEnv::stc();
    c.bench_function("pv/iv_curve_100pts", |b| {
        b.iter(|| IvCurve::sample(&module, black_box(env), 100))
    });
}

fn bench_datasheet_fit(c: &mut Criterion) {
    c.bench_function("pv/datasheet_fit_bp3180n", |b| {
        b.iter(|| Datasheet::bp3180n().fit().unwrap())
    });
}

criterion_group!(
    benches,
    bench_current_solve,
    bench_mpp_search,
    bench_curve_sampling,
    bench_datasheet_fit
);
criterion_main!(benches);
