//! Microbenchmarks of the PV electrical substrate: the I-V solver, the MPP
//! oracle, curve sampling, and datasheet fitting. These bound the cost of
//! every experiment (each simulated minute solves operating points).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pv::units::{Celsius, Irradiance, Volts};
use pv::{ArrayCache, CachedArray, CellEnv, Datasheet, IvCurve, PvArray, PvGenerator, PvModule};

fn bench_current_solve(c: &mut Criterion) {
    let module = PvModule::bp3180n();
    let env = CellEnv::new(Irradiance::new(850.0), Celsius::new(48.0));
    c.bench_function("pv/current_at_36v", |b| {
        b.iter(|| {
            module
                .current_at(black_box(env), black_box(Volts::new(36.0)))
                .unwrap()
        })
    });
}

fn bench_mpp_search(c: &mut Criterion) {
    let module = PvModule::bp3180n();
    let env = CellEnv::new(Irradiance::new(700.0), Celsius::new(40.0));
    c.bench_function("pv/mpp_golden_section", |b| {
        b.iter(|| module.mpp(black_box(env)))
    });
}

fn bench_curve_sampling(c: &mut Criterion) {
    let module = PvModule::bp3180n();
    let env = CellEnv::stc();
    c.bench_function("pv/iv_curve_100pts", |b| {
        b.iter(|| IvCurve::sample(&module, black_box(env), 100))
    });
}

fn bench_datasheet_fit(c: &mut Criterion) {
    c.bench_function("pv/datasheet_fit_bp3180n", |b| {
        b.iter(|| Datasheet::bp3180n().fit().unwrap())
    });
}

/// Coefficient hoisting: a [`pv::ModuleSolver`] held across an I-V sweep
/// resolves `Iph`/`I0`/`n·Vt` once, vs. `current_at` resolving per call.
fn bench_warm_solver_sweep(c: &mut Criterion) {
    let module = PvModule::bp3180n();
    let env = CellEnv::new(Irradiance::new(850.0), Celsius::new(48.0));
    let mut group = c.benchmark_group("pv_warm");
    group.bench_function("iv_sweep_40pts_cold", |b| {
        b.iter(|| {
            (0..40)
                .map(|k| {
                    module
                        .current_at(env, Volts::new(k as f64))
                        .map(|i| i.get())
                        .unwrap_or(0.0)
                })
                .sum::<f64>()
        })
    });
    group.bench_function("iv_sweep_40pts_warm", |b| {
        b.iter(|| {
            let solver = module.solver(env);
            (0..40)
                .map(|k| {
                    solver
                        .current_at(Volts::new(k as f64))
                        .map(|i| i.get())
                        .unwrap_or(0.0)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

/// Exact-key memoization: repeated `(G, T, V)` solves through a
/// [`CachedArray`] against the cold path (the perturb-and-observe pattern).
fn bench_memo_hits(c: &mut Criterion) {
    let array = PvArray::solarcore_default();
    let env = CellEnv::new(Irradiance::new(700.0), Celsius::new(40.0));
    let mut group = c.benchmark_group("pv_memo");
    group.bench_function("repeat_solve_cold", |b| {
        b.iter(|| array.current_at(black_box(env), black_box(Volts::new(34.0))))
    });
    group.bench_function("repeat_solve_memoized", |b| {
        let cache = ArrayCache::new();
        let cached = CachedArray::new(&array, &cache);
        b.iter(|| cached.current_at(black_box(env), black_box(Volts::new(34.0))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_current_solve,
    bench_mpp_search,
    bench_curve_sampling,
    bench_datasheet_fit,
    bench_warm_solver_sweep,
    bench_memo_hits
);
criterion_main!(benches);
