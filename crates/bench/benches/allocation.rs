//! Microbenchmarks of the per-core allocation machinery: TPR table
//! construction, scheduler picks, and the fixed-budget greedy fill.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use archsim::{MultiCoreChip, VfLevel};
use pv::units::Watts;
use solarcore::engine::allocate_budget;
use solarcore::policy::{LoadScheduler, RoundRobin, TprOptimized};
use solarcore::tpr::tpr_table;
use workloads::Mix;

fn mid_chip() -> MultiCoreChip {
    let mut chip = MultiCoreChip::new(&Mix::hm2());
    chip.set_all_levels(VfLevel::from_index(3).unwrap());
    chip
}

fn bench_tpr_table(c: &mut Criterion) {
    let chip = mid_chip();
    c.bench_function("alloc/tpr_table_8cores", |b| {
        b.iter(|| tpr_table(black_box(&chip)))
    });
}

fn bench_scheduler_picks(c: &mut Criterion) {
    let chip = mid_chip();
    c.bench_function("alloc/pick_tpr_optimized", |b| {
        let mut sched = TprOptimized;
        b.iter(|| sched.pick_increase(black_box(&chip)))
    });
    c.bench_function("alloc/pick_round_robin", |b| {
        let mut sched = RoundRobin::default();
        b.iter(|| sched.pick_increase(black_box(&chip)))
    });
}

fn bench_budget_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc/budget_fill");
    for budget in [40.0, 80.0, 120.0] {
        group.bench_function(format!("{budget:.0}w"), |b| {
            b.iter_batched(
                || MultiCoreChip::new(&Mix::hm2()),
                |mut chip| allocate_budget(&mut chip, Watts::new(budget)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tpr_table,
    bench_scheduler_picks,
    bench_budget_fill
);
criterion_main!(benches);
