//! Profile exporters and campaign wall-clock analysis.
//!
//! The profiler itself lives in [`telemetry::prof`]; this module turns its
//! span trees into artifacts:
//!
//! * **collapsed-stack** lines (`a;b;c <self_ns>` — the flamegraph input
//!   format), with a parser so tests can prove the export round-trips;
//! * **Chrome trace-event JSON** (`chrome://tracing` / Perfetto) from a
//!   profiler's raw [`TraceEvent`] log;
//! * the **`results/profile_report.json`** document: a *structural*
//!   section (tree shape, call counts, sim-minute attribution — byte-stable
//!   across machines and thread counts, the part `tdiff` and the golden
//!   render test pin) and a *machine* section quarantining everything
//!   wall-clock (span times, per-wave walls, pool utilization, critical
//!   path), mirroring the campaign report's `scaling`-section precedent.

use telemetry::prof::{ProfNode, ProfTree, TraceEvent};

use crate::output::Json;

/// Exact for every realistic duration/count (|n| ≤ 2^53 ns ≈ 104 days).
#[allow(clippy::cast_precision_loss)]
fn num_u64(n: u64) -> Json {
    debug_assert!(n < (1 << 53));
    Json::Num(n as f64)
}

// ---- collapsed-stack (flamegraph) export --------------------------------

/// One node of a collapsed-stack value tree: a frame name, the *self*
/// value attributed to exactly this call path, and name-sorted children.
/// [`stack_of`] derives one from a [`ProfTree`] (self wall nanoseconds);
/// [`parse_collapsed`] rebuilds one from exported lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackNode {
    /// Frame name (no `;`, spaces or newlines — enforced by the parser).
    pub name: String,
    /// Value attributed to this exact path (not including children).
    pub value: u64,
    /// Child frames, sorted by name.
    pub children: Vec<StackNode>,
}

/// Converts a span tree into a collapsed-stack value tree over **self**
/// wall time (`wall_ns` minus children — the flamegraph convention, where
/// a frame's total is implied by the sum over its subtree).
pub fn stack_of(tree: &ProfTree) -> Vec<StackNode> {
    fn conv(node: &ProfNode) -> StackNode {
        StackNode {
            name: node.name.clone(),
            value: node.self_ns(),
            children: node.children.iter().map(conv).collect(),
        }
    }
    tree.roots.iter().map(conv).collect()
}

/// Renders a collapsed-stack tree as flamegraph input lines
/// (`frame;frame;frame value`). A line is emitted for every node with a
/// non-zero self value and for every leaf (so zero-valued leaves survive
/// the round-trip); interior nodes whose self value is zero appear only as
/// path prefixes. Lines come out in depth-first name order.
pub fn collapse_lines(roots: &[StackNode]) -> Vec<String> {
    fn walk(node: &StackNode, prefix: &str, out: &mut Vec<String>) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        if node.value > 0 || node.children.is_empty() {
            out.push(format!("{path} {}", node.value));
        }
        for child in &node.children {
            walk(child, &path, out);
        }
    }
    let mut out = Vec::new();
    for root in roots {
        walk(root, "", &mut out);
    }
    out
}

/// Parses collapsed-stack lines back into the value tree
/// ([`collapse_lines`]'s inverse: export → parse is the identity, which
/// `bench/tests/profile.rs` property-tests). Repeated paths accumulate,
/// the flamegraph convention.
///
/// # Errors
///
/// Malformed lines: no value field, a non-integer value, or an empty
/// frame name.
pub fn parse_collapsed<S: AsRef<str>>(lines: &[S]) -> Result<Vec<StackNode>, String> {
    let mut roots: Vec<StackNode> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let line = line.as_ref();
        if line.trim().is_empty() {
            continue;
        }
        let (path, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: missing value field", i + 1))?;
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad value `{value}`", i + 1))?;
        let frames: Vec<&str> = path.split(';').collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("line {}: empty frame name", i + 1));
        }
        insert_path(&mut roots, &frames, value);
    }
    Ok(roots)
}

/// Adds `value` at `frames` (non-empty), creating nodes along the path and
/// keeping every sibling list sorted by name.
fn insert_path(level: &mut Vec<StackNode>, frames: &[&str], value: u64) {
    let Some((first, rest)) = frames.split_first() else {
        return;
    };
    let idx = match level.binary_search_by(|n| n.name.as_str().cmp(first)) {
        Ok(idx) => idx,
        Err(idx) => {
            level.insert(
                idx,
                StackNode {
                    name: (*first).to_owned(),
                    value: 0,
                    children: Vec::new(),
                },
            );
            idx
        }
    };
    if rest.is_empty() {
        level[idx].value = level[idx].value.saturating_add(value);
    } else {
        insert_path(&mut level[idx].children, rest, value);
    }
}

// ---- Chrome trace-event export -----------------------------------------

/// Renders a profiler's raw span log as a Chrome trace-event document
/// (the `chrome://tracing` / Perfetto JSON format: one complete `"X"`
/// event per span, microsecond timestamps, with the simulation minute and
/// stack depth carried in `args`).
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let trace_events = events
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("name", Json::str(e.name)),
                ("cat", Json::str("solarcore")),
                ("ph", Json::str("X")),
                ("ts", Json::Num(ns_to_us(e.start_ns))),
                ("dur", Json::Num(ns_to_us(e.dur_ns))),
                ("pid", Json::int(0)),
                ("tid", Json::int(0)),
                (
                    "args",
                    Json::obj(vec![
                        ("minute", Json::int(e.minute as usize)),
                        ("depth", Json::int(e.depth as usize)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("displayTimeUnit", Json::str("ms")),
        ("traceEvents", Json::Arr(trace_events)),
    ])
}

/// Trace-event timestamps are microseconds by convention.
#[allow(clippy::cast_precision_loss)]
fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

// ---- report sections ----------------------------------------------------

/// The **deterministic** half of a profile report: tree shape, call
/// counts and sim-minute attribution only — no wall-clock field anywhere,
/// so the rendered section is byte-identical across machines and thread
/// counts (`bench/tests/profile.rs` renders it twice to prove it).
pub fn structural_json(tree: &ProfTree) -> Json {
    fn node_json(node: &ProfNode) -> Json {
        Json::obj(vec![
            ("name", Json::str(node.name.as_str())),
            ("calls", num_u64(node.calls)),
            ("sim_minutes", num_u64(node.sim_minutes)),
            ("children", Json::Arr(node.children.iter().map(node_json).collect())),
        ])
    }
    Json::obj(vec![
        ("node_count", Json::int(tree.node_count())),
        ("spans", Json::Arr(tree.roots.iter().map(node_json).collect())),
    ])
}

/// The wall-time tree for the **machine-dependent** report section:
/// total and self nanoseconds per call path.
pub fn wall_json(tree: &ProfTree) -> Json {
    fn node_json(node: &ProfNode) -> Json {
        Json::obj(vec![
            ("name", Json::str(node.name.as_str())),
            ("wall_ns", num_u64(node.wall_ns)),
            ("self_ns", num_u64(node.self_ns())),
            ("children", Json::Arr(node.children.iter().map(node_json).collect())),
        ])
    }
    Json::Arr(tree.roots.iter().map(node_json).collect())
}

// ---- campaign wall-clock analysis --------------------------------------

/// Wall-clock measurements of one campaign wave (a `checkpoint_every`
/// batch of shards dispatched to the worker pool together).
#[derive(Debug, Clone, Copy)]
pub struct WaveWall {
    /// Shards the wave executed.
    pub shards: usize,
    /// Wall time of the whole wave (dispatch to last join), nanoseconds.
    pub wall_ns: u64,
    /// Sum of the wave's per-shard wall times, nanoseconds.
    pub sum_shard_ns: u64,
    /// The slowest shard of the wave, nanoseconds.
    pub max_shard_ns: u64,
}

/// Wall-clock profile of one campaign invocation: the merged span tree
/// plus per-shard and per-wave timings. Collected only when
/// [`RunOptions::profile`](crate::campaign::RunOptions) is set; lives
/// **outside** the deterministic report document
/// ([`CampaignOutcome::report_json`](crate::campaign::CampaignOutcome::report_json)
/// never reads it).
#[derive(Debug, Clone, Default)]
pub struct CampaignProfile {
    /// Per-shard span trees merged in canonical shard order.
    pub tree: ProfTree,
    /// `(shard index, wall ns)` for every shard this invocation executed.
    pub shard_walls: Vec<(usize, u64)>,
    /// Per-wave wall measurements, in execution order.
    pub waves: Vec<WaveWall>,
    /// Worker threads the pool ran with.
    pub threads: usize,
}

impl CampaignProfile {
    /// Total wall time across all waves, nanoseconds.
    pub fn total_wall_ns(&self) -> u64 {
        self.waves.iter().map(|w| w.wall_ns).sum()
    }

    /// Worker-pool utilization: shard work performed over pool capacity
    /// (`Σ shard walls / (threads × Σ wave walls)`). 1.0 = every worker
    /// busy for every wave; low values mean stragglers serialized waves.
    #[allow(clippy::cast_precision_loss)]
    pub fn pool_utilization(&self) -> f64 {
        let capacity = (self.threads.max(1) as u64).saturating_mul(self.total_wall_ns());
        if capacity == 0 {
            return 0.0;
        }
        let work: u64 = self.waves.iter().map(|w| w.sum_shard_ns).sum();
        work as f64 / capacity as f64
    }

    /// The campaign's critical path: the sum over waves of each wave's
    /// slowest shard — the floor any thread count must pay, since waves
    /// are barriers (the checkpoint writes between them).
    pub fn critical_path_ns(&self) -> u64 {
        self.waves.iter().map(|w| w.max_shard_ns).sum()
    }

    /// The machine-dependent report section: wall-time tree, flamegraph
    /// lines, per-wave timings and the pool analysis. Everything in here
    /// varies run to run; nothing in it is digest-relevant.
    pub fn machine_json(&self) -> Json {
        let waves = self
            .waves
            .iter()
            .map(|w| {
                Json::obj(vec![
                    ("shards", Json::int(w.shards)),
                    ("wall_ns", num_u64(w.wall_ns)),
                    ("sum_shard_ns", num_u64(w.sum_shard_ns)),
                    ("max_shard_ns", num_u64(w.max_shard_ns)),
                ])
            })
            .collect();
        let flame = collapse_lines(&stack_of(&self.tree))
            .into_iter()
            .map(Json::Str)
            .collect();
        Json::obj(vec![
            ("threads", Json::int(self.threads)),
            ("total_wall_ns", num_u64(self.total_wall_ns())),
            ("pool_utilization", Json::Num(self.pool_utilization())),
            ("critical_path_ns", num_u64(self.critical_path_ns())),
            ("waves", Json::Arr(waves)),
            ("wall_spans", wall_json(&self.tree)),
            ("flamegraph", Json::Arr(flame)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::prof::Profiler;

    fn sample_tree() -> ProfTree {
        let prof = Profiler::enabled();
        {
            let _shard = prof.scope("shard");
            {
                let _day = prof.scope("run_day");
                let _t = prof.scope("mppt_track");
            }
            let _day2 = prof.scope("run_day");
        }
        prof.tree()
    }

    #[test]
    fn collapse_round_trips_a_real_tree() {
        let stacks = stack_of(&sample_tree());
        let lines = collapse_lines(&stacks);
        assert!(lines.iter().any(|l| l.starts_with("shard;run_day;mppt_track ")));
        let parsed = parse_collapsed(&lines).unwrap();
        assert_eq!(parsed, stacks);
    }

    #[test]
    fn zero_valued_interior_nodes_survive_as_prefixes() {
        let roots = vec![StackNode {
            name: "a".into(),
            value: 0,
            children: vec![StackNode {
                name: "b".into(),
                value: 0,
                children: Vec::new(),
            }],
        }];
        let lines = collapse_lines(&roots);
        assert_eq!(lines, vec!["a;b 0"]);
        assert_eq!(parse_collapsed(&lines).unwrap(), roots);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_collapsed(&["no_value"]).is_err());
        assert!(parse_collapsed(&["a;b notanum"]).is_err());
        assert!(parse_collapsed(&["a;;b 3"]).is_err());
        assert!(parse_collapsed(&[" 3"]).is_err());
        let ok = parse_collapsed(&["a;b 3", "", "a;b 4"]).unwrap();
        assert_eq!(ok[0].children[0].value, 7, "repeated paths accumulate");
    }

    #[test]
    fn structural_section_has_no_wall_fields() {
        let doc = structural_json(&sample_tree()).render();
        assert!(doc.contains("\"calls\""));
        assert!(doc.contains("\"sim_minutes\""));
        assert!(
            !doc.contains("_ns") && !doc.contains("wall"),
            "no wall-clock field may leak: {doc}"
        );
    }

    #[test]
    fn chrome_trace_shape() {
        let prof = Profiler::with_trace_log(16);
        {
            let _s = prof.scope("run_day");
        }
        let doc = chrome_trace(&prof.take_events()).render();
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[0]["name"].as_str(), Some("run_day"));
        assert!(events[0]["args"]["depth"].as_u64().is_some());
    }

    #[test]
    fn pool_analysis_arithmetic() {
        let profile = CampaignProfile {
            tree: ProfTree::default(),
            shard_walls: vec![(0, 100), (1, 300), (2, 200), (3, 200)],
            waves: vec![
                WaveWall { shards: 2, wall_ns: 300, sum_shard_ns: 400, max_shard_ns: 300 },
                WaveWall { shards: 2, wall_ns: 200, sum_shard_ns: 400, max_shard_ns: 200 },
            ],
            threads: 2,
        };
        assert_eq!(profile.total_wall_ns(), 500);
        assert_eq!(profile.critical_path_ns(), 500);
        assert!((profile.pool_utilization() - 0.8).abs() < 1e-12);
        let machine = profile.machine_json().render();
        assert!(machine.contains("pool_utilization"));
        let empty = CampaignProfile::default();
        assert_eq!(empty.pool_utilization(), 0.0);
    }
}
