//! Wall-clock profile runner (`cargo xtask profile`).
//!
//! Full mode executes `campaigns/year_fleet.toml` once, profiled, at N
//! threads, and writes `results/profile_report.json` — two strictly
//! separated sections:
//!
//! - `structural`: the merged span tree's *shape* (names, call counts,
//!   simulated minutes). Deterministic: byte-identical at any thread
//!   count, so the artifact diffs cleanly across commits.
//! - `machine`: everything wall-clock — per-span nanoseconds, per-wave
//!   pool analysis (utilization, critical path), collapsed flamegraph
//!   stacks. Machine-dependent by nature; `tdiff` compares it with
//!   thresholds instead of bytes.
//!
//! The run's campaign digest must equal the pinned golden digest — the
//! profiler is bit-transparent or the run fails. Full mode also writes
//! two render-only artifacts under `target/`: `profile.folded`
//! (collapsed stacks for any flamegraph tool) and `profile_trace.json`
//! (Chrome `about:tracing` / Perfetto trace of one instrumented day).
//!
//! `--smoke` runs the four-shard smoke spec profiled at 1 and N threads,
//! proves the structural section is byte-identical across thread counts
//! and that profiling leaves the report bytes unchanged, and writes
//! nothing — the CI-sized variant wired into `cargo xtask ci`.

use std::error::Error;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::campaign::{run, CampaignOutcome, CampaignSpec, RunOptions};
use bench::output::Json;
use bench::parallel::default_threads;
use bench::profile::{chrome_trace, collapse_lines, parse_collapsed, stack_of, structural_json};
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use telemetry::Profiler;
use workloads::Mix;

/// The campaign digest `bench/tests/campaign_golden.rs` pins; the
/// profiled full run must reproduce it exactly.
const PINNED_CAMPAIGN_DIGEST: u64 = 0x0058_c774_acaf_e8e7;

/// The same four-shard smoke spec the campaign runner uses.
const SMOKE_SPEC: &str = r#"
[campaign]
name = "smoke"
sites = "AZ,TN"
months = "Jan"
days_per_month = 1
mixes = "HM2"
policies = "MPPT&Opt"
scenarios = "none,10_stuck_noon.toml"
checkpoint_every = 1
"#;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    match drive(smoke) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("profile: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel)
}

fn drive(smoke: bool) -> Result<bool, Box<dyn Error>> {
    if smoke {
        return smoke_gates();
    }

    let path = repo_path("campaigns/year_fleet.toml");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let spec = CampaignSpec::parse(&text)?;
    let scenarios = repo_path("scenarios");
    let threads = default_threads().max(2);
    println!("profile: {} — profiled at {threads} threads", path.display());

    let outcome = run(&spec, &scenarios, &RunOptions {
        threads,
        profile: true,
        ..RunOptions::default()
    })?;
    let Some(profile) = &outcome.profile else {
        eprintln!("profile: FAIL — profiled run carried no profile");
        return Ok(false);
    };

    let mut ok = true;
    let digest = outcome.digest();
    println!("profile: campaign digest {digest:016x}");
    if digest != PINNED_CAMPAIGN_DIGEST {
        eprintln!(
            "profile: FAIL — profiled digest {digest:016x} != pinned {PINNED_CAMPAIGN_DIGEST:016x} \
             (the profiler must be bit-transparent)"
        );
        ok = false;
    }
    let structural = structural_json(&profile.tree);
    if structural.render() != structural_json(&profile.tree).render() {
        eprintln!("profile: FAIL — structural section renders unstably");
        ok = false;
    }
    if !ok {
        return Ok(false);
    }

    let doc = Json::obj(vec![
        ("campaign", Json::str(&outcome.name)),
        ("digest", Json::hex(digest)),
        ("structural", structural),
        ("machine", profile.machine_json()),
    ]);
    let dir = repo_path("results");
    std::fs::create_dir_all(&dir)?;
    let report_path = dir.join("profile_report.json");
    std::fs::write(&report_path, doc.render())?;
    println!("profile: wrote {}", report_path.display());
    #[allow(clippy::cast_precision_loss)] // display only
    let critical_secs = profile.critical_path_ns() as f64 / 1e9;
    println!(
        "profile: pool utilization {:.3}, critical path {critical_secs:.1}s over {} waves",
        profile.pool_utilization(),
        profile.waves.len()
    );

    // Render-only artifacts (machine-dependent, never committed).
    let target = repo_path("target");
    std::fs::create_dir_all(&target)?;
    let folded: Vec<String> = collapse_lines(&stack_of(&profile.tree));
    std::fs::write(target.join("profile.folded"), folded.join("\n") + "\n")?;
    println!("profile: wrote {}", target.join("profile.folded").display());

    // One instrumented day with the bounded trace log on, for Chrome's
    // about:tracing / Perfetto.
    let prof = Profiler::with_trace_log(4096);
    DaySimulation::builder()
        .site(Site::phoenix_az())
        .season(Season::Jul)
        .day(0)
        .mix(Mix::hm2())
        .policy(Policy::MpptOpt)
        .profiler(prof.clone())
        .build()?
        .run()?;
    let trace = chrome_trace(&prof.take_events());
    std::fs::write(target.join("profile_trace.json"), trace.render())?;
    println!(
        "profile: wrote {}",
        target.join("profile_trace.json").display()
    );
    Ok(true)
}

/// The CI-sized gates: structural byte-stability across thread counts,
/// report-byte transparency, sane pool analysis, flamegraph round-trip.
fn smoke_gates() -> Result<bool, Box<dyn Error>> {
    let spec = CampaignSpec::parse(SMOKE_SPEC)?;
    let scenarios = repo_path("scenarios");
    let threads = default_threads().max(2);

    let profiled = |threads: usize| -> Result<CampaignOutcome, Box<dyn Error>> {
        run(&spec, &scenarios, &RunOptions {
            threads,
            profile: true,
            ..RunOptions::default()
        })
    };
    let narrow = profiled(1)?;
    let wide = profiled(threads)?;
    let plain = run(&spec, &scenarios, &RunOptions {
        threads,
        ..RunOptions::default()
    })?;

    let mut ok = true;
    let (Some(narrow_prof), Some(wide_prof)) = (&narrow.profile, &wide.profile) else {
        eprintln!("profile: FAIL — profiled smoke runs carried no profile");
        return Ok(false);
    };
    let narrow_doc = structural_json(&narrow_prof.tree).render();
    let wide_doc = structural_json(&wide_prof.tree).render();
    if narrow_doc != wide_doc {
        eprintln!("profile: FAIL — structural section differs between 1 and {threads} threads");
        ok = false;
    }
    if wide.report_json().render() != plain.report_json().render() {
        eprintln!("profile: FAIL — profiling changed the campaign report bytes");
        ok = false;
    }
    if wide_prof.tree.node_count() == 0 {
        eprintln!("profile: FAIL — profiled smoke campaign recorded no spans");
        ok = false;
    }
    let util = wide_prof.pool_utilization();
    if !(util > 0.0 && util <= 1.0) {
        eprintln!("profile: FAIL — pool utilization {util} out of (0, 1]");
        ok = false;
    }
    let lines = collapse_lines(&stack_of(&wide_prof.tree));
    match parse_collapsed(&lines) {
        Ok(parsed) => {
            if collapse_lines(&parsed) != lines {
                eprintln!("profile: FAIL — flamegraph lines do not round-trip");
                ok = false;
            }
        }
        Err(e) => {
            eprintln!("profile: FAIL — emitted flamegraph lines unparseable: {e}");
            ok = false;
        }
    }
    if ok {
        println!(
            "profile: OK — structural bytes stable at 1/{threads} threads, report \
             bytes untouched, {} spans, pool utilization {util:.3}",
            wide_prof.tree.node_count()
        );
    }
    Ok(ok)
}
