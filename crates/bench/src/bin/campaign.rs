//! Campaign engine runner (`cargo xtask campaign`).
//!
//! Full mode executes `campaigns/year_fleet.toml` — the 4-site × 12-month
//! fleet sweep — three ways and proves they agree bit-for-bit:
//!
//! 1. uninterrupted at 1 thread;
//! 2. uninterrupted at N threads;
//! 3. killed mid-campaign (checkpoint frontier mid-wave) and resumed.
//!
//! The deterministic report documents (rows + aggregate + digest) must be
//! **byte-identical** across all three; the run then writes
//! `results/campaign_report.json` — the deterministic document plus a
//! `determinism` section recording the three digests and a `scaling`
//! section recording shard throughput per thread count (wall-clock, the
//! one machine-dependent part of the artifact; the golden test pins the
//! digest, never the timings).
//!
//! `--smoke` runs a four-shard inline spec (including one armed fault
//! scenario) through the same kill/resume agreement check and writes
//! nothing — the CI-sized variant wired into `cargo xtask ci`.
//!
//! Full mode reports per-wave progress (completed/total shards, elapsed,
//! ETA) on stderr after every checkpoint wave; `--quiet` suppresses it.

use std::error::Error;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::campaign::{
    compose_report, run, CampaignOutcome, CampaignSpec, RunOptions, WaveProgress,
};
use bench::parallel::default_threads;
use bench::TextTable;

/// The smoke spec: two sites × one month each way, one armed scenario —
/// four shards, a few hundred milliseconds in release.
const SMOKE_SPEC: &str = r#"
[campaign]
name = "smoke"
sites = "AZ,TN"
months = "Jan"
days_per_month = 1
mixes = "HM2"
policies = "MPPT&Opt"
scenarios = "none,10_stuck_noon.toml"
checkpoint_every = 1
"#;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quiet = std::env::args().any(|a| a == "--quiet");
    match drive(smoke, quiet) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("campaign: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The repo's `campaigns/` directory (relative to this crate).
fn campaigns_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../campaigns")
}

/// The repo's `scenarios/` directory (relative to this crate).
fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// A scratch checkpoint path unique to this process.
fn scratch_checkpoint(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("solarcore_campaign_{}_{tag}.json", std::process::id()))
}

/// Wall-clock seconds of `f` — scaling measurement only; every
/// deterministic artifact byte is independent of this.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // lint:allow(determinism): wall-clock scaling measurement, never folded into deterministic output
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Per-wave progress line (stderr, so report pipes stay clean).
fn progress_line(p: &WaveProgress) {
    let eta = p.eta_secs.map_or_else(|| "--".to_owned(), |s| format!("{s:.0}s"));
    eprintln!(
        "campaign: {}/{} shards done ({} this run) — {:.1}s elapsed, eta {eta}",
        p.done, p.total, p.executed, p.elapsed_secs
    );
}

fn drive(smoke: bool, quiet: bool) -> Result<bool, Box<dyn Error>> {
    let progress: Option<fn(&WaveProgress)> = if quiet || smoke {
        None
    } else {
        Some(progress_line)
    };
    let (spec, label) = if smoke {
        (CampaignSpec::parse(SMOKE_SPEC)?, "smoke".to_owned())
    } else {
        let path = campaigns_dir().join("year_fleet.toml");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        (CampaignSpec::parse(&text)?, path.display().to_string())
    };
    let scenarios = scenarios_dir();
    let shards = spec.shards(&scenarios)?.len();
    println!("campaign: {label} — {shards} shards, checkpoint every {}", spec.checkpoint_every);

    // Uninterrupted reference runs at 1 and N threads. Floor N at 2 so
    // the wide run exercises concurrent scheduling even on one core.
    let threads = default_threads().max(2);
    let (serial, serial_s) = timed(|| {
        run(&spec, &scenarios, &RunOptions {
            threads: 1,
            progress,
            ..RunOptions::default()
        })
    });
    let serial = serial?;
    let (wide, wide_s) = timed(|| {
        run(&spec, &scenarios, &RunOptions {
            threads,
            progress,
            ..RunOptions::default()
        })
    });
    let wide = wide?;

    // Kill mid-campaign (mid-wave frontier), then resume from the
    // checkpoint. `kill_after` one past a wave boundary guarantees the
    // in-flight wave is lost and must re-execute.
    let checkpoint = scratch_checkpoint(if smoke { "smoke" } else { "full" });
    let _ = std::fs::remove_file(&checkpoint);
    let kill_at = (shards / 2).max(1);
    let killed = run(&spec, &scenarios, &RunOptions {
        threads,
        checkpoint: Some(checkpoint.clone()),
        kill_after: Some(kill_at),
        progress,
        ..RunOptions::default()
    })?;
    let resumed = run(&spec, &scenarios, &RunOptions {
        threads,
        checkpoint: Some(checkpoint.clone()),
        kill_after: None,
        progress,
        ..RunOptions::default()
    })?;
    let _ = std::fs::remove_file(&checkpoint);

    let ok = gates_hold(&serial, &wide, &killed, &resumed, shards);
    print_rows(&serial);
    println!(
        "campaign: digest {:016x} | 1-thread {serial_s:.2}s, {threads}-thread {wide_s:.2}s",
        serial.digest()
    );

    if !smoke && ok {
        let report = compose_report(&serial, &resumed, &[(1, serial_s), (threads, wide_s)], shards);
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("campaign_report.json");
        std::fs::write(&path, report.render())?;
        println!("campaign: wrote {}", path.display());
    }
    Ok(ok)
}

/// The agreement gates: every execution schedule must produce the same
/// bytes, and the resumed run must not have re-executed checkpointed work.
fn gates_hold(
    serial: &CampaignOutcome,
    wide: &CampaignOutcome,
    killed: &CampaignOutcome,
    resumed: &CampaignOutcome,
    shards: usize,
) -> bool {
    let mut ok = true;
    let reference = serial.report_json().render();
    for (label, outcome) in [("N-thread", wide), ("kill+resume", resumed)] {
        if outcome.report_json().render() != reference {
            eprintln!("campaign: FAIL — {label} report differs from the 1-thread bytes");
            ok = false;
        }
    }
    if serial.rows.len() != shards || resumed.rows.len() != shards {
        eprintln!("campaign: FAIL — incomplete campaign (expected {shards} rows)");
        ok = false;
    }
    if killed.complete {
        eprintln!("campaign: FAIL — kill switch did not abort the run");
        ok = false;
    }
    // Frontier discipline: the resumed invocation may only have executed
    // shards at/after the killed run's checkpoint frontier.
    if resumed.executed.iter().any(|&i| i < killed.checkpointed) {
        eprintln!(
            "campaign: FAIL — resume re-executed a shard before the frontier ({})",
            killed.checkpointed
        );
        ok = false;
    }
    if resumed.resumed_from != killed.checkpointed {
        eprintln!(
            "campaign: FAIL — resume restored {} rows, checkpoint held {}",
            resumed.resumed_from, killed.checkpointed
        );
        ok = false;
    }
    if ok {
        println!(
            "campaign: OK — byte-identical at 1/{} threads and across kill@{}+resume",
            default_threads().max(2),
            killed.checkpointed
        );
    }
    ok
}

/// Prints a per-(site, month) summary table (mean over the cell's rows).
fn print_rows(outcome: &CampaignOutcome) {
    let mut table = TextTable::new(["site", "month", "mix", "policy", "scenario", "ptp", "util"]);
    for row in outcome.rows.iter().take(24) {
        table.row([
            row.site.clone(),
            row.month.clone(),
            row.mix.clone(),
            row.policy.clone(),
            row.scenario.clone(),
            format!("{:.3e}", row.ptp),
            format!("{:.4}", row.utilization),
        ]);
    }
    print!("{table}");
    if outcome.rows.len() > 24 {
        println!("… {} more rows", outcome.rows.len() - 24);
    }
}

