//! Regenerates Figure 15 (operation duration vs power-transfer threshold).

fn main() {
    let _ = bench::experiments::fig15::run(std::path::Path::new("results"));
}
