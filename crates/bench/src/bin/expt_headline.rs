//! Recomputes the paper's headline claims.

use bench::grid::{GridConfig, PolicyGrid};
use workloads::Mix;

fn main() {
    let grid = PolicyGrid::compute(&GridConfig::default());
    let fixed = bench::experiments::fig16::compute(&[Mix::h1(), Mix::m2(), Mix::hm2(), Mix::l1()]);
    let _ = bench::experiments::headline::run(&grid, &fixed, std::path::Path::new("results"));
}
