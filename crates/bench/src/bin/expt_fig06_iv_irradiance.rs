//! Regenerates Figure 6 (I-V/P-V vs irradiance).

fn main() {
    let _ = bench::experiments::fig06::run(std::path::Path::new("results"));
}
