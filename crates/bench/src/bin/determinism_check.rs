//! Bitwise-reproducibility harness (`cargo xtask determinism`).
//!
//! Proves the evaluation pipeline is bit-identical across everything the
//! thread scheduler can perturb:
//!
//! 1. a full NREL-trace day simulation, run twice — every per-minute
//!    record (budget, drawn power, bus voltage, chip power, PTP, per-core
//!    V/F digest) must hash identically;
//! 2. the policy-grid sweep at 1 thread vs N threads;
//! 3. the same sweep with the input cell order shuffled;
//! 4. the telemetry stream — instrumentation must be bitwise transparent
//!    (a traced day hashes identically to an untraced one) and two traced
//!    runs must emit **byte-identical** JSONL;
//! 5. the fault-injection seams — a run armed with an **empty**
//!    [`FaultPlan`] must hash identically to a fully disarmed run *and*
//!    to the pinned pre-fault-subsystem baseline, proving the injection
//!    plumbing costs exactly zero bits when nothing is scheduled;
//! 6. the campaign engine — a small sharded campaign must digest
//!    identically at 1 thread, at N threads, and across a
//!    kill-mid-campaign/resume-from-checkpoint cycle;
//! 7. the wall-clock profiler — arming it must not move a single bit:
//!    a profiled day hashes to the pinned baseline, a profiled campaign
//!    renders the same report bytes as an unprofiled one, and a profiled
//!    chaos cell digests identically to its unprofiled twin.
//!
//! Exit status is non-zero on any divergence, so CI can gate on it.

use std::cell::RefCell;
use std::path::Path;
use std::process::ExitCode;
use std::rc::Rc;

use bench::campaign::{run as run_campaign, CampaignSpec, RunOptions};
use bench::chaos::{
    load_scenarios, report_digest, run_cell, run_cell_profiled, scenarios_dir, sites_for,
    CAMPAIGN_POLICIES,
};
use bench::determinism::{day_hash, grid_hash};
use bench::grid::{GridConfig, PolicyGrid};
use bench::parallel::default_threads;
use faults::FaultPlan;
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use telemetry::{JsonlSink, Profiler, Telemetry};
use workloads::Mix;

/// Day hash of the canonical AZ/Jul/HM2/MPPT&Opt run as of the PR that
/// introduced the fault subsystem — the bit-transparency anchor. Any
/// engine change that moves this moved *every* disarmed simulation.
const BASELINE_DAY_HASH: u64 = 0x1fa5_23b6_19a8_188b;

fn main() -> ExitCode {
    let mut ok = true;

    // 1. Day-simulation repeatability: same configuration, two runs.
    let day = |label: &str| -> Option<u64> {
        let result = DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jul)
            .day(0)
            .mix(Mix::hm2())
            .policy(Policy::MpptOpt)
            .build()
            .ok()?
            .run()
            .ok()?;
        let h = day_hash(&result);
        println!("determinism: day-sim {label:<8} hash {h:016x}");
        Some(h)
    };
    let baseline = day("run #1");
    match (baseline, day("run #2")) {
        (Some(a), Some(b)) if a == b => {}
        (Some(_), Some(_)) => {
            eprintln!("determinism: FAIL — repeated day simulations diverge");
            ok = false;
        }
        _ => {
            eprintln!("determinism: FAIL — day simulation did not run");
            ok = false;
        }
    }

    // 2/3. Grid sweep: serial vs parallel vs shuffled input order.
    let config = GridConfig::quick();
    let n = default_threads().max(2);

    let serial = {
        let mut c = config.clone();
        c.threads = 1;
        grid_hash(&PolicyGrid::compute(&c))
    };
    println!("determinism: grid threads=1       hash {serial:016x}");

    let parallel = {
        let mut c = config.clone();
        c.threads = n;
        grid_hash(&PolicyGrid::compute(&c))
    };
    println!("determinism: grid threads={n:<7} hash {parallel:016x}");

    let shuffled = {
        let mut c = config;
        c.threads = n;
        grid_hash(&PolicyGrid::compute_shuffled(&c, 0x5eed_501a_c07e))
    };
    println!("determinism: grid shuffled input  hash {shuffled:016x}");

    if serial != parallel {
        eprintln!("determinism: FAIL — 1-thread vs {n}-thread grids diverge");
        ok = false;
    }
    if serial != shuffled {
        eprintln!("determinism: FAIL — shuffled input order diverges");
        ok = false;
    }

    // 4. Telemetry: the instrumented run must compute the same day
    //    (transparency) and two instrumented runs must serialize the same
    //    bytes (stream reproducibility).
    let traced_day = |label: &str| -> Option<(u64, String)> {
        let sink = Rc::new(RefCell::new(JsonlSink::new()));
        let result = DaySimulation::builder()
            .site(Site::phoenix_az())
            .season(Season::Jul)
            .day(0)
            .mix(Mix::hm2())
            .policy(Policy::MpptOpt)
            .telemetry(Telemetry::attached(sink.clone()))
            .build()
            .ok()?
            .run()
            .ok()?;
        let h = day_hash(&result);
        let stream = sink.borrow().buffer().to_string();
        println!(
            "determinism: traced day {label:<8} hash {h:016x} ({} records)",
            stream.lines().count()
        );
        Some((h, stream))
    };
    match (day("untraced"), traced_day("run #1"), traced_day("run #2")) {
        (Some(plain), Some((h1, s1)), Some((h2, s2))) => {
            if h1 != plain {
                eprintln!("determinism: FAIL — telemetry instrumentation changed the simulation");
                ok = false;
            }
            if h1 != h2 || s1 != s2 {
                eprintln!("determinism: FAIL — traced runs emit diverging JSONL streams");
                ok = false;
            }
            if s1.is_empty() {
                eprintln!("determinism: FAIL — traced run emitted an empty stream");
                ok = false;
            }
        }
        _ => {
            eprintln!("determinism: FAIL — traced day simulation did not run");
            ok = false;
        }
    }

    // 5. Fault-seam transparency: arming an empty plan (which also arms
    //    detection and the degradation FSM) must not move a single bit,
    //    and the disarmed hash must still match the pinned baseline.
    let armed_empty = DaySimulation::builder()
        .site(Site::phoenix_az())
        .season(Season::Jul)
        .day(0)
        .mix(Mix::hm2())
        .policy(Policy::MpptOpt)
        .fault_plan(FaultPlan::empty("control"))
        .build()
        .ok()
        .and_then(|sim| sim.run().ok())
        .map(|result| day_hash(&result));
    match (baseline, armed_empty) {
        (Some(plain), Some(armed)) => {
            println!("determinism: armed-empty plan   hash {armed:016x}");
            if armed != plain {
                eprintln!("determinism: FAIL — empty fault plan perturbed the simulation");
                ok = false;
            }
            if plain != BASELINE_DAY_HASH {
                eprintln!(
                    "determinism: FAIL — day hash {plain:016x} drifted from the \
                     pinned baseline {BASELINE_DAY_HASH:016x}"
                );
                ok = false;
            }
        }
        _ => {
            eprintln!("determinism: FAIL — armed-empty day simulation did not run");
            ok = false;
        }
    }

    // 6. Campaign engine: same spec, three execution schedules — serial,
    //    wide, and killed-then-resumed — must render identical bytes.
    if !campaign_agrees() {
        ok = false;
    }

    // 7. Profiler transparency: arming the wall-clock profiler must not
    //    move a single bit of any deterministic artifact.
    if !profiling_transparent() {
        ok = false;
    }

    if ok {
        println!(
            "determinism: OK — bit-identical across threads, input order, telemetry and resume"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs a three-shard campaign serial, wide, and killed+resumed; `true`
/// when all three render byte-identical reports.
fn campaign_agrees() -> bool {
    let spec_text = "[campaign]\nname = \"determinism\"\nsites = \"AZ,CO,NC\"\n\
                     months = \"Jan\"\ncheckpoint_every = 1\n";
    let spec = match CampaignSpec::parse(spec_text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("determinism: FAIL — campaign spec rejected: {e}");
            return false;
        }
    };
    let scenarios = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let checkpoint = std::env::temp_dir()
        .join(format!("solarcore_determinism_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);
    let n = default_threads().max(2);

    let serial = run_campaign(&spec, &scenarios, &RunOptions {
        threads: 1,
        ..RunOptions::default()
    });
    let wide = run_campaign(&spec, &scenarios, &RunOptions {
        threads: n,
        ..RunOptions::default()
    });
    let killed = run_campaign(&spec, &scenarios, &RunOptions {
        threads: n,
        checkpoint: Some(checkpoint.clone()),
        // Two shards done before the abort: wave 1 checkpoints durably,
        // wave 2 is lost in flight — so the resume genuinely restores
        // rows *and* re-executes work.
        kill_after: Some(2),
        ..RunOptions::default()
    });
    let resumed = run_campaign(&spec, &scenarios, &RunOptions {
        threads: n,
        checkpoint: Some(checkpoint.clone()),
        kill_after: None,
        ..RunOptions::default()
    });
    let _ = std::fs::remove_file(&checkpoint);

    let (Ok(serial), Ok(wide), Ok(killed), Ok(resumed)) = (serial, wide, killed, resumed) else {
        eprintln!("determinism: FAIL — campaign run errored");
        return false;
    };
    println!(
        "determinism: campaign serial    digest {:016x}",
        serial.digest()
    );
    println!(
        "determinism: campaign threads={n} digest {:016x}",
        wide.digest()
    );
    println!(
        "determinism: campaign resumed@{} digest {:016x}",
        killed.checkpointed,
        resumed.digest()
    );
    let reference = serial.report_json().render();
    let mut ok = true;
    if wide.report_json().render() != reference {
        eprintln!("determinism: FAIL — campaign diverges across thread counts");
        ok = false;
    }
    if resumed.report_json().render() != reference {
        eprintln!("determinism: FAIL — resumed campaign diverges from uninterrupted run");
        ok = false;
    }
    if killed.complete || !resumed.complete {
        eprintln!("determinism: FAIL — campaign kill/resume cycle misbehaved");
        ok = false;
    }
    ok
}

/// §7 — the wall-clock profiler must be bit-transparent at every layer:
/// day simulation (hash vs the pinned baseline), campaign engine (report
/// bytes vs an unprofiled run), and chaos cell (row digest vs its
/// unprofiled twin). Each profiled run must also actually record spans,
/// so transparency is never vacuous.
fn profiling_transparent() -> bool {
    let mut ok = true;

    // Day simulation under an armed profiler.
    let prof = Profiler::enabled();
    let profiled_day = DaySimulation::builder()
        .site(Site::phoenix_az())
        .season(Season::Jul)
        .day(0)
        .mix(Mix::hm2())
        .policy(Policy::MpptOpt)
        .profiler(prof.clone())
        .build()
        .ok()
        .and_then(|sim| sim.run().ok())
        .map(|result| day_hash(&result));
    match profiled_day {
        Some(h) => {
            println!("determinism: profiled day       hash {h:016x}");
            if h != BASELINE_DAY_HASH {
                eprintln!(
                    "determinism: FAIL — profiler perturbed the day simulation \
                     ({h:016x} vs baseline {BASELINE_DAY_HASH:016x})"
                );
                ok = false;
            }
            if prof.tree().node_count() == 0 {
                eprintln!("determinism: FAIL — armed profiler recorded no spans");
                ok = false;
            }
        }
        None => {
            eprintln!("determinism: FAIL — profiled day simulation did not run");
            ok = false;
        }
    }

    // Campaign engine with and without profiling.
    let spec_text = "[campaign]\nname = \"determinism\"\nsites = \"AZ,CO,NC\"\n\
                     months = \"Jan\"\ncheckpoint_every = 1\n";
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let n = default_threads().max(2);
    let outcomes = CampaignSpec::parse(spec_text).ok().and_then(|spec| {
        let plain = run_campaign(&spec, &dir, &RunOptions {
            threads: n,
            ..RunOptions::default()
        })
        .ok()?;
        let profiled = run_campaign(&spec, &dir, &RunOptions {
            threads: n,
            profile: true,
            ..RunOptions::default()
        })
        .ok()?;
        Some((plain, profiled))
    });
    match outcomes {
        Some((plain, profiled)) => {
            println!(
                "determinism: profiled campaign  digest {:016x}",
                profiled.digest()
            );
            if profiled.report_json().render() != plain.report_json().render() {
                eprintln!("determinism: FAIL — profiling changed the campaign report bytes");
                ok = false;
            }
            match &profiled.profile {
                Some(p) if p.tree.node_count() > 0 => {}
                _ => {
                    eprintln!("determinism: FAIL — profiled campaign carried no span tree");
                    ok = false;
                }
            }
        }
        None => {
            eprintln!("determinism: FAIL — profiled campaign comparison did not run");
            ok = false;
        }
    }

    // One chaos cell with and without profiling.
    let cell_prof = Profiler::enabled();
    let cells = load_scenarios(&scenarios_dir()).ok().and_then(|scenarios| {
        let scenario = scenarios.first()?;
        let site = *sites_for(scenario).first()?;
        let plain = run_cell(scenario, site, CAMPAIGN_POLICIES[0]).ok()?;
        let profiled = run_cell_profiled(scenario, site, CAMPAIGN_POLICIES[0], &cell_prof).ok()?;
        Some((plain, profiled))
    });
    match cells {
        Some((plain, profiled)) => {
            let (a, b) = (report_digest(&[plain]), report_digest(&[profiled]));
            println!("determinism: profiled chaos     digest {b:016x}");
            if a != b {
                eprintln!("determinism: FAIL — profiling changed a chaos cell ({a:016x} vs {b:016x})");
                ok = false;
            }
            if cell_prof.tree().node_count() == 0 {
                eprintln!("determinism: FAIL — profiled chaos cell recorded no spans");
                ok = false;
            }
        }
        None => {
            eprintln!("determinism: FAIL — profiled chaos comparison did not run");
            ok = false;
        }
    }

    if ok {
        println!("determinism: profiler is bit-transparent (day, campaign, chaos)");
    }
    ok
}
