//! Regenerates Figure 20 (utilization vs effective duration buckets).

use bench::grid::{GridConfig, PolicyGrid};

fn main() {
    let grid = PolicyGrid::compute(&GridConfig::default());
    let _ = bench::experiments::fig20::run(&grid, std::path::Path::new("results"));
}
