//! Regenerates Table 2 (site solar potentials).

fn main() {
    let _ = bench::experiments::tab02::run(std::path::Path::new("results"));
}
