//! Regenerates Table 3 (battery-system tiers).

fn main() {
    let _ = bench::experiments::tab03::run(std::path::Path::new("results"));
}
