//! Runs the design-choice ablation suite (margin, tracking interval,
//! re-track band, sensor noise, DVFS granularity).

fn main() {
    let _ = bench::experiments::ablation::run(std::path::Path::new("results"));
}
