//! `cargo xtask trace`: golden-day telemetry report.
//!
//! Runs the Golden CO / Jan / HM2 / MPPT&Opt day with a JSONL sink
//! attached, writes the stream to
//! `results/telemetry_golden_co_jan_hm2.jsonl`, renders the per-period
//! tracking timeline, and cross-checks the stream's recomputed
//! tracking-error aggregate against the committed Table 7 artifact
//! (`results/tab07_tracking_error.json`) to within 1e-9. Exit status is
//! non-zero on any divergence, so CI can gate on it.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use bench::trace_report::{golden_tab07_cell, render, run_golden_day, GOLDEN_TOLERANCE};

fn main() -> ExitCode {
    let report = run_golden_day();
    print!("{}", render(&report));

    let out_path = Path::new("results/telemetry_golden_co_jan_hm2.jsonl");
    if let Some(parent) = out_path.parent() {
        if let Err(err) = fs::create_dir_all(parent) {
            eprintln!("trace: cannot create {}: {err}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(err) = fs::write(out_path, &report.stream) {
        eprintln!("trace: cannot write {}: {err}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", out_path.display());

    let mut ok = true;

    // The stream replay must agree with the engine's own aggregate and
    // with the day_summary record bit-for-bit.
    if report.stream_tracking_error.to_bits() != report.result_tracking_error.to_bits() {
        eprintln!(
            "trace: FAIL — stream replay {} != DayResult {}",
            report.stream_tracking_error, report.result_tracking_error
        );
        ok = false;
    }
    if report.summary_tracking_error.to_bits() != report.result_tracking_error.to_bits() {
        eprintln!(
            "trace: FAIL — day_summary {} != DayResult {}",
            report.summary_tracking_error, report.result_tracking_error
        );
        ok = false;
    }

    // Cross-check against the committed Table 7 artifact (geometric mean
    // over one day ⇒ agreement to float-transcendental noise, << 1e-9).
    match fs::read_to_string("results/tab07_tracking_error.json") {
        Ok(json) => {
            let golden = golden_tab07_cell(&json);
            let delta = (report.stream_tracking_error - golden).abs();
            if delta <= GOLDEN_TOLERANCE {
                println!(
                    "  tab07 cross-check: |{} - {golden}| = {delta:.3e} <= {GOLDEN_TOLERANCE:.0e}",
                    report.stream_tracking_error
                );
            } else {
                eprintln!(
                    "trace: FAIL — stream error {} vs tab07 {golden} (delta {delta:.3e})",
                    report.stream_tracking_error
                );
                ok = false;
            }
        }
        Err(err) => {
            eprintln!("trace: FAIL — cannot read results/tab07_tracking_error.json: {err}");
            ok = false;
        }
    }

    if ok {
        println!("trace: OK — stream reproduces the paper metric");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
