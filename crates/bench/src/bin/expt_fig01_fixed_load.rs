//! Regenerates Figure 1 (fixed-load utilization vs irradiance).

fn main() {
    let _ = bench::experiments::fig01::run(std::path::Path::new("results"));
}
