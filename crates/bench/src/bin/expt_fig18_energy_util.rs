//! Regenerates Figure 18 (average energy utilization per site/policy).

use bench::grid::{GridConfig, PolicyGrid};

fn main() {
    let grid = PolicyGrid::compute(&GridConfig::default());
    let _ = bench::experiments::fig18::run(&grid, std::path::Path::new("results"));
}
