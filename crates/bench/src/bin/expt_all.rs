//! Regenerates every table and figure of the paper's evaluation, sharing
//! the policy-grid sweep across the grid-based experiments.

use std::path::Path;

use bench::experiments::*;
use bench::grid::{GridConfig, PolicyGrid};

fn main() {
    let out = Path::new("results");
    println!("=== PV characterization ===");
    let _ = fig01::run(out);
    let _ = fig06::run(out);
    let _ = fig07::run(out);
    println!("=== Environment ===");
    let _ = tab02::run(out);
    let _ = tab03::run(out);
    println!("=== Tracking traces ===");
    let _ = fig13::run(solarenv::Season::Jan, out);
    let _ = fig13::run(solarenv::Season::Jul, out);
    println!("=== Fixed budgets ===");
    let _ = fig15::run(out);
    let fixed = fig16::run(out);
    println!("=== Policy grid (full sweep) ===");
    let grid = PolicyGrid::compute(&GridConfig::default());
    let _ = tab07::run(&grid, out);
    let _ = fig18::run(&grid, out);
    let _ = fig19::run(&grid, out);
    let _ = fig20::run(&grid, out);
    let _ = fig21::run(&grid, out);
    println!("=== Headline ===");
    let _ = headline::run(&grid, &fixed, out);
    println!("=== Ablations ===");
    let _ = ablation::run(out);
}
