//! Regenerates Table 7 (tracking error per site/season/workload).

use bench::grid::{GridConfig, PolicyGrid};

fn main() {
    let grid = PolicyGrid::compute(&GridConfig::default());
    let _ = bench::experiments::tab07::run(&grid, std::path::Path::new("results"));
}
