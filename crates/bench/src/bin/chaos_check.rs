//! Chaos campaign runner (`cargo xtask chaos`).
//!
//! Sweeps every scenario under `scenarios/` across the campaign's
//! `site × policy` grid, printing a retention/latency table and enforcing
//! the campaign's soundness gates:
//!
//! 1. the clean-control rows (armed-but-empty plan) must retain ≥ 99.9 %
//!    of the clean day's PTP — in practice exactly 100 %, since a plan
//!    with nothing scheduled is bit-transparent;
//! 2. no row anywhere may false-trip the degradation FSM before its
//!    scenario's first fault onset;
//! 3. every retention ratio must be finite and non-negative.
//!
//! The full campaign also rewrites `results/chaos_report.json` (canonical
//! row order + digest), the artifact `bench/tests/chaos_golden.rs` pins.
//! `--smoke` runs a two-scenario, one-site, one-policy subset with the
//! same gates and writes nothing — the CI-sized variant.
//!
//! Full mode reports per-cell progress (completed/total cells, elapsed,
//! ETA) on stderr; `--quiet` suppresses it.

use std::path::Path;
use std::process::ExitCode;

use bench::campaign::WaveProgress;
use bench::chaos::{
    load_scenarios, report_digest, run_campaign_profiled, run_cell, scenarios_dir, sites_for,
    ChaosCell, CAMPAIGN_POLICIES,
};
use bench::{write_json, TextTable};
use telemetry::Profiler;

/// Minimum PTP retention for the clean-control rows.
const CONTROL_RETENTION_FLOOR: f64 = 0.999;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quiet = std::env::args().any(|a| a == "--quiet");
    match run(smoke, quiet) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("chaos: error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Per-cell progress line (stderr, so report pipes stay clean).
fn progress_line(p: &WaveProgress) {
    let eta = p.eta_secs.map_or_else(|| "--".to_owned(), |s| format!("{s:.0}s"));
    eprintln!(
        "chaos: {}/{} cells done — {:.1}s elapsed, eta {eta}",
        p.done, p.total, p.elapsed_secs
    );
}

fn run(smoke: bool, quiet: bool) -> Result<bool, Box<dyn std::error::Error>> {
    let scenarios = load_scenarios(&scenarios_dir())?;
    if scenarios.is_empty() {
        return Err("no scenarios found under scenarios/".into());
    }

    let rows = if smoke {
        // CI-sized subset: the control plus the first faulted scenario,
        // each at its first applicable site, MPPT&Opt only.
        let mut rows = Vec::new();
        for scenario in scenarios.iter().take(2) {
            let site = sites_for(scenario)[0];
            rows.push(run_cell(scenario, site, CAMPAIGN_POLICIES[0])?);
        }
        rows
    } else {
        let progress: Option<fn(&WaveProgress)> = if quiet { None } else { Some(progress_line) };
        let report = run_campaign_profiled(&scenarios, &Profiler::disabled(), progress)?;
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let path = write_json(&dir, "chaos_report", &report)?;
        println!("chaos: wrote {}", path.display());
        report.rows
    };

    let mut table = TextTable::new([
        "scenario",
        "site",
        "policy",
        "retention",
        "latency",
        "enters",
        "rejects",
        "false",
    ]);
    for r in &rows {
        table.row([
            r.scenario.clone(),
            r.site.clone(),
            r.policy.clone(),
            format!("{:.4}", r.ptp_retention),
            r.detection_latency_minutes
                .map_or_else(|| "-".to_owned(), |m| format!("{m}m")),
            r.degrade_enters.to_string(),
            r.fault_rejects.to_string(),
            r.false_trips.to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "chaos: digest {:016x} ({} cells)",
        report_digest(&rows),
        rows.len()
    );

    Ok(gates_hold(&rows))
}

/// Applies the campaign soundness gates; prints every violation.
fn gates_hold(rows: &[ChaosCell]) -> bool {
    let mut ok = true;
    let mut control_rows = 0;
    for r in rows {
        let cell = format!("{}/{}/{}", r.scenario, r.site, r.policy);
        if !(r.ptp_retention.is_finite() && r.ptp_retention >= 0.0) {
            eprintln!(
                "chaos: FAIL — {cell}: retention {} is not sane",
                r.ptp_retention
            );
            ok = false;
        }
        if r.false_trips > 0 {
            eprintln!(
                "chaos: FAIL — {cell}: {} false degradation trip(s)",
                r.false_trips
            );
            ok = false;
        }
        if r.scenario == "clean_control" {
            control_rows += 1;
            if r.ptp_retention < CONTROL_RETENTION_FLOOR {
                eprintln!(
                    "chaos: FAIL — {cell}: control retention {:.6} below {CONTROL_RETENTION_FLOOR}",
                    r.ptp_retention
                );
                ok = false;
            }
            if r.degrade_enters > 0 {
                eprintln!("chaos: FAIL — {cell}: control run tripped degradation");
                ok = false;
            }
        }
    }
    if control_rows == 0 {
        eprintln!("chaos: FAIL — no clean_control rows in the campaign");
        ok = false;
    }
    if ok {
        println!(
            "chaos: OK — control transparent, zero false trips across {} cells",
            rows.len()
        );
    }
    ok
}
