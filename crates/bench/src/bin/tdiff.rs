//! Artifact diff CLI (`cargo xtask tdiff <a> <b>`).
//!
//! Loads two JSON artifacts, detects their kind from shape (campaign
//! report, profile report, or raw metric fold), and compares them
//! schema-aware via [`bench::tdiff::diff_artifacts`]: counters by
//! relative delta, histograms by their p50/p90/p99 quantile profile,
//! span trees structurally and by wall time with thresholds.
//!
//! Prints every finding as a table and exits non-zero when any finding
//! crossed a regression threshold — so CI can gate on
//! `tdiff results/campaign_report.json results/campaign_report.json`
//! style self-checks and on before/after comparisons.

use std::error::Error;
use std::process::ExitCode;

use bench::tdiff::{diff_artifacts, Finding};
use bench::TextTable;
use serde_json::Value;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with("--")).collect();
    let [a, b] = args.as_slice() else {
        eprintln!("usage: tdiff <a.json> <b.json>");
        return ExitCode::FAILURE;
    };
    match drive(a, b) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("tdiff: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<Value, Box<dyn Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok(serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?)
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

fn drive(a_path: &str, b_path: &str) -> Result<bool, Box<dyn Error>> {
    let (a, b) = (load(a_path)?, load(b_path)?);
    let report = diff_artifacts(&a, &b)?;

    if report.findings.is_empty() {
        println!(
            "tdiff: {} artifacts identical across {} comparisons",
            report.kind, report.compared
        );
        return Ok(true);
    }

    let mut table = TextTable::new(["metric", "a", "b", "status", "note"]);
    for Finding { metric, a, b, regression, note } in &report.findings {
        table.row([
            metric.clone(),
            fmt_value(*a),
            fmt_value(*b),
            if *regression { "REGRESSION" } else { "drift" }.to_owned(),
            note.clone(),
        ]);
    }
    print!("{table}");
    let regressions = report.regressions();
    println!(
        "tdiff: {} artifacts — {} comparisons, {} findings, {} regressions",
        report.kind,
        report.compared,
        report.findings.len(),
        regressions
    );
    Ok(regressions == 0)
}
