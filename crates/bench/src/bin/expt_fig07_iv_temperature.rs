//! Regenerates Figure 7 (I-V/P-V vs temperature).

fn main() {
    let _ = bench::experiments::fig07::run(std::path::Path::new("results"));
}
