//! Regenerates Figure 14 (MPP tracking traces, irregular weather, Jul @ AZ).

fn main() {
    let _ = bench::experiments::fig13::run(solarenv::Season::Jul, std::path::Path::new("results"));
}
