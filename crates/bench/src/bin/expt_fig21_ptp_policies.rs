//! Regenerates Figure 21 (normalized PTP per policy vs battery bounds).

use bench::grid::{GridConfig, PolicyGrid};

fn main() {
    let grid = PolicyGrid::compute(&GridConfig::default());
    let _ = bench::experiments::fig21::run(&grid, std::path::Path::new("results"));
}
