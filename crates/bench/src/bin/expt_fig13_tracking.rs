//! Regenerates Figure 13 (MPP tracking traces, regular weather, Jan @ AZ).

fn main() {
    let _ = bench::experiments::fig13::run(solarenv::Season::Jan, std::path::Path::new("results"));
}
