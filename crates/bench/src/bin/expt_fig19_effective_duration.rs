//! Regenerates Figure 19 (effective operation duration per weather pattern).

use bench::grid::{GridConfig, PolicyGrid};

fn main() {
    let grid = PolicyGrid::compute(&GridConfig::default());
    let _ = bench::experiments::fig19::run(&grid, std::path::Path::new("results"));
}
