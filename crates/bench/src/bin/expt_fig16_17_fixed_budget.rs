//! Regenerates Figures 16 & 17 (energy and PTP under fixed budgets).

fn main() {
    let _ = bench::experiments::fig16::run(std::path::Path::new("results"));
}
