//! Tiny parallel-map helper over std scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `inputs` across `threads` worker threads,
/// returning outputs in input order.
///
/// The experiment sweeps are embarrassingly parallel (hundreds of
/// independent day simulations), so a static grab-next-index scheme over
/// [`std::thread::scope`] is enough — no need for a work-stealing pool
/// dependency.
pub fn parallel_map<T, U, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1);
    let n = inputs.len();
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let out = f(&inputs[idx]);
                match slots.lock() {
                    Ok(mut guard) => guard[idx] = Some(out),
                    // A poisoned lock means a sibling worker panicked while
                    // writing its slot; the scope is about to propagate that
                    // panic, so this worker just stops.
                    Err(_) => break,
                }
            });
        }
    });

    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            slot.unwrap_or_else(|| unreachable!("index {idx} processed by a worker"))
        })
        .collect()
}

/// A default worker-thread count: the available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_input() {
        let out = parallel_map(vec![5], 1, |x| x + 1);
        assert_eq!(out, vec![6]);
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
