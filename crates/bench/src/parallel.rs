//! Tiny parallel-map helper over std scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item of `inputs` across `threads` worker threads,
/// returning outputs in input order.
///
/// The experiment sweeps are embarrassingly parallel (hundreds of
/// independent day simulations), so a static grab-next-index scheme over
/// [`std::thread::scope`] is enough — no need for a work-stealing pool
/// dependency. Each worker accumulates `(index, output)` pairs in a local
/// buffer — no shared slot vector, no lock — and the buffers are merged
/// and re-ordered by input index after the workers join, so the caller
/// sees input order no matter how the scheduler interleaved the work.
pub fn parallel_map<T, U, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = inputs.len();
    let workers = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);

    let mut pairs: Vec<(usize, U)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, f(&inputs[idx])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => pairs.extend(local),
                // Propagate a worker panic with its original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    pairs.sort_unstable_by_key(|(idx, _)| *idx);
    pairs.into_iter().map(|(_, out)| out).collect()
}

/// A default worker-thread count: the available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty_input() {
        let out = parallel_map(vec![5], 1, |x| x + 1);
        assert_eq!(out, vec![6]);
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn order_survives_uneven_work() {
        // Make early items slow so late items finish first on other
        // threads; output must still be input-ordered.
        let out = parallel_map((0..32).collect::<Vec<u64>>(), 8, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(vec![1, 2, 3], 2, |&x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
