//! Result serialization, canonical JSON rendering, and plain-text tables.
//!
//! Two JSON paths live here. [`write_json`] serializes through serde for
//! the figure/table experiment artifacts. [`Json`] is the *canonical*
//! renderer (same contract as `xtask/src/jsonout.rs`, which bench cannot
//! depend on): sorted object keys, shortest-roundtrip float formatting,
//! fixed two-space indentation, trailing newline. The campaign engine's
//! checkpoints and `results/campaign_report.json` go through [`Json`]
//! because resume-bit-identity needs a byte-stable encoding whose floats
//! parse back to the exact same `f64` bits.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Serializes `value` as pretty JSON into `<dir>/<name>.json`, creating the
/// directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn write_json<T: Serialize>(
    dir: &Path,
    name: &str,
    value: &T,
) -> Result<PathBuf, Box<dyn std::error::Error>> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// A JSON value with deterministic, byte-stable rendering.
///
/// Object keys render sorted (the [`BTreeMap`] is the only object
/// representation), floats use Rust's shortest-roundtrip `{}` formatting
/// (integral values render without a fraction; non-finite become `null`),
/// and indentation is fixed at two spaces — so two renders of the same
/// value are byte-identical on every platform.
///
/// ```
/// use bench::output::Json;
///
/// let doc = Json::obj(vec![
///     ("zeta", Json::int(1)),
///     ("alpha", Json::Num(0.5)),
/// ]);
/// assert_eq!(doc.render(), "{\n  \"alpha\": 0.5,\n  \"zeta\": 1\n}\n");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null` (JSON has no ±∞/NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array, in insertion order.
    Arr(Vec<Json>),
    /// An object; keys render sorted because the map is ordered.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An object builder from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| ≤ 2^53).
    #[allow(clippy::cast_precision_loss)]
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// A `u64` rendered as a fixed-width hex string — the canonical form
    /// for FNV-1a digests, which do not fit an `f64` exactly.
    pub fn hex(n: u64) -> Json {
        Json::Str(format!("{n:016x}"))
    }

    /// Renders the value as a pretty-printed document with a trailing
    /// newline — the canonical byte form of every committed report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Canonical float formatting: integral values render without a fraction,
/// everything else uses the shortest-roundtrip `{}` form; non-finite
/// values become `null`.
#[allow(clippy::float_cmp)]
fn write_num(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // |v| < 1e15 keeps the cast exact, well inside i64 range.
        #[allow(clippy::cast_possible_truncation)]
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A minimal fixed-width text table for terminal output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["site", "kWh"]);
        t.row(["AZ", "6.1"]).row(["Golden, CO", "5.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("site"));
        assert!(lines[2].starts_with("AZ"));
        assert!(lines[3].starts_with("Golden, CO"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn canonical_keys_render_sorted_regardless_of_insertion_order() {
        let a = Json::obj(vec![("zeta", Json::int(1)), ("alpha", Json::int(2))]);
        let b = Json::obj(vec![("alpha", Json::int(2)), ("zeta", Json::int(1))]);
        assert_eq!(a.render(), b.render());
        assert!(a.render().find("alpha") < a.render().find("zeta"));
    }

    #[test]
    fn canonical_floats_round_trip_exactly() {
        // Shortest-roundtrip rendering followed by a parse must recover
        // the exact bits — the property checkpoint/resume relies on.
        for v in [0.7407, 1.0 / 3.0, 77.65432109876, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_num(&mut s, v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let mut s = String::new();
        write_num(&mut s, 27.0);
        assert_eq!(s, "27");
        s.clear();
        write_num(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn hex_digests_are_fixed_width() {
        assert_eq!(Json::hex(0x1f).render(), "\"000000000000001f\"\n");
        assert_eq!(Json::hex(u64::MAX).render(), "\"ffffffffffffffff\"\n");
    }

    #[test]
    fn canonical_strings_escape_controls_and_quotes() {
        let j = Json::str("a\"b\\c\nd");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn write_json_roundtrips() {
        let dir = std::env::temp_dir().join("solarcore_bench_test");
        let path = write_json(&dir, "t", &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        let _ = std::fs::remove_file(path);
    }
}
