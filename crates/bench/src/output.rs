//! Result serialization and plain-text table rendering.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Serializes `value` as pretty JSON into `<dir>/<name>.json`, creating the
/// directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem and serialization errors.
pub fn write_json<T: Serialize>(
    dir: &Path,
    name: &str,
    value: &T,
) -> Result<PathBuf, Box<dyn std::error::Error>> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

/// A minimal fixed-width text table for terminal output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["site", "kWh"]);
        t.row(["AZ", "6.1"]).row(["Golden, CO", "5.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("site"));
        assert!(lines[2].starts_with("AZ"));
        assert!(lines[3].starts_with("Golden, CO"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn write_json_roundtrips() {
        let dir = std::env::temp_dir().join("solarcore_bench_test");
        let path = write_json(&dir, "t", &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        let _ = std::fs::remove_file(path);
    }
}
