//! Year-scale multi-site campaign engine: sharded execution with
//! checkpoint/resume and streaming telemetry aggregation.
//!
//! The paper's evaluation spans four representative days; the ROADMAP's
//! north star asks for sweeps "as fast as the hardware allows" over far
//! longer horizons. This module runs them: a [`CampaignSpec`] (hand-rolled
//! TOML-ish text, same grammar family as `scenarios/*.toml`) enumerates
//! `site × month × workload-mix × policy × fault-scenario` **shards**, each
//! shard simulating a run of consecutive days ([`solarenv::DayRange`])
//! that share one warm PV solver memo
//! ([`SimSetup::into_cache`](solarcore::engine::SimSetup::into_cache) →
//! [`DaySimulation::prepare_with_cache`](solarcore::DaySimulation::prepare_with_cache)).
//!
//! **Scheduling.** Shards run on [`parallel_map`]'s lock-free
//! grab-next-index pool — idle workers steal the next unclaimed shard —
//! and outputs always come back in input order, so the report is
//! byte-stable at any thread count.
//!
//! **Checkpoint/resume.** Shards execute in waves of
//! `checkpoint_every`; after each wave the engine rewrites the checkpoint
//! (canonical JSON via [`Json`]: sorted keys, shortest-roundtrip floats,
//! so every `f64` parses back to the exact same bits). A killed campaign
//! resumes from the last full wave and re-executes only the in-flight
//! wave; the finished report is byte-identical to an uninterrupted run's —
//! `bench/tests/campaign_resume.rs` and `determinism_check` §6 enforce it.
//!
//! **Aggregation.** Each shard folds its day-end telemetry snapshots into
//! a [`MetricFold`]; the engine merges per-shard folds into one campaign
//! aggregate with the associative `merge`, so memory stays O(shards in
//! flight), never O(campaign).

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use faults::{parse_scenario, FaultPlan};
use serde_json::Value;
use solarcore::telemetry::{
    schema, NEWTON_ITER_BOUNDS, RATIO_K_BOUNDS, TPR_MOVE_BOUNDS, TRACK_BOUNDS,
};
use solarcore::{DaySimulation, Policy};
use solarenv::{DayRange, Month, Site};
use telemetry::{CounterSnapshot, HistogramSnapshot, MetricFold, ProfTree, Profiler, Stopwatch, Telemetry};
use workloads::Mix;

use crate::determinism::{day_hash, CanonicalHasher};
use crate::output::Json;
use crate::parallel::parallel_map;
use crate::profile::{CampaignProfile, WaveWall};

/// A campaign configuration error, with the 1-based line number for
/// parse-time failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The spec text failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The spec parsed but named something invalid (unknown site, mix,
    /// policy, …) or a checkpoint was unusable.
    Invalid {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Parse { line, reason } => {
                write!(f, "campaign spec line {line}: {reason}")
            }
            CampaignError::Invalid { reason } => write!(f, "invalid campaign: {reason}"),
        }
    }
}

impl Error for CampaignError {}

fn perr<T>(line: usize, reason: impl Into<String>) -> Result<T, CampaignError> {
    Err(CampaignError::Parse {
        line,
        reason: reason.into(),
    })
}

fn invalid(reason: impl Into<String>) -> CampaignError {
    CampaignError::Invalid {
        reason: reason.into(),
    }
}

/// A parsed campaign specification.
///
/// The text format is one `[campaign]` block of `key = value` lines —
/// double-quoted strings or bare integers, `#` comments, exactly the
/// `scenarios/*.toml` grammar. List-valued keys are comma-separated
/// inside one string; `months` additionally accepts inclusive ranges.
///
/// ```
/// use bench::campaign::CampaignSpec;
///
/// let spec = CampaignSpec::parse(r#"
/// [campaign]
/// name = "smoke"
/// sites = "AZ,TN"          # site codes
/// months = "Jan-Feb"       # ranges and/or single months
/// days_per_month = 1
/// mixes = "HM2"
/// policies = "MPPT&Opt"
/// scenarios = "none"       # "none" = disarmed; else a scenarios/ file
/// checkpoint_every = 2
/// "#).unwrap();
/// let shards = spec.shards(std::path::Path::new(".")).unwrap();
/// assert_eq!(shards.len(), 4); // 2 sites × 2 months × 1 × 1 × 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (report/checkpoint identity).
    pub name: String,
    /// Site codes to sweep (`"AZ"`, `"CO"`, `"NC"`, `"TN"`).
    pub sites: Vec<String>,
    /// Months to sweep, in calendar order of appearance.
    pub months: Vec<Month>,
    /// Consecutive weather realizations simulated per (site, month) cell.
    pub days_per_month: u32,
    /// Workload mix names.
    pub mixes: Vec<String>,
    /// Policy labels (`"MPPT&IC"`, `"MPPT&RR"`, `"MPPT&Opt"`,
    /// `"MPPT&Chip"`; `"Fixed-Power"` is rejected — it needs a budget the
    /// spec grammar does not carry).
    pub policies: Vec<String>,
    /// Fault scenarios: `"none"` (disarmed) or `scenarios/` file names.
    pub scenarios: Vec<String>,
    /// Shards per checkpoint wave.
    pub checkpoint_every: usize,
}

impl CampaignSpec {
    /// Parses and validates a spec.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Parse`] with a line number for malformed text,
    /// [`CampaignError::Invalid`] for unknown sites/mixes/policies or
    /// out-of-range numbers.
    pub fn parse(text: &str) -> Result<CampaignSpec, CampaignError> {
        let mut entries: Vec<(usize, String, String)> = Vec::new();
        let mut in_campaign = false;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[campaign]" {
                if in_campaign {
                    return perr(line_no, "[campaign] must appear once");
                }
                in_campaign = true;
                continue;
            }
            if line.starts_with('[') {
                return perr(line_no, "unknown block header (expected [campaign])");
            }
            let Some((key, value)) = line.split_once('=') else {
                return perr(line_no, "expected `key = value`");
            };
            if !in_campaign {
                return perr(line_no, "key before the [campaign] header");
            }
            entries.push((line_no, key.trim().to_owned(), value.trim().to_owned()));
        }

        let mut name = None;
        let mut sites = vec!["AZ".to_owned(), "CO".to_owned(), "NC".to_owned(), "TN".to_owned()];
        let mut months = Month::ALL.to_vec();
        let mut days_per_month = 1u32;
        let mut mixes = vec!["HM2".to_owned()];
        let mut policies = vec!["MPPT&Opt".to_owned()];
        let mut scenarios = vec!["none".to_owned()];
        let mut checkpoint_every = 8usize;
        for (line_no, key, value) in &entries {
            match key.as_str() {
                "name" => name = Some(string_value(*line_no, value)?),
                "sites" => sites = list_value(*line_no, value)?,
                "months" => months = months_value(*line_no, value)?,
                "days_per_month" => {
                    days_per_month = narrow(*line_no, int_value(*line_no, value)?)?;
                }
                "mixes" => mixes = list_value(*line_no, value)?,
                "policies" => policies = list_value(*line_no, value)?,
                "scenarios" => scenarios = list_value(*line_no, value)?,
                "checkpoint_every" => {
                    checkpoint_every = narrow(*line_no, int_value(*line_no, value)?)?;
                }
                _ => return perr(*line_no, format!("unknown [campaign] key `{key}`")),
            }
        }
        let Some(name) = name else {
            return perr(1, "[campaign] block must set `name`");
        };

        let spec = CampaignSpec {
            name,
            sites,
            months,
            days_per_month,
            mixes,
            policies,
            scenarios,
            checkpoint_every,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), CampaignError> {
        if self.days_per_month == 0 {
            return Err(invalid("days_per_month must be at least 1"));
        }
        if self.checkpoint_every == 0 {
            return Err(invalid("checkpoint_every must be at least 1"));
        }
        for field in [
            ("sites", &self.sites),
            ("mixes", &self.mixes),
            ("policies", &self.policies),
            ("scenarios", &self.scenarios),
        ] {
            if field.1.is_empty() {
                return Err(invalid(format!("`{}` must not be empty", field.0)));
            }
        }
        if self.months.is_empty() {
            return Err(invalid("`months` must not be empty"));
        }
        for code in &self.sites {
            site_from_code(code)?;
        }
        for mix in &self.mixes {
            if Mix::by_name(mix).is_none() {
                return Err(invalid(format!("unknown mix `{mix}`")));
            }
        }
        for policy in &self.policies {
            policy_from_label(policy)?;
        }
        Ok(())
    }

    /// Canonical FNV-1a digest over every shard-defining spec field
    /// (everything except `checkpoint_every`, which only groups waves and
    /// cannot change the final report). A checkpoint records this digest
    /// and refuses to resume under a different spec.
    pub fn digest(&self) -> u64 {
        let mut h = CanonicalHasher::default();
        h.str(&self.name);
        h.u64(self.sites.len() as u64);
        for s in &self.sites {
            h.str(s);
        }
        h.u64(self.months.len() as u64);
        for m in &self.months {
            h.str(m.name());
        }
        h.u64(u64::from(self.days_per_month));
        h.u64(self.mixes.len() as u64);
        for m in &self.mixes {
            h.str(m);
        }
        h.u64(self.policies.len() as u64);
        for p in &self.policies {
            h.str(p);
        }
        h.u64(self.scenarios.len() as u64);
        for s in &self.scenarios {
            h.str(s);
        }
        h.finish()
    }

    /// Enumerates the campaign's shards in canonical
    /// `(site, month, mix, policy, scenario)` nested order — which is both
    /// the execution input order and the report row order — resolving each
    /// scenario name against `scenarios_dir` (`"none"` loads nothing).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Invalid`] when a scenario file is missing or fails
    /// to parse.
    pub fn shards(&self, scenarios_dir: &Path) -> Result<Vec<Shard>, CampaignError> {
        let mut plans: Vec<Option<FaultPlan>> = Vec::with_capacity(self.scenarios.len());
        for scenario in &self.scenarios {
            if scenario == "none" {
                plans.push(None);
            } else {
                let path = scenarios_dir.join(scenario);
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| invalid(format!("scenario `{scenario}`: {e}")))?;
                let plan = parse_scenario(&text)
                    .map_err(|e| invalid(format!("scenario `{scenario}`: {e}")))?;
                plans.push(Some(plan));
            }
        }
        let mut shards = Vec::new();
        for site in &self.sites {
            for &month in &self.months {
                for mix in &self.mixes {
                    for policy in &self.policies {
                        for (scenario, plan) in self.scenarios.iter().zip(&plans) {
                            shards.push(Shard {
                                index: shards.len(),
                                site: site_from_code(site)?,
                                month,
                                mix: Mix::by_name(mix).ok_or_else(|| {
                                    invalid(format!("unknown mix `{mix}`"))
                                })?,
                                policy: policy_from_label(policy)?,
                                scenario: scenario.clone(),
                                plan: plan.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(shards)
    }
}

/// One unit of campaign work: `days_per_month` consecutive simulated days
/// of a `(site, month, mix, policy, scenario)` cell.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Position in canonical enumeration order (also the row index).
    pub index: usize,
    /// The site simulated.
    pub site: Site,
    /// The month simulated (anchored to its season; see
    /// [`Month::anchor`]).
    pub month: Month,
    /// The workload mix.
    pub mix: Mix,
    /// The power-management policy.
    pub policy: Policy,
    /// Scenario label (`"none"` when disarmed).
    pub scenario: String,
    /// The armed fault plan, when `scenario` names one.
    pub plan: Option<FaultPlan>,
}

/// Maps a site code to its [`Site`].
fn site_from_code(code: &str) -> Result<Site, CampaignError> {
    match code {
        "AZ" => Ok(Site::phoenix_az()),
        "CO" => Ok(Site::golden_co()),
        "NC" => Ok(Site::elizabeth_city_nc()),
        "TN" => Ok(Site::oak_ridge_tn()),
        other => Err(invalid(format!("unknown site code `{other}`"))),
    }
}

/// Maps a policy label to its [`Policy`].
fn policy_from_label(label: &str) -> Result<Policy, CampaignError> {
    match label {
        "MPPT&IC" => Ok(Policy::MpptIc),
        "MPPT&RR" => Ok(Policy::MpptRr),
        "MPPT&Opt" => Ok(Policy::MpptOpt),
        "MPPT&Chip" => Ok(Policy::MpptChipWide),
        other => Err(invalid(format!(
            "unknown policy label `{other}` (Fixed-Power is not campaignable: it carries a budget)"
        ))),
    }
}

// ---- spec lexing helpers (the `faults` parser idiom) -------------------

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn string_value(line: usize, raw: &str) -> Result<String, CampaignError> {
    let raw = raw.trim();
    if raw.len() >= 2 && raw.starts_with('"') && raw.ends_with('"') {
        Ok(raw[1..raw.len() - 1].to_owned())
    } else {
        perr(line, "expected a double-quoted string")
    }
}

fn list_value(line: usize, raw: &str) -> Result<Vec<String>, CampaignError> {
    let items: Vec<String> = string_value(line, raw)?
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return perr(line, "expected a non-empty comma-separated list");
    }
    Ok(items)
}

fn months_value(line: usize, raw: &str) -> Result<Vec<Month>, CampaignError> {
    let mut months = Vec::new();
    for part in list_value(line, raw)? {
        let Some(range) = Month::parse_range(&part) else {
            return perr(line, format!("bad month or range `{part}`"));
        };
        for m in range {
            if !months.contains(&m) {
                months.push(m);
            }
        }
    }
    Ok(months)
}

fn int_value(line: usize, raw: &str) -> Result<u64, CampaignError> {
    raw.trim()
        .parse::<u64>()
        .map_err(|_| CampaignError::Parse {
            line,
            reason: format!("expected a non-negative integer, got `{}`", raw.trim()),
        })
}

/// Narrows a parsed integer into the field's width with a line-anchored
/// error instead of a silent truncation.
fn narrow<T: TryFrom<u64>>(line: usize, x: u64) -> Result<T, CampaignError> {
    T::try_from(x).map_err(|_| CampaignError::Parse {
        line,
        reason: format!("integer `{x}` out of range for this field"),
    })
}

// ---- shard execution ---------------------------------------------------

/// The per-shard result row: identity, scalars, and the canonical FNV-1a
/// digest over every simulated day's full minute-level output.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// Shard index (canonical enumeration order).
    pub index: usize,
    /// Site code.
    pub site: String,
    /// Month name.
    pub month: String,
    /// Mix name.
    pub mix: String,
    /// Policy label.
    pub policy: String,
    /// Scenario label (`"none"` when disarmed).
    pub scenario: String,
    /// Days simulated.
    pub days: u32,
    /// FNV-1a digest chaining every day's [`day_hash`].
    pub digest: u64,
    /// Sum of solar-powered instructions (performance-time product).
    pub ptp: f64,
    /// Mean green-energy utilization across the shard's days.
    pub utilization: f64,
    /// Mean fraction of the daytime window spent solar-powered.
    pub effective_fraction: f64,
    /// Mean relative tracking error.
    pub tracking_error: f64,
    /// Total solar energy drawn, Wh.
    pub energy_drawn_wh: f64,
    /// Total ideal MPP energy available, Wh.
    pub energy_available_wh: f64,
}

impl ShardRow {
    /// Renders the row as a canonical-JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index", Json::int(self.index)),
            ("site", Json::str(&self.site)),
            ("month", Json::str(&self.month)),
            ("mix", Json::str(&self.mix)),
            ("policy", Json::str(&self.policy)),
            ("scenario", Json::str(&self.scenario)),
            ("days", Json::int(self.days as usize)),
            ("digest", Json::hex(self.digest)),
            ("ptp", Json::Num(self.ptp)),
            ("utilization", Json::Num(self.utilization)),
            ("effective_fraction", Json::Num(self.effective_fraction)),
            ("tracking_error", Json::Num(self.tracking_error)),
            ("energy_drawn_wh", Json::Num(self.energy_drawn_wh)),
            ("energy_available_wh", Json::Num(self.energy_available_wh)),
        ])
    }

    /// Reads a row back from parsed checkpoint JSON. Exact by
    /// construction: canonical floats are shortest-roundtrip and digests
    /// travel as hex strings.
    fn from_json(v: &Value) -> Result<ShardRow, CampaignError> {
        let field = |k: &str| -> Result<&Value, CampaignError> {
            v.get(k)
                .ok_or_else(|| invalid(format!("checkpoint row missing `{k}`")))
        };
        let s = |k: &str| -> Result<String, CampaignError> {
            field(k)?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| invalid(format!("checkpoint row `{k}` is not a string")))
        };
        let f = |k: &str| -> Result<f64, CampaignError> {
            field(k)?
                .as_f64()
                .ok_or_else(|| invalid(format!("checkpoint row `{k}` is not a number")))
        };
        let u = |k: &str| -> Result<u64, CampaignError> {
            field(k)?
                .as_u64()
                .ok_or_else(|| invalid(format!("checkpoint row `{k}` is not an integer")))
        };
        Ok(ShardRow {
            index: narrow(0, u("index")?).map_err(|_| invalid("row index out of range"))?,
            site: s("site")?,
            month: s("month")?,
            mix: s("mix")?,
            policy: s("policy")?,
            scenario: s("scenario")?,
            days: narrow(0, u("days")?).map_err(|_| invalid("row days out of range"))?,
            digest: parse_hex(&s("digest")?)?,
            ptp: f("ptp")?,
            utilization: f("utilization")?,
            effective_fraction: f("effective_fraction")?,
            tracking_error: f("tracking_error")?,
            energy_drawn_wh: f("energy_drawn_wh")?,
            energy_available_wh: f("energy_available_wh")?,
        })
    }
}

fn parse_hex(s: &str) -> Result<u64, CampaignError> {
    u64::from_str_radix(s, 16).map_err(|_| invalid(format!("bad hex digest `{s}`")))
}

/// Runs one shard: `days` consecutive day simulations threading one warm
/// PV solver memo, with day-end telemetry folded into a [`MetricFold`].
///
/// # Errors
///
/// Propagates simulation configuration/run errors as strings (the form
/// that crosses [`parallel_map`]'s thread boundary).
pub fn run_shard(shard: &Shard, days: u32) -> Result<(ShardRow, MetricFold), String> {
    run_shard_profiled(shard, days, false).map(|(row, fold, _)| (row, fold))
}

/// A profiled shard result: the deterministic row and metric fold, plus —
/// when profiling was requested — the frozen span tree and the shard's
/// total wall time in nanoseconds.
pub type ProfiledShard = (ShardRow, MetricFold, Option<(ProfTree, u64)>);

/// [`run_shard`] with an optional wall-clock profile attached.
///
/// When `profile` is true, the whole shard runs under a per-thread
/// [`Profiler`] inside one [`schema::PROF_SHARD`] span, and the result
/// carries the frozen span tree plus the shard's total wall time in
/// nanoseconds. The profiler never touches telemetry, the fold, or the
/// digest — rows are bit-identical either way (`determinism_check` §7
/// proves it).
///
/// # Errors
///
/// Same failure modes as [`run_shard`].
pub fn run_shard_profiled(shard: &Shard, days: u32, profile: bool) -> Result<ProfiledShard, String> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let prof = if profile {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    };
    let watch = Stopwatch::new();
    let fold = Rc::new(RefCell::new(MetricFold::new()));
    let mut cache = pv::ArrayCache::new();
    let mut h = CanonicalHasher::default();
    let mut ptp = 0.0;
    let mut utilization = 0.0;
    let mut effective_fraction = 0.0;
    let mut tracking_error = 0.0;
    let mut energy_drawn_wh = 0.0;
    let mut energy_available_wh = 0.0;

    let range = DayRange::new(shard.month, days);
    {
        let _shard_span = prof.scope(schema::PROF_SHARD);
        for day in range.day_indices() {
            let mut builder = DaySimulation::builder()
                .site(shard.site.clone())
                .season(shard.month.anchor())
                .day(day)
                .mix(shard.mix.clone())
                .policy(shard.policy)
                .telemetry(Telemetry::attached(fold.clone()))
                .profiler(prof.clone());
            if let Some(plan) = &shard.plan {
                builder = builder.fault_plan(plan.clone());
            }
            let sim = builder.build().map_err(|e| e.to_string())?;
            let setup = sim.prepare_with_cache(cache);
            let result = sim.run_prepared(&setup).map_err(|e| e.to_string())?;
            cache = setup.into_cache();

            h.u64(u64::from(day));
            h.u64(day_hash(&result));
            ptp += result.solar_instructions();
            utilization += result.utilization();
            effective_fraction += result.effective_fraction();
            tracking_error += result.mean_tracking_error();
            energy_drawn_wh += result.energy_drawn().get();
            energy_available_wh += result.energy_available().get();
        }
    }

    // Every simulation (and its Telemetry handle) is dropped, so this is
    // the last reference to the fold.
    let fold = Rc::try_unwrap(fold)
        .map_err(|_| "telemetry fold still shared after shard".to_owned())?
        .into_inner();
    let n = f64::from(days.max(1));
    let row = ShardRow {
        index: shard.index,
        site: shard.site.code().to_owned(),
        month: shard.month.name().to_owned(),
        mix: shard.mix.name().to_owned(),
        policy: shard.policy.label().to_owned(),
        scenario: shard.scenario.clone(),
        days,
        digest: h.finish(),
        ptp,
        utilization: utilization / n,
        effective_fraction: effective_fraction / n,
        tracking_error: tracking_error / n,
        energy_drawn_wh,
        energy_available_wh,
    };
    let prof_out = profile.then(|| (prof.tree(), watch.elapsed_ns()));
    Ok((row, fold, prof_out))
}

// ---- aggregate (de)serialization --------------------------------------

/// Resolves a histogram name from a checkpoint to its schema constant and
/// bucket bounds. The indirection re-establishes the `&'static` lifetimes
/// a parsed checkpoint cannot carry.
fn static_histogram(name: &str) -> Option<(&'static str, &'static [u64])> {
    match name {
        schema::HIST_NEWTON_ITERS => Some((schema::HIST_NEWTON_ITERS, NEWTON_ITER_BOUNDS)),
        schema::HIST_TRACK_ROUNDS => Some((schema::HIST_TRACK_ROUNDS, TRACK_BOUNDS)),
        schema::HIST_TRACK_ACTIONS => Some((schema::HIST_TRACK_ACTIONS, TRACK_BOUNDS)),
        schema::HIST_TRACK_REVERSALS => Some((schema::HIST_TRACK_REVERSALS, TRACK_BOUNDS)),
        schema::HIST_TPR_MOVES => Some((schema::HIST_TPR_MOVES, TPR_MOVE_BOUNDS)),
        schema::HIST_RATIO_K_CENTI => Some((schema::HIST_RATIO_K_CENTI, RATIO_K_BOUNDS)),
        _ => None,
    }
}

/// Resolves a counter name from a checkpoint to its schema constant.
fn static_counter(name: &str) -> Option<&'static str> {
    match name {
        schema::COUNTER_MPP_QUERIES => Some(schema::COUNTER_MPP_QUERIES),
        schema::COUNTER_PV_EVALS => Some(schema::COUNTER_PV_EVALS),
        _ => None,
    }
}

/// Resolves an event/span name from a checkpoint to its schema constant.
fn static_event(name: &str) -> Option<&'static str> {
    match name {
        schema::EVENT_DAY_START => Some(schema::EVENT_DAY_START),
        schema::EVENT_MINUTE => Some(schema::EVENT_MINUTE),
        schema::EVENT_TPR_ALLOC => Some(schema::EVENT_TPR_ALLOC),
        schema::EVENT_VF_RESIDENCY => Some(schema::EVENT_VF_RESIDENCY),
        schema::EVENT_DAY_SUMMARY => Some(schema::EVENT_DAY_SUMMARY),
        schema::EVENT_FAULT_REJECT => Some(schema::EVENT_FAULT_REJECT),
        schema::EVENT_DEGRADE_ENTER => Some(schema::EVENT_DEGRADE_ENTER),
        schema::EVENT_DEGRADE_EXIT => Some(schema::EVENT_DEGRADE_EXIT),
        schema::SPAN_TRACK => Some(schema::SPAN_TRACK),
        _ => None,
    }
}

/// Campaign counters stay far below 2^53, so the cast is exact; the
/// round-trip back through the canonical integer rendering recovers the
/// value bit-for-bit.
#[allow(clippy::cast_precision_loss)]
fn json_u64(n: u64) -> Json {
    debug_assert!(n < (1 << 53));
    Json::Num(n as f64)
}

/// Renders a [`MetricFold`] as a canonical-JSON object.
pub fn fold_to_json(fold: &MetricFold) -> Json {
    let histograms = fold
        .histogram_snapshots()
        .iter()
        .map(|snap| {
            Json::obj(vec![
                ("name", Json::str(snap.name)),
                (
                    "bounds",
                    Json::Arr(snap.bounds.iter().map(|&b| json_u64(b)).collect()),
                ),
                (
                    "counts",
                    Json::Arr(snap.counts.iter().map(|&c| json_u64(c)).collect()),
                ),
                ("count", json_u64(snap.count)),
                ("sum", json_u64(snap.sum)),
                ("max", json_u64(snap.max)),
            ])
        })
        .collect();
    let counters = fold
        .counter_snapshots()
        .iter()
        .map(|snap| {
            Json::obj(vec![
                ("name", Json::str(snap.name)),
                ("value", json_u64(snap.value)),
            ])
        })
        .collect();
    let tallies = fold
        .tallies()
        .iter()
        .map(|&(name, n)| Json::obj(vec![("name", Json::str(name)), ("n", json_u64(n))]))
        .collect();
    Json::obj(vec![
        ("histograms", Json::Arr(histograms)),
        ("counters", Json::Arr(counters)),
        ("tallies", Json::Arr(tallies)),
    ])
}

/// Rebuilds a [`MetricFold`] from parsed checkpoint JSON, resolving every
/// name against the `solarcore` telemetry schema (unknown names mean the
/// checkpoint came from a different schema generation and are rejected).
///
/// # Errors
///
/// [`CampaignError::Invalid`] on structural or schema mismatches.
pub fn fold_from_json(v: &Value) -> Result<MetricFold, CampaignError> {
    let arr = |k: &str| -> Result<&Vec<Value>, CampaignError> {
        v.get(k)
            .and_then(Value::as_array)
            .ok_or_else(|| invalid(format!("checkpoint aggregate missing `{k}` array")))
    };
    let name_of = |item: &Value| -> Result<String, CampaignError> {
        item.get("name")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| invalid("aggregate entry missing `name`"))
    };
    let u = |item: &Value, k: &str| -> Result<u64, CampaignError> {
        item.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| invalid(format!("aggregate entry `{k}` is not an integer")))
    };
    let u_list = |item: &Value, k: &str| -> Result<Vec<u64>, CampaignError> {
        item.get(k)
            .and_then(Value::as_array)
            .ok_or_else(|| invalid(format!("aggregate entry `{k}` is not an array")))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| invalid(format!("aggregate `{k}` element is not an integer")))
            })
            .collect()
    };

    let mut fold = MetricFold::new();
    for item in arr("histograms")? {
        let name = name_of(item)?;
        let Some((static_name, bounds)) = static_histogram(&name) else {
            return Err(invalid(format!("unknown histogram `{name}` in checkpoint")));
        };
        if u_list(item, "bounds")? != bounds {
            return Err(invalid(format!(
                "histogram `{name}` bounds drifted from the schema"
            )));
        }
        let snap = HistogramSnapshot {
            name: static_name,
            seq: 0,
            bounds,
            counts: u_list(item, "counts")?,
            count: u(item, "count")?,
            sum: u(item, "sum")?,
            max: u(item, "max")?,
        };
        fold.absorb_histogram(&snap)
            .map_err(|e| invalid(e.to_string()))?;
    }
    for item in arr("counters")? {
        let name = name_of(item)?;
        let Some(static_name) = static_counter(&name) else {
            return Err(invalid(format!("unknown counter `{name}` in checkpoint")));
        };
        fold.absorb_counter(&CounterSnapshot {
            name: static_name,
            seq: 0,
            value: u(item, "value")?,
        });
    }
    for item in arr("tallies")? {
        let name = name_of(item)?;
        let Some(static_name) = static_event(&name) else {
            return Err(invalid(format!("unknown record name `{name}` in checkpoint")));
        };
        fold.tally(static_name, u(item, "n")?);
    }
    Ok(fold)
}

// ---- engine ------------------------------------------------------------

/// Runtime options of one engine invocation (never part of the spec
/// digest — none of these can change the final report bytes).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads (0 = [`crate::parallel::default_threads`]).
    pub threads: usize,
    /// Checkpoint file: loaded (resume) when present, rewritten after
    /// every completed wave. `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Simulated kill switch for tests: abort once at least this many
    /// shards have completed, *without* checkpointing the in-flight wave —
    /// exactly what `kill -9` mid-wave loses.
    pub kill_after: Option<usize>,
    /// Collect a wall-clock [`CampaignProfile`] (merged span tree, per-wave
    /// pool analysis). Profiling never touches rows, aggregate, or digest —
    /// `determinism_check` §7 proves the report bytes are identical.
    pub profile: bool,
    /// Invoked after every completed wave with cumulative progress and an
    /// ETA (a plain `fn` pointer so the options stay `Clone + Default`).
    /// `None` stays silent — the default for tests and library callers.
    pub progress: Option<fn(&WaveProgress)>,
}

/// Cumulative progress snapshot handed to [`RunOptions::progress`] after
/// every completed wave.
#[derive(Debug, Clone, Copy)]
pub struct WaveProgress {
    /// Completed shards so far, resumed rows included.
    pub done: usize,
    /// Total shards in the spec.
    pub total: usize,
    /// Shards executed by this invocation (resumed rows excluded).
    pub executed: usize,
    /// Wall-clock seconds since this invocation started.
    pub elapsed_secs: f64,
    /// Estimated seconds remaining (`elapsed / executed × remaining`),
    /// `None` until the first shard has executed.
    pub eta_secs: Option<f64>,
}

/// The result of an engine invocation.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Campaign name (from the spec).
    pub name: String,
    /// The spec digest the run (and any checkpoint) is bound to.
    pub spec_digest: u64,
    /// All completed rows, in canonical shard order.
    pub rows: Vec<ShardRow>,
    /// The campaign-level metric aggregate.
    pub aggregate: MetricFold,
    /// Shard indices executed *by this invocation* (resumed-from rows
    /// excluded) — the resume tests use this to prove nothing before the
    /// checkpoint frontier re-executed.
    pub executed: Vec<usize>,
    /// Rows restored from the checkpoint instead of executed.
    pub resumed_from: usize,
    /// Rows durably checkpointed when the invocation returned.
    pub checkpointed: usize,
    /// `false` when `kill_after` aborted the run.
    pub complete: bool,
    /// Wall-clock profile of this invocation when [`RunOptions::profile`]
    /// was set — never folded into [`CampaignOutcome::report_json`].
    pub profile: Option<CampaignProfile>,
}

impl CampaignOutcome {
    /// Canonical FNV-1a digest over every row — the campaign digest the
    /// golden test pins.
    pub fn digest(&self) -> u64 {
        rows_digest(&self.rows)
    }

    /// The deterministic report document: identity, rows, aggregate,
    /// digest. Byte-identical across thread counts and kill/resume
    /// schedules; the campaign CLI appends its (non-deterministic) scaling
    /// measurements *outside* this document.
    pub fn report_json(&self) -> Json {
        Json::obj(vec![
            ("campaign", Json::str(&self.name)),
            ("spec_digest", Json::hex(self.spec_digest)),
            ("shards", Json::int(self.rows.len())),
            ("rows", Json::Arr(self.rows.iter().map(ShardRow::to_json).collect())),
            ("aggregate", fold_to_json(&self.aggregate)),
            ("digest", Json::hex(self.digest())),
        ])
    }
}

/// Assembles the committed `results/campaign_report.json` document: the
/// deterministic report of `serial` plus a `determinism` section recording
/// the kill/resume agreement and a `scaling` section with the measured
/// shard throughput per thread count (the one machine-dependent part; the
/// golden test pins the digest, never the timings).
///
/// ```no_run
/// use bench::campaign::{compose_report, run, CampaignSpec, RunOptions};
/// use std::path::Path;
///
/// let spec = CampaignSpec::parse("[campaign]\nname = \"demo\"\n")?;
/// let outcome = run(&spec, Path::new("scenarios"), &RunOptions::default())?;
/// let report = compose_report(&outcome, &outcome, &[(1, 2.5)], outcome.rows.len());
/// std::fs::write("results/campaign_report.json", report.render())?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compose_report(
    serial: &CampaignOutcome,
    resumed: &CampaignOutcome,
    timings: &[(usize, f64)],
    shards: usize,
) -> Json {
    let Json::Obj(mut doc) = serial.report_json() else {
        // report_json always builds an object; fall back to it unchanged.
        return serial.report_json();
    };
    doc.insert(
        "determinism".to_owned(),
        Json::obj(vec![
            ("digest", Json::hex(serial.digest())),
            ("resumed_digest", Json::hex(resumed.digest())),
            (
                "byte_identical",
                Json::Bool(serial.report_json().render() == resumed.report_json().render()),
            ),
        ]),
    );
    #[allow(clippy::cast_precision_loss)] // shard counts are tiny
    let scaling = timings
        .iter()
        .map(|&(threads, seconds)| {
            Json::obj(vec![
                ("threads", Json::int(threads)),
                ("seconds", Json::Num(seconds)),
                (
                    "shards_per_second",
                    Json::Num(if seconds > 0.0 { shards as f64 / seconds } else { 0.0 }),
                ),
            ])
        })
        .collect();
    doc.insert("scaling".to_owned(), Json::Arr(scaling));
    Json::Obj(doc)
}

/// Canonical FNV-1a digest over report rows, field by field.
pub fn rows_digest(rows: &[ShardRow]) -> u64 {
    let mut h = CanonicalHasher::default();
    h.u64(rows.len() as u64);
    for row in rows {
        h.u64(row.index as u64);
        h.str(&row.site);
        h.str(&row.month);
        h.str(&row.mix);
        h.str(&row.policy);
        h.str(&row.scenario);
        h.u64(u64::from(row.days));
        h.u64(row.digest);
        h.f64(row.ptp);
        h.f64(row.utilization);
        h.f64(row.effective_fraction);
        h.f64(row.tracking_error);
        h.f64(row.energy_drawn_wh);
        h.f64(row.energy_available_wh);
    }
    h.finish()
}

/// Executes (or resumes) a campaign.
///
/// Shards run in waves of `spec.checkpoint_every` on the lock-free
/// [`parallel_map`] pool; rows and the metric aggregate accumulate in
/// canonical order, and the checkpoint is rewritten after every wave. When
/// `opts.checkpoint` names an existing file, the run resumes from it:
/// checkpointed rows are restored verbatim (never re-executed) and
/// execution continues at the frontier.
///
/// # Errors
///
/// Simulation failures, checkpoint I/O/parse failures, and a checkpoint
/// whose `spec_digest` does not match `spec`.
pub fn run(
    spec: &CampaignSpec,
    scenarios_dir: &Path,
    opts: &RunOptions,
) -> Result<CampaignOutcome, Box<dyn Error>> {
    let shards = spec.shards(scenarios_dir)?;
    let spec_digest = spec.digest();
    let threads = if opts.threads == 0 {
        crate::parallel::default_threads()
    } else {
        opts.threads
    };

    let mut rows: Vec<ShardRow> = Vec::with_capacity(shards.len());
    let mut aggregate = MetricFold::new();
    let mut resumed_from = 0;
    if let Some(path) = &opts.checkpoint {
        if path.exists() {
            let (loaded_rows, loaded_fold) = load_checkpoint(path, spec_digest)?;
            resumed_from = loaded_rows.len();
            rows = loaded_rows;
            aggregate = loaded_fold;
        }
    }
    if resumed_from > shards.len() {
        return Err(invalid("checkpoint has more rows than the spec has shards").into());
    }

    let mut executed = Vec::new();
    let mut checkpointed = resumed_from;
    let mut done = resumed_from;
    let days = spec.days_per_month;
    let mut profile = opts.profile.then(|| CampaignProfile {
        threads,
        ..CampaignProfile::default()
    });
    let run_watch = Stopwatch::new();
    while done < shards.len() {
        let wave_end = (done + spec.checkpoint_every).min(shards.len());
        let wave: Vec<Shard> = shards[done..wave_end].to_vec();
        let wave_len = wave.len();
        let profiling = profile.is_some();
        let wave_watch = Stopwatch::new();
        let results =
            parallel_map(wave, threads, |shard| run_shard_profiled(shard, days, profiling));
        let wave_ns = wave_watch.elapsed_ns();
        let mut sum_shard_ns = 0u64;
        let mut max_shard_ns = 0u64;
        for result in results {
            let (row, fold, shard_prof) = result?;
            aggregate.merge(&fold)?;
            if let (Some(p), Some((tree, wall_ns))) = (profile.as_mut(), shard_prof) {
                sum_shard_ns = sum_shard_ns.saturating_add(wall_ns);
                max_shard_ns = max_shard_ns.max(wall_ns);
                p.shard_walls.push((row.index, wall_ns));
                p.tree.merge(&tree);
            }
            executed.push(row.index);
            rows.push(row);
        }
        if let Some(p) = profile.as_mut() {
            p.waves.push(WaveWall {
                shards: wave_len,
                wall_ns: wave_ns,
                sum_shard_ns,
                max_shard_ns,
            });
        }
        done = wave_end;
        if let Some(report) = opts.progress {
            let elapsed_secs = run_watch.elapsed_secs();
            #[allow(clippy::cast_precision_loss)] // shard counts are tiny
            let eta_secs = (!executed.is_empty())
                .then(|| elapsed_secs / executed.len() as f64 * (shards.len() - done) as f64);
            report(&WaveProgress {
                done,
                total: shards.len(),
                executed: executed.len(),
                elapsed_secs,
                eta_secs,
            });
        }
        let killed = opts.kill_after.is_some_and(|k| done >= k);
        if !killed {
            if let Some(path) = &opts.checkpoint {
                write_checkpoint(path, spec, spec_digest, &rows, &aggregate)?;
                checkpointed = done;
            }
        }
        if killed {
            return Ok(CampaignOutcome {
                name: spec.name.clone(),
                spec_digest,
                rows,
                aggregate,
                executed,
                resumed_from,
                checkpointed,
                complete: false,
                profile,
            });
        }
    }

    Ok(CampaignOutcome {
        name: spec.name.clone(),
        spec_digest,
        rows,
        aggregate,
        executed,
        resumed_from,
        checkpointed,
        complete: true,
        profile,
    })
}

/// Rewrites the checkpoint: the completed-row prefix plus the running
/// aggregate, in canonical JSON (write-then-rename, so a kill mid-write
/// leaves the previous checkpoint intact).
fn write_checkpoint(
    path: &Path,
    spec: &CampaignSpec,
    spec_digest: u64,
    rows: &[ShardRow],
    aggregate: &MetricFold,
) -> Result<(), Box<dyn Error>> {
    let doc = Json::obj(vec![
        ("campaign", Json::str(&spec.name)),
        ("spec_digest", Json::hex(spec_digest)),
        ("completed", Json::int(rows.len())),
        ("rows", Json::Arr(rows.iter().map(ShardRow::to_json).collect())),
        ("aggregate", fold_to_json(aggregate)),
    ]);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, doc.render())?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a checkpoint, verifying it belongs to this spec.
fn load_checkpoint(
    path: &Path,
    spec_digest: u64,
) -> Result<(Vec<ShardRow>, MetricFold), Box<dyn Error>> {
    let text = std::fs::read_to_string(path)?;
    let doc: Value = serde_json::from_str(&text)
        .map_err(|e| invalid(format!("checkpoint {}: {e}", path.display())))?;
    let found = doc
        .get("spec_digest")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid("checkpoint missing `spec_digest`"))?;
    if parse_hex(found)? != spec_digest {
        return Err(invalid(format!(
            "checkpoint {} belongs to a different campaign spec",
            path.display()
        ))
        .into());
    }
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid("checkpoint missing `rows`"))?
        .iter()
        .map(ShardRow::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    for (i, row) in rows.iter().enumerate() {
        if row.index != i {
            return Err(invalid("checkpoint rows are not a canonical prefix").into());
        }
    }
    let aggregate = doc
        .get("aggregate")
        .map(fold_from_json)
        .transpose()?
        .unwrap_or_default();
    Ok((rows, aggregate))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
# two-cell smoke campaign
[campaign]
name = "unit"
sites = "AZ"
months = "Jan"
days_per_month = 1
mixes = "HM2"
policies = "MPPT&Opt,MPPT&RR"
scenarios = "none"
checkpoint_every = 1
"#;

    #[test]
    fn parses_defaults_and_explicit_keys() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.sites, vec!["AZ"]);
        assert_eq!(spec.months, vec![Month::Jan]);
        assert_eq!(spec.policies, vec!["MPPT&Opt", "MPPT&RR"]);
        assert_eq!(spec.checkpoint_every, 1);

        let minimal = CampaignSpec::parse("[campaign]\nname = \"m\"\n").unwrap();
        assert_eq!(minimal.sites.len(), 4);
        assert_eq!(minimal.months.len(), 12);
        assert_eq!(minimal.mixes, vec!["HM2"]);
        assert_eq!(minimal.scenarios, vec!["none"]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        match CampaignSpec::parse("[campaign]\nname = \"x\"\nbogus = 1\n") {
            Err(CampaignError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        match CampaignSpec::parse("name = \"x\"\n") {
            Err(CampaignError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(CampaignSpec::parse("[campaign]\nname = \"x\"\nsites = \"XX\"\n").is_err());
        assert!(CampaignSpec::parse("[campaign]\nname = \"x\"\npolicies = \"Fixed-Power\"\n")
            .is_err());
        assert!(CampaignSpec::parse("[campaign]\nname = \"x\"\nmonths = \"Smarch\"\n").is_err());
        assert!(CampaignSpec::parse("[campaign]\nname = \"x\"\ndays_per_month = 0\n").is_err());
    }

    #[test]
    fn shard_enumeration_is_canonical_and_indexed() {
        let spec = CampaignSpec::parse(SPEC).unwrap();
        let shards = spec.shards(Path::new(".")).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].policy, Policy::MpptOpt);
        assert_eq!(shards[1].policy, Policy::MpptRr);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn spec_digest_ignores_checkpoint_every_only() {
        let a = CampaignSpec::parse(SPEC).unwrap();
        let mut b = a.clone();
        b.checkpoint_every = 99;
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.sites = vec!["TN".to_owned()];
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn row_json_round_trips_exactly() {
        let row = ShardRow {
            index: 7,
            site: "AZ".to_owned(),
            month: "Feb".to_owned(),
            mix: "HM2".to_owned(),
            policy: "MPPT&Opt".to_owned(),
            scenario: "none".to_owned(),
            days: 3,
            digest: 0xdead_beef_0102_0304,
            ptp: 1.0 / 3.0,
            utilization: 0.08521867475698039,
            effective_fraction: 0.75,
            tracking_error: 2e-3,
            energy_drawn_wh: 123.456789,
            energy_available_wh: 200.0,
        };
        let rendered = row.to_json().render();
        let parsed = ShardRow::from_json(&serde_json::from_str(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, row);
        assert_eq!(parsed.utilization.to_bits(), row.utilization.to_bits());
    }

    #[test]
    fn fold_json_round_trips() {
        let h = telemetry::Histogram::new(schema::HIST_NEWTON_ITERS, NEWTON_ITER_BOUNDS);
        h.record(3);
        h.record(40);
        let mut fold = MetricFold::new();
        fold.absorb_histogram(&h.snapshot(0)).unwrap();
        fold.absorb_counter(&CounterSnapshot {
            name: schema::COUNTER_PV_EVALS,
            seq: 0,
            value: 12345,
        });
        fold.tally(schema::EVENT_MINUTE, 601);

        let doc = fold_to_json(&fold).render();
        let back = fold_from_json(&serde_json::from_str(&doc).unwrap()).unwrap();
        assert_eq!(back.histogram_snapshots(), fold.histogram_snapshots());
        assert_eq!(back.counter_snapshots(), fold.counter_snapshots());
        assert_eq!(back.tallies(), fold.tallies());
    }

    #[test]
    fn fold_json_rejects_unknown_names() {
        let doc: Value = serde_json::from_str(
            r#"{"histograms":[{"name":"mystery","bounds":[1],"counts":[0,0],"count":0,"sum":0,"max":0}],"counters":[],"tallies":[]}"#,
        )
        .unwrap();
        assert!(fold_from_json(&doc).is_err());
    }
}
