//! Figures 13 & 14: MPP tracking traces — maximal power budget vs actual
//! power consumption, minute by minute, for H1 / HM2 / L1 at Phoenix.
//!
//! Figure 13 uses the "regular" January weather pattern, Figure 14 the
//! "irregular" July (monsoon) pattern.

use std::path::Path;

use serde::Serialize;

use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

use crate::output::{write_json, TextTable};

/// One workload's tracked day.
#[derive(Debug, Clone, Serialize)]
pub struct TrackedDay {
    /// Mix name.
    pub mix: String,
    /// Per-minute `(minute, budget W, actual W)` series.
    pub series: Vec<(u32, f64, f64)>,
    /// Mean relative tracking error.
    pub tracking_error: f64,
    /// Std-dev of `(budget − actual)` over solar minutes — the "ripple".
    pub ripple_w: f64,
}

/// The computed figure: one tracked day per workload.
#[derive(Debug, Clone, Serialize)]
pub struct TrackingFigure {
    /// Season the traces were generated in.
    pub season: String,
    /// Site code.
    pub site: String,
    /// Per-workload traces (H1, HM2, L1 — as in the paper's panels).
    pub days: Vec<TrackedDay>,
}

/// Computes the figure for one season at Phoenix.
pub fn compute(season: Season) -> TrackingFigure {
    let site = Site::phoenix_az();
    let days = [Mix::h1(), Mix::hm2(), Mix::l1()]
        .into_iter()
        .map(|mix| {
            let result = DaySimulation::builder()
                .site(site.clone())
                .season(season)
                .mix(mix.clone())
                .policy(Policy::MpptOpt)
                .build()
                .expect("valid config")
                .run()
                .expect("day runs");
            let series: Vec<(u32, f64, f64)> = result
                .records()
                .iter()
                .map(|r| (r.minute, r.budget.get(), r.drawn.get()))
                .collect();
            let gaps: Vec<f64> = result
                .records()
                .iter()
                .filter(|r| r.drawn.get() > 0.0)
                .map(|r| r.budget.get() - r.drawn.get())
                .collect();
            let mean_gap = solarcore::metrics::mean(&gaps);
            let ripple_w = (gaps.iter().map(|g| (g - mean_gap).powi(2)).sum::<f64>()
                / gaps.len().max(1) as f64)
                .sqrt();
            TrackedDay {
                mix: mix.name().to_string(),
                series,
                tracking_error: result.mean_tracking_error(),
                ripple_w,
            }
        })
        .collect();
    TrackingFigure {
        season: season.to_string(),
        site: site.code().to_string(),
        days,
    }
}

/// Runs the experiment for one season ("Jan" ⇒ Figure 13, "Jul" ⇒ 14).
pub fn run(season: Season, out_dir: &Path) -> TrackingFigure {
    let fig = compute(season);
    let figure_no = if season == Season::Jan { 13 } else { 14 };
    println!(
        "Figure {figure_no} — MPP tracking accuracy ({} @ {})",
        fig.season, fig.site
    );
    let mut table = TextTable::new(["mix", "mean budget W", "mean actual W", "error", "ripple W"]);
    for d in &fig.days {
        let budgets: Vec<f64> = d.series.iter().map(|(_, b, _)| *b).collect();
        let actuals: Vec<f64> = d.series.iter().map(|(_, _, a)| *a).collect();
        table.row([
            d.mix.clone(),
            format!("{:.1}", solarcore::metrics::mean(&budgets)),
            format!("{:.1}", solarcore::metrics::mean(&actuals)),
            format!("{:.1} %", 100.0 * d.tracking_error),
            format!("{:.2}", d.ripple_w),
        ]);
    }
    println!("{table}");
    let name = format!("fig{figure_no}_tracking_{}", fig.season.to_lowercase());
    write_json(out_dir, &name, &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actual_follows_budget_with_bigger_ripple_for_h1() {
        let fig = compute(Season::Jan);
        assert_eq!(fig.days.len(), 3);
        let h1 = &fig.days[0];
        let l1 = &fig.days[2];
        assert_eq!(h1.mix, "H1");
        assert_eq!(l1.mix, "L1");
        // The paper: high-EPI homogeneous workloads show large power
        // ripples; low-EPI ones are smooth.
        assert!(
            h1.ripple_w > l1.ripple_w,
            "H1 ripple {:.2} vs L1 {:.2}",
            h1.ripple_w,
            l1.ripple_w
        );
        // Tracking holds: both errors below ~20 % on regular weather.
        assert!(h1.tracking_error < 0.2);
        assert!(l1.tracking_error < 0.15);
    }

    #[test]
    fn irregular_july_tracks_worse_than_regular_january() {
        let jan = compute(Season::Jan);
        let jul = compute(Season::Jul);
        let mean_err = |f: &TrackingFigure| {
            f.days.iter().map(|d| d.tracking_error).sum::<f64>() / f.days.len() as f64
        };
        assert!(
            mean_err(&jul) > mean_err(&jan),
            "jul {:.3} vs jan {:.3}",
            mean_err(&jul),
            mean_err(&jan)
        );
    }
}
