//! Ablation studies of SolarCore's design choices (beyond the paper's own
//! figures): the robustness power margin, the tracking trigger period, the
//! event-driven re-track band, the converter ratio step, sensor noise, and
//! per-core vs chip-wide DVFS granularity.
//!
//! Each knob is swept on two contrasting weather patterns — regular
//! (Jul @ AZ is the paper's irregular case; we also use stormy Apr @ NC) —
//! running the heterogeneous HM2 mix.

use std::path::Path;

use serde::Serialize;

use powertrain::IvSensor;
use solarcore::{ControllerConfig, DayResult, DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

use crate::output::{write_json, TextTable};

/// Aggregates of one ablation cell (mean of the two weather patterns).
#[derive(Debug, Clone, Serialize)]
pub struct AblationCell {
    /// Knob value description, e.g. `"margin=2"`.
    pub setting: String,
    /// Mean green-energy utilization.
    pub utilization: f64,
    /// Mean relative tracking error.
    pub tracking_error: f64,
    /// Mean solar instructions (PTP), normalized to the suite's default
    /// configuration.
    pub normalized_ptp: f64,
    /// Minutes with the bus sagging below 90 % of nominal (robustness).
    pub undervolt_minutes: f64,
}

/// One swept knob.
#[derive(Debug, Clone, Serialize)]
pub struct AblationSweep {
    /// Knob name.
    pub knob: String,
    /// Swept cells in order.
    pub cells: Vec<AblationCell>,
}

/// The full ablation suite.
#[derive(Debug, Clone, Serialize)]
pub struct Ablation {
    /// All sweeps.
    pub sweeps: Vec<AblationSweep>,
}

fn scenarios() -> Vec<(Site, Season)> {
    vec![
        (Site::phoenix_az(), Season::Jul),
        (Site::elizabeth_city_nc(), Season::Apr),
    ]
}

fn summarize(results: &[DayResult], baseline_ptp: f64) -> (f64, f64, f64, f64) {
    let n = results.len() as f64;
    let util = results.iter().map(DayResult::utilization).sum::<f64>() / n;
    let err = results
        .iter()
        .map(DayResult::mean_tracking_error)
        .sum::<f64>()
        / n;
    let ptp = results
        .iter()
        .map(DayResult::solar_instructions)
        .sum::<f64>()
        / n;
    let undervolt = results
        .iter()
        .map(|r| {
            r.records()
                .iter()
                .filter(|m| m.drawn.get() > 0.0 && m.bus_voltage.get() < 0.9 * 12.0)
                .count() as f64
        })
        .sum::<f64>()
        / n;
    (util, err, ptp / baseline_ptp.max(1e-9), undervolt)
}

fn run_with(config: ControllerConfig, policy: Policy, sensor: Option<IvSensor>) -> Vec<DayResult> {
    scenarios()
        .into_iter()
        .map(|(site, season)| {
            let mut builder = DaySimulation::builder()
                .site(site)
                .season(season)
                .mix(Mix::hm2())
                .policy(policy)
                .config(config.clone());
            if let Some(s) = &sensor {
                builder = builder.sensor(s.clone());
            }
            builder
                .build()
                .expect("valid config")
                .run()
                .expect("day runs")
        })
        .collect()
}

/// Computes the full ablation suite.
pub fn compute() -> Ablation {
    let defaults = ControllerConfig::paper_defaults();
    let baseline = run_with(defaults.clone(), Policy::MpptOpt, None);
    let baseline_ptp = baseline
        .iter()
        .map(DayResult::solar_instructions)
        .sum::<f64>()
        / baseline.len() as f64;

    let mut sweeps = Vec::new();

    // 1. Robustness power margin (Section 4.3 argues one step is needed).
    let mut cells = Vec::new();
    for margin in [0u32, 1, 2, 3] {
        let mut cfg = defaults.clone();
        cfg.margin_steps = margin;
        let results = run_with(cfg, Policy::MpptOpt, None);
        let (u, e, p, uv) = summarize(&results, baseline_ptp);
        cells.push(AblationCell {
            setting: format!("margin={margin}"),
            utilization: u,
            tracking_error: e,
            normalized_ptp: p,
            undervolt_minutes: uv,
        });
    }
    sweeps.push(AblationSweep {
        knob: "power margin (load-decrease steps)".to_string(),
        cells,
    });

    // 2. Tracking trigger period (the paper uses 10 minutes).
    let mut cells = Vec::new();
    for minutes in [5u32, 10, 20, 30] {
        let mut cfg = defaults.clone();
        cfg.tracking_interval_minutes = minutes;
        let results = run_with(cfg, Policy::MpptOpt, None);
        let (u, e, p, uv) = summarize(&results, baseline_ptp);
        cells.push(AblationCell {
            setting: format!("interval={minutes}min"),
            utilization: u,
            tracking_error: e,
            normalized_ptp: p,
            undervolt_minutes: uv,
        });
    }
    sweeps.push(AblationSweep {
        knob: "periodic tracking interval".to_string(),
        cells,
    });

    // 3. Event-driven re-track band (0.5 effectively disables it).
    let mut cells = Vec::new();
    for band in [0.05, 0.08, 0.16, 0.45] {
        let mut cfg = defaults.clone();
        cfg.retrack_voltage_band = band;
        let results = run_with(cfg, Policy::MpptOpt, None);
        let (u, e, p, uv) = summarize(&results, baseline_ptp);
        cells.push(AblationCell {
            setting: format!("band={band:.2}"),
            utilization: u,
            tracking_error: e,
            normalized_ptp: p,
            undervolt_minutes: uv,
        });
    }
    sweeps.push(AblationSweep {
        knob: "event re-track voltage band".to_string(),
        cells,
    });

    // 4. Sensor noise (the controller only sees measured I/V).
    let mut cells = Vec::new();
    for sigma in [0.0, 0.01, 0.02, 0.05] {
        let sensor = if sigma == 0.0 {
            IvSensor::ideal()
        } else {
            IvSensor::noisy(sigma, 1234)
        };
        let results = run_with(defaults.clone(), Policy::MpptOpt, Some(sensor));
        let (u, e, p, uv) = summarize(&results, baseline_ptp);
        cells.push(AblationCell {
            setting: format!("noise={:.0}%", 100.0 * sigma),
            utilization: u,
            tracking_error: e,
            normalized_ptp: p,
            undervolt_minutes: uv,
        });
    }
    sweeps.push(AblationSweep {
        knob: "I/V sensor noise".to_string(),
        cells,
    });

    // 5. DVFS granularity: per-core TPR vs round-robin vs chip-wide.
    let mut cells = Vec::new();
    for policy in [Policy::MpptOpt, Policy::MpptRr, Policy::MpptChipWide] {
        let results = run_with(defaults.clone(), policy, None);
        let (u, e, p, uv) = summarize(&results, baseline_ptp);
        cells.push(AblationCell {
            setting: policy.label().to_string(),
            utilization: u,
            tracking_error: e,
            normalized_ptp: p,
            undervolt_minutes: uv,
        });
    }
    sweeps.push(AblationSweep {
        knob: "DVFS granularity".to_string(),
        cells,
    });

    Ablation { sweeps }
}

/// Runs the ablation suite.
pub fn run(out_dir: &Path) -> Ablation {
    let ablation = compute();
    println!("Ablation — design-choice sensitivity (HM2, Jul@AZ + Apr@NC)");
    for sweep in &ablation.sweeps {
        println!("\n{}:", sweep.knob);
        let mut table = TextTable::new(["setting", "util", "error", "PTP (norm)", "undervolt min"]);
        for c in &sweep.cells {
            table.row([
                c.setting.clone(),
                format!("{:.1} %", 100.0 * c.utilization),
                format!("{:.1} %", 100.0 * c.tracking_error),
                format!("{:.3}", c.normalized_ptp),
                format!("{:.1}", c.undervolt_minutes),
            ]);
        }
        println!("{table}");
    }
    write_json(out_dir, "ablation", &ablation).expect("results dir is writable");
    ablation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_directions_are_sane() {
        let ablation = compute();
        assert_eq!(ablation.sweeps.len(), 5);

        // Chip-wide granularity must not beat per-core TPR.
        let gran = &ablation.sweeps[4];
        let ptp = |setting: &str| {
            gran.cells
                .iter()
                .find(|c| c.setting == setting)
                .unwrap()
                .normalized_ptp
        };
        assert!(ptp("MPPT&Opt") >= ptp("MPPT&Chip"));

        // Moderate sensor noise degrades gracefully (within 15 % PTP).
        let noise = &ablation.sweeps[3];
        let clean = noise.cells[0].normalized_ptp;
        let noisy = noise.cells[2].normalized_ptp; // 2 %
        assert!(noisy > 0.85 * clean, "2 % noise collapsed PTP: {noisy:.3}");

        // All utilizations in a plausible band.
        for sweep in &ablation.sweeps {
            for c in &sweep.cells {
                assert!(
                    (0.4..=1.0).contains(&c.utilization),
                    "{} / {}: utilization {:.2}",
                    sweep.knob,
                    c.setting,
                    c.utilization
                );
            }
        }
    }
}
