//! Figures 16 & 17: solar energy usage and performance (PTP) under fixed
//! power budgets, normalized to SolarCore.
//!
//! The paper's conclusion: no single fixed budget exists that recovers
//! SolarCore's harvest or performance — the best fixed configuration stays
//! below ~0.7 of SolarCore on both metrics (hence the ≥43 % headline win).

use std::path::Path;

use serde::Serialize;

use pv::units::Watts;
use solarcore::{DaySimulation, Policy};
use solarenv::{Season, Site};
use workloads::Mix;

use crate::experiments::fig15::THRESHOLDS_W;
use crate::output::{write_json, TextTable};
use crate::parallel::{default_threads, parallel_map};

/// One site-season row of both figures.
#[derive(Debug, Clone, Serialize)]
pub struct FixedBudgetRow {
    /// Site code.
    pub site: String,
    /// Season label.
    pub season: String,
    /// Normalized energy drawn per budget (vs SolarCore = 1.0).
    pub normalized_energy: Vec<f64>,
    /// Normalized PTP per budget (vs SolarCore = 1.0).
    pub normalized_ptp: Vec<f64>,
}

/// The computed figures.
#[derive(Debug, Clone, Serialize)]
pub struct Fig16And17 {
    /// The swept budgets, watts.
    pub budgets: Vec<f64>,
    /// Workload mixes averaged over.
    pub mixes: Vec<String>,
    /// One row per site-season.
    pub rows: Vec<FixedBudgetRow>,
}

impl Fig16And17 {
    /// The best (budget-maximized) normalized energy and PTP over the whole
    /// sweep — the paper's "less than 70 %" observation.
    pub fn best_fixed(&self) -> (f64, f64) {
        let mut best_energy = 0.0_f64;
        let mut best_ptp = 0.0_f64;
        for row in &self.rows {
            for (e, p) in row.normalized_energy.iter().zip(&row.normalized_ptp) {
                best_energy = best_energy.max(*e);
                best_ptp = best_ptp.max(*p);
            }
        }
        (best_energy, best_ptp)
    }
}

/// Computes both figures over the given mixes (the paper averages across
/// all benchmarks; pass a subset for quicker runs).
pub fn compute(mixes: &[Mix]) -> Fig16And17 {
    let mut cells = Vec::new();
    for site in Site::all() {
        for &season in &Season::ALL {
            cells.push((site.clone(), season));
        }
    }

    let rows = parallel_map(cells, default_threads(), |(site, season)| {
        // SolarCore baseline, averaged over mixes.
        let mut base_energy = 0.0;
        let mut base_ptp = 0.0;
        for mix in mixes {
            let r = DaySimulation::builder()
                .site(site.clone())
                .season(*season)
                .mix(mix.clone())
                .policy(Policy::MpptOpt)
                .build()
                .expect("valid config")
                .run()
                .expect("day runs");
            base_energy += r.energy_drawn().get();
            base_ptp += r.solar_instructions();
        }

        let mut normalized_energy = Vec::new();
        let mut normalized_ptp = Vec::new();
        for &budget in &THRESHOLDS_W {
            let mut energy = 0.0;
            let mut ptp = 0.0;
            for mix in mixes {
                let r = DaySimulation::builder()
                    .site(site.clone())
                    .season(*season)
                    .mix(mix.clone())
                    .policy(Policy::FixedPower(Watts::new(budget)))
                    .build()
                    .expect("valid config")
                    .run()
                    .expect("day runs");
                energy += r.energy_drawn().get();
                ptp += r.solar_instructions();
            }
            normalized_energy.push(energy / base_energy.max(1e-9));
            normalized_ptp.push(ptp / base_ptp.max(1e-9));
        }
        FixedBudgetRow {
            site: site.code().to_string(),
            season: season.to_string(),
            normalized_energy,
            normalized_ptp,
        }
    });

    Fig16And17 {
        budgets: THRESHOLDS_W.to_vec(),
        mixes: mixes.iter().map(|m| m.name().to_string()).collect(),
        rows,
    }
}

/// Runs the experiment (averaging over a representative mix subset).
pub fn run(out_dir: &Path) -> Fig16And17 {
    let mixes = [Mix::h1(), Mix::m2(), Mix::hm2(), Mix::l1()];
    let fig = compute(&mixes);

    for (title, pick) in [
        ("Figure 16 — normalized solar energy under fixed budgets", 0),
        ("Figure 17 — normalized PTP under fixed budgets", 1),
    ] {
        println!("{title}");
        let mut table = TextTable::new(["site", "season", "25W", "50W", "75W", "100W", "125W"]);
        for row in &fig.rows {
            let series = if pick == 0 {
                &row.normalized_energy
            } else {
                &row.normalized_ptp
            };
            let mut cells = vec![row.site.clone(), row.season.clone()];
            cells.extend(series.iter().map(|v| format!("{v:.2}")));
            table.row(cells);
        }
        println!("{table}");
    }
    let (best_energy, best_ptp) = fig.best_fixed();
    println!(
        "Best fixed budget anywhere: {:.0} % energy, {:.0} % PTP of SolarCore \
         (SolarCore wins by ≥ {:.0} %)",
        100.0 * best_energy,
        100.0 * best_ptp,
        100.0 * (1.0 / best_ptp.max(1e-9) - 1.0)
    );
    write_json(out_dir, "fig16_17_fixed_budget", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fixed_budget_reaches_solarcore() {
        // Cut the sweep down for test time: representative mixes only.
        let fig = compute(&[Mix::hm2()]);
        assert_eq!(fig.rows.len(), 16);
        let (best_energy, best_ptp) = fig.best_fixed();
        assert!(
            best_energy < 0.85,
            "a fixed budget recovered {best_energy:.2} of SolarCore energy"
        );
        assert!(
            best_ptp < 0.85,
            "a fixed budget recovered {best_ptp:.2} of SolarCore PTP"
        );
        // And all entries are genuine fractions.
        for row in &fig.rows {
            for v in row.normalized_energy.iter().chain(&row.normalized_ptp) {
                assert!((0.0..1.05).contains(v), "{} {}: {v}", row.site, row.season);
            }
        }
    }
}
