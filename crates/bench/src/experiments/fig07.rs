//! Figure 7: module I-V and P-V characteristics for temperatures
//! T ∈ {0, 25, 50, 75} °C at 1000 W/m².

use std::path::Path;

use pv::units::{Celsius, Irradiance};
use pv::{CellEnv, PvModule};

use crate::experiments::fig06::{characteristic, print_family, CurveFamily};
use crate::output::write_json;

/// Computes the temperature family.
pub fn compute() -> CurveFamily {
    let module = PvModule::bp3180n();
    let curves = [0.0, 25.0, 50.0, 75.0]
        .into_iter()
        .map(|t| {
            characteristic(
                &module,
                CellEnv::new(Irradiance::new(1000.0), Celsius::new(t)),
                t,
            )
        })
        .collect();
    CurveFamily {
        swept: "temperature",
        curves,
    }
}

/// Runs the experiment.
pub fn run(out_dir: &Path) -> CurveFamily {
    let fig = compute();
    print_family(
        "Figure 7 — I-V / P-V curves vs temperature (G = 1000 W/m²)",
        "T (°C)",
        &fig,
    );
    write_json(out_dir, "fig07_iv_temperature", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_shifts_mpp_left_and_down() {
        let fig = compute();
        assert_eq!(fig.curves.len(), 4);
        for w in fig.curves.windows(2) {
            // Hotter: lower Voc, lower Pmax, lower Vmp, slightly higher Isc.
            assert!(w[1].voc < w[0].voc);
            assert!(w[1].pmax < w[0].pmax);
            assert!(w[1].vmp < w[0].vmp);
            assert!(w[1].isc > w[0].isc);
        }
    }
}
