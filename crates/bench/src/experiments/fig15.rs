//! Figure 15: effective operation duration vs power-transfer threshold.
//!
//! For a direct-coupled system with a fixed power budget, the load only
//! operates while the available MPP power exceeds the transfer threshold.
//! The paper groups site-seasons by how their duration declines as the
//! threshold rises from 25 W to 125 W: slowly, linearly, or rapidly.

use std::path::Path;

use serde::Serialize;

use pv::PvArray;
use pv::PvGenerator;
use solarenv::{EnvTrace, Season, Site};

use crate::output::{write_json, TextTable};

/// The fixed power budgets the paper sweeps (watts).
pub const THRESHOLDS_W: [f64; 5] = [25.0, 50.0, 75.0, 100.0, 125.0];

/// Decline classes from the figure's three panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DeclineShape {
    /// Duration stays near 1.0 until high thresholds (panel a).
    Slow,
    /// Roughly proportional decline (panel b).
    Linear,
    /// Collapses early (panel c).
    Rapid,
}

/// One site-season curve.
#[derive(Debug, Clone, Serialize)]
pub struct DurationCurve {
    /// Site code.
    pub site: String,
    /// Season label.
    pub season: String,
    /// Effective duration (fraction of daytime) per threshold, normalized
    /// to the 25 W value as in the paper.
    pub normalized: Vec<f64>,
    /// Raw (unnormalized) fractions.
    pub raw: Vec<f64>,
    /// The classified decline shape.
    pub shape: DeclineShape,
}

/// The computed figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15 {
    /// All 16 site-season curves.
    pub curves: Vec<DurationCurve>,
}

/// Classifies by the normalized duration at the 75 W midpoint.
fn classify(normalized: &[f64]) -> DeclineShape {
    let mid = normalized[2];
    if mid > 0.75 {
        DeclineShape::Slow
    } else if mid > 0.53 {
        DeclineShape::Linear
    } else {
        DeclineShape::Rapid
    }
}

/// Computes the figure, averaging `days` weather realizations.
pub fn compute(days: u32) -> Fig15 {
    let array = PvArray::solarcore_default();
    let mut curves = Vec::new();
    for site in Site::all() {
        for &season in &Season::ALL {
            let mut fractions = [0.0f64; THRESHOLDS_W.len()];
            let mut total = 0usize;
            for day in 0..days {
                let trace = EnvTrace::generate(&site, season, day);
                for sample in trace.samples() {
                    let mpp = array.mpp(sample.cell_env()).power.get();
                    for (slot, &threshold) in fractions.iter_mut().zip(&THRESHOLDS_W) {
                        if mpp >= threshold {
                            *slot += 1.0;
                        }
                    }
                }
                total += trace.samples().len();
            }
            let raw: Vec<f64> = fractions.iter().map(|f| f / total as f64).collect();
            let base = raw[0].max(1e-9);
            let normalized: Vec<f64> = raw.iter().map(|r| r / base).collect();
            let shape = classify(&normalized);
            curves.push(DurationCurve {
                site: site.code().to_string(),
                season: season.to_string(),
                normalized,
                raw,
                shape,
            });
        }
    }
    Fig15 { curves }
}

/// Runs the experiment.
pub fn run(out_dir: &Path) -> Fig15 {
    let fig = compute(3);
    println!("Figure 15 — effective operation duration vs power-transfer threshold");
    let mut table = TextTable::new([
        "site", "season", "25W", "50W", "75W", "100W", "125W", "shape",
    ]);
    for c in &fig.curves {
        let mut row = vec![c.site.clone(), c.season.clone()];
        row.extend(c.normalized.iter().map(|v| format!("{v:.2}")));
        row.push(format!("{:?}", c.shape));
        table.row(row);
    }
    println!("{table}");
    write_json(out_dir, "fig15_duration_threshold", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_decline_monotonically_with_threshold() {
        let fig = compute(1);
        assert_eq!(fig.curves.len(), 16);
        for c in &fig.curves {
            for w in c.normalized.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{} {}", c.site, c.season);
            }
            assert!((c.normalized[0] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sunny_sites_decline_slower_than_cloudy_ones() {
        let fig = compute(2);
        let mid = |site: &str, season: &str| -> f64 {
            fig.curves
                .iter()
                .find(|c| c.site == site && c.season == season)
                .map(|c| c.normalized[2])
                .unwrap()
        };
        // Phoenix summer holds duration far better than Oak Ridge autumn.
        assert!(mid("AZ", "Jul") > mid("TN", "Oct"));
    }

    #[test]
    fn all_three_shapes_appear() {
        let fig = compute(3);
        let shapes: Vec<DeclineShape> = fig.curves.iter().map(|c| c.shape).collect();
        assert!(shapes.contains(&DeclineShape::Slow));
        assert!(shapes.contains(&DeclineShape::Rapid));
    }
}
