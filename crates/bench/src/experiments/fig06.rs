//! Figure 6: module I-V and P-V characteristics for irradiances
//! G ∈ {400, 600, 800, 1000} W/m² at 25 °C.

use std::path::Path;

use serde::Serialize;

use pv::units::{Celsius, Irradiance};
use pv::{CellEnv, IvCurve, PvModule};

use crate::output::{write_json, TextTable};

/// Sample density of the exported curves.
const CURVE_SEGMENTS: usize = 120;

/// One exported characteristic curve with its cardinal points.
#[derive(Debug, Clone, Serialize)]
pub struct CharacteristicCurve {
    /// The swept parameter value (irradiance in W/m² or temperature in °C).
    pub parameter: f64,
    /// Short-circuit current, A.
    pub isc: f64,
    /// Open-circuit voltage, V.
    pub voc: f64,
    /// MPP voltage, V.
    pub vmp: f64,
    /// MPP current, A.
    pub imp: f64,
    /// MPP power, W.
    pub pmax: f64,
    /// Sampled `(V, I)` points.
    pub points: Vec<(f64, f64)>,
}

/// The computed figure.
#[derive(Debug, Clone, Serialize)]
pub struct CurveFamily {
    /// Which parameter is swept (`"irradiance"` or `"temperature"`).
    pub swept: &'static str,
    /// The family of curves.
    pub curves: Vec<CharacteristicCurve>,
}

/// Extracts one labeled curve under `env`.
pub fn characteristic(module: &PvModule, env: CellEnv, parameter: f64) -> CharacteristicCurve {
    let mpp = module.mpp(env);
    let curve = IvCurve::sample(module, env, CURVE_SEGMENTS);
    CharacteristicCurve {
        parameter,
        isc: module.short_circuit_current(env).get(),
        voc: module.open_circuit_voltage(env).get(),
        vmp: mpp.voltage.get(),
        imp: mpp.current.get(),
        pmax: mpp.power.get(),
        points: curve
            .points()
            .iter()
            .map(|p| (p.voltage.get(), p.current.get()))
            .collect(),
    }
}

/// Computes the irradiance family.
pub fn compute() -> CurveFamily {
    let module = PvModule::bp3180n();
    let curves = [400.0, 600.0, 800.0, 1000.0]
        .into_iter()
        .map(|g| {
            characteristic(
                &module,
                CellEnv::new(Irradiance::new(g), Celsius::new(25.0)),
                g,
            )
        })
        .collect();
    CurveFamily {
        swept: "irradiance",
        curves,
    }
}

/// Prints a curve family's cardinal points.
pub fn print_family(title: &str, unit: &str, family: &CurveFamily) {
    let mut table = TextTable::new([unit, "Isc (A)", "Voc (V)", "Vmp (V)", "Imp (A)", "Pmax (W)"]);
    for c in &family.curves {
        table.row([
            format!("{:.0}", c.parameter),
            format!("{:.2}", c.isc),
            format!("{:.1}", c.voc),
            format!("{:.1}", c.vmp),
            format!("{:.2}", c.imp),
            format!("{:.1}", c.pmax),
        ]);
    }
    println!("{title}");
    println!("{table}");
}

/// Runs the experiment.
pub fn run(out_dir: &Path) -> CurveFamily {
    let fig = compute();
    print_family(
        "Figure 6 — I-V / P-V curves vs irradiance (T = 25 °C)",
        "G (W/m²)",
        &fig,
    );
    write_json(out_dir, "fig06_iv_irradiance", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpp_moves_upward_with_irradiance() {
        let fig = compute();
        assert_eq!(fig.curves.len(), 4);
        for w in fig.curves.windows(2) {
            assert!(w[1].pmax > w[0].pmax);
            assert!(w[1].isc > w[0].isc);
        }
        // Voc varies only mildly with G (logarithmic).
        let voc_span = fig.curves.last().unwrap().voc - fig.curves.first().unwrap().voc;
        assert!(voc_span > 0.0 && voc_span < 3.0);
    }

    #[test]
    fn curves_are_dense_enough_to_plot() {
        let fig = compute();
        for c in &fig.curves {
            assert_eq!(c.points.len(), CURVE_SEGMENTS + 1);
        }
    }
}
