//! Figure 18: average solar energy utilization per site, per load-adaptation
//! method, against the battery-system efficiency tiers.

use std::path::Path;

use serde::Serialize;

use solarcore::metrics::mean;
use solarcore::{BatteryTier, Policy};

use crate::grid::{PolicyGrid, GRID_POLICIES};
use crate::output::{write_json, TextTable};

/// One site's bars.
#[derive(Debug, Clone, Serialize)]
pub struct SiteUtilization {
    /// Site code.
    pub site: String,
    /// Mean utilization per policy (IC, RR, Opt), averaged over seasons and
    /// mixes.
    pub by_policy: Vec<(String, f64)>,
}

/// The computed figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig18 {
    /// One entry per site.
    pub sites: Vec<SiteUtilization>,
    /// Battery tier reference lines (High/Typical/Low derating).
    pub battery_tiers: Vec<(String, f64)>,
    /// Grand mean utilization of MPPT&Opt.
    pub opt_average: f64,
}

/// Computes the figure from a policy grid.
pub fn compute(grid: &PolicyGrid) -> Fig18 {
    let mut site_codes: Vec<String> = Vec::new();
    for s in &grid.summaries {
        if !site_codes.contains(&s.site) {
            site_codes.push(s.site.clone());
        }
    }
    let sites = site_codes
        .iter()
        .map(|site| {
            let by_policy = GRID_POLICIES
                .iter()
                .map(|&p| {
                    let vals: Vec<f64> = grid
                        .for_policy(p)
                        .filter(|s| s.site == *site)
                        .map(|s| s.utilization)
                        .collect();
                    (p.label().to_string(), mean(&vals))
                })
                .collect();
            SiteUtilization {
                site: site.clone(),
                by_policy,
            }
        })
        .collect();
    Fig18 {
        sites,
        battery_tiers: vec![
            (
                "High efficiency battery".to_string(),
                BatteryTier::High.derating(),
            ),
            (
                "Average efficiency battery".to_string(),
                BatteryTier::Typical.derating(),
            ),
            (
                "Low efficiency battery".to_string(),
                BatteryTier::Low.derating(),
            ),
        ],
        opt_average: grid.mean_utilization(Policy::MpptOpt),
    }
}

/// Runs the experiment.
pub fn run(grid: &PolicyGrid, out_dir: &Path) -> Fig18 {
    let fig = compute(grid);
    println!("Figure 18 — average energy utilization per site and policy");
    let mut table = TextTable::new(["site", "MPPT&IC", "MPPT&RR", "MPPT&Opt"]);
    for s in &fig.sites {
        let mut row = vec![s.site.clone()];
        row.extend(
            s.by_policy
                .iter()
                .map(|(_, u)| format!("{:.1} %", 100.0 * u)),
        );
        table.row(row);
    }
    println!("{table}");
    for (label, v) in &fig.battery_tiers {
        println!("  reference: {label}: {:.0} %", 100.0 * v);
    }
    println!(
        "  MPPT&Opt grand average: {:.1} % (paper: 82 %)",
        100.0 * fig.opt_average
    );
    write_json(out_dir, "fig18_energy_util", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;

    #[test]
    fn utilization_is_high_and_ordered_by_site_potential() {
        let grid = PolicyGrid::compute(&GridConfig::quick());
        let fig = compute(&grid);
        assert_eq!(fig.sites.len(), 2); // AZ, TN in the quick grid
                                        // Headline scale: average solar utilization in the 70–95 % band.
        assert!(
            (0.70..=0.95).contains(&fig.opt_average),
            "opt average {:.2}",
            fig.opt_average
        );
        // Battery reference lines present.
        assert_eq!(fig.battery_tiers.len(), 3);
        assert!((fig.battery_tiers[1].1 - 0.81).abs() < 0.01);
    }
}
