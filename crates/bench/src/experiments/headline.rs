//! The paper's headline claims, recomputed from the policy grid and the
//! fixed-budget sweep:
//!
//! * ~82 % average green-energy utilization without storage;
//! * MPPT&Opt beats round-robin adaptation by ~10.8 %;
//! * MPPT&Opt beats the best fixed-power budget by ≥ 43 %;
//! * MPPT&Opt is within ~1 % of the best battery-equipped system
//!   (Battery-U) while using no battery at all;
//! * MPPT&Opt beats individual-core tuning by ~37.8 %.

use std::path::Path;

use serde::Serialize;

use solarcore::Policy;

use crate::experiments::fig16::Fig16And17;
use crate::grid::PolicyGrid;
use crate::output::{write_json, TextTable};

/// One reproduced claim.
#[derive(Debug, Clone, Serialize)]
pub struct Claim {
    /// What is measured.
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

/// The computed claim set.
#[derive(Debug, Clone, Serialize)]
pub struct Headline {
    /// All reproduced claims.
    pub claims: Vec<Claim>,
}

/// Computes the claims from the shared grid and the fixed-budget sweep.
pub fn compute(grid: &PolicyGrid, fixed: &Fig16And17) -> Headline {
    let opt = grid.mean_normalized_ptp(Policy::MpptOpt);
    let rr = grid.mean_normalized_ptp(Policy::MpptRr);
    let ic = grid.mean_normalized_ptp(Policy::MpptIc);
    let bu = grid.mean_normalized_battery_upper();
    let (_, best_fixed_ptp) = fixed.best_fixed();

    let claims = vec![
        Claim {
            name: "average green energy utilization".to_string(),
            paper: 0.82,
            measured: grid.mean_utilization(Policy::MpptOpt),
        },
        Claim {
            name: "MPPT&Opt gain over MPPT&RR (%)".to_string(),
            paper: 10.8,
            measured: 100.0 * (opt / rr - 1.0),
        },
        Claim {
            name: "MPPT&Opt gain over MPPT&IC (%)".to_string(),
            paper: 37.8,
            measured: 100.0 * (opt / ic - 1.0),
        },
        Claim {
            name: "MPPT&Opt gain over best fixed budget (%)".to_string(),
            paper: 43.0,
            measured: 100.0 * (1.0 / best_fixed_ptp.max(1e-9) - 1.0),
        },
        Claim {
            name: "performance vs Battery-U (ratio)".to_string(),
            paper: 0.99,
            measured: opt / bu,
        },
        Claim {
            name: "normalized PTP of MPPT&IC".to_string(),
            paper: 0.82,
            measured: ic,
        },
        Claim {
            name: "normalized PTP of MPPT&RR".to_string(),
            paper: 1.02,
            measured: rr,
        },
        Claim {
            name: "normalized PTP of MPPT&Opt".to_string(),
            paper: 1.13,
            measured: opt,
        },
        Claim {
            name: "normalized PTP of Battery-U".to_string(),
            paper: 1.14,
            measured: bu,
        },
    ];
    Headline { claims }
}

/// Runs the experiment.
pub fn run(grid: &PolicyGrid, fixed: &Fig16And17, out_dir: &Path) -> Headline {
    let headline = compute(grid, fixed);
    println!("Headline claims — paper vs this reproduction");
    let mut table = TextTable::new(["claim", "paper", "measured"]);
    for c in &headline.claims {
        table.row([
            c.name.clone(),
            format!("{:.2}", c.paper),
            format!("{:.2}", c.measured),
        ]);
    }
    println!("{table}");
    write_json(out_dir, "headline", &headline).expect("results dir is writable");
    headline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig16;
    use crate::grid::{GridConfig, PolicyGrid};
    use workloads::Mix;

    #[test]
    fn claims_have_the_papers_directions() {
        let grid = PolicyGrid::compute(&GridConfig::quick());
        let fixed = fig16::compute(&[Mix::hm2()]);
        let headline = compute(&grid, &fixed);
        let get = |name: &str| -> f64 {
            headline
                .claims
                .iter()
                .find(|c| c.name.contains(name))
                .unwrap()
                .measured
        };
        assert!(get("utilization") > 0.7);
        assert!(get("over MPPT&RR") >= 0.0);
        assert!(get("over MPPT&IC") > get("over MPPT&RR"));
        assert!(get("best fixed budget") > 20.0);
        assert!((get("vs Battery-U") - 1.0).abs() < 0.15);
    }
}
