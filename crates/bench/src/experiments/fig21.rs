//! Figure 21: normalized performance-time product (PTP) per
//! site × season × mix for the three MPPT scheduling methods, against the
//! Battery-U/L bounds. Everything is normalized to Battery-L, as in the
//! paper.

use std::path::Path;

use serde::Serialize;

use crate::grid::{PolicyGrid, GRID_POLICIES};
use crate::output::{write_json, TextTable};

/// One site-season-mix group of bars.
#[derive(Debug, Clone, Serialize)]
pub struct PtpGroup {
    /// Site code.
    pub site: String,
    /// Season label.
    pub season: String,
    /// Mix name.
    pub mix: String,
    /// Normalized PTP per policy (IC, RR, Opt).
    pub by_policy: Vec<(String, f64)>,
    /// Battery-U normalized PTP.
    pub battery_upper: f64,
}

/// The computed figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig21 {
    /// All bar groups.
    pub groups: Vec<PtpGroup>,
    /// Grand means per policy plus Battery-U (the paper's 0.82 / 1.02 /
    /// 1.13 / 1.14 line).
    pub means: Vec<(String, f64)>,
}

/// Computes the figure from a policy grid.
pub fn compute(grid: &PolicyGrid) -> Fig21 {
    let mut groups: Vec<PtpGroup> = Vec::new();
    for b in &grid.battery {
        if b.lower_ptp <= 0.0 {
            continue;
        }
        let by_policy = GRID_POLICIES
            .iter()
            .map(|&p| {
                let vals: Vec<f64> = grid
                    .for_policy(p)
                    .filter(|s| {
                        s.site == b.site && s.season == b.season && s.mix == b.mix && s.day == b.day
                    })
                    .map(|s| s.ptp / b.lower_ptp)
                    .collect();
                (p.label().to_string(), solarcore::metrics::mean(&vals))
            })
            .collect();
        groups.push(PtpGroup {
            site: b.site.clone(),
            season: b.season.clone(),
            mix: b.mix.clone(),
            by_policy,
            battery_upper: b.upper_ptp / b.lower_ptp,
        });
    }

    let mut means: Vec<(String, f64)> = GRID_POLICIES
        .iter()
        .map(|&p| (p.label().to_string(), grid.mean_normalized_ptp(p)))
        .collect();
    means.push((
        "Battery-U".to_string(),
        grid.mean_normalized_battery_upper(),
    ));
    Fig21 { groups, means }
}

/// Runs the experiment.
pub fn run(grid: &PolicyGrid, out_dir: &Path) -> Fig21 {
    let fig = compute(grid);
    println!("Figure 21 — normalized PTP (baseline: Battery-L = 1.0)");
    let mut table = TextTable::new(["site", "season", "mix", "IC", "RR", "Opt", "Battery-U"]);
    for g in &fig.groups {
        let mut row = vec![g.site.clone(), g.season.clone(), g.mix.clone()];
        row.extend(g.by_policy.iter().map(|(_, v)| format!("{v:.2}")));
        row.push(format!("{:.2}", g.battery_upper));
        table.row(row);
    }
    println!("{table}");
    println!("Grand means (paper: IC 0.82, RR 1.02, Opt 1.13, Battery-U 1.14):");
    for (label, v) in &fig.means {
        println!("  {label}: {v:.3}");
    }
    write_json(out_dir, "fig21_ptp_policies", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridConfig, PolicyGrid};

    #[test]
    fn policy_ordering_and_battery_bracketing() {
        let grid = PolicyGrid::compute(&GridConfig::quick());
        let fig = compute(&grid);
        assert_eq!(fig.groups.len(), 12); // 2×2×3 cells
        let mean = |label: &str| -> f64 { fig.means.iter().find(|(l, _)| l == label).unwrap().1 };
        let ic = mean("MPPT&IC");
        let rr = mean("MPPT&RR");
        let opt = mean("MPPT&Opt");
        let bu = mean("Battery-U");
        // The paper's ordering.
        assert!(ic < rr, "IC {ic:.3} < RR {rr:.3}");
        assert!(rr <= opt, "RR {rr:.3} <= Opt {opt:.3}");
        // Battery-U ≈ 0.92/0.81 by construction.
        assert!((bu - 1.136).abs() < 0.03, "Battery-U {bu:.3}");
        // Opt is competitive with the best battery system (within ~10 %).
        assert!((opt - bu).abs() < 0.12, "Opt {opt:.3} vs BU {bu:.3}");
        // Everything beats Battery-L by construction of the ordering above
        // except possibly IC on bad cells; grand means are near/above 1.
        assert!(ic > 0.7);
    }
}
