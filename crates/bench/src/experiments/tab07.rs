//! Table 7: mean relative MPP-tracking error per site × season × workload.

use std::path::Path;

use serde::Serialize;

use solarcore::metrics::geometric_mean;
use solarcore::Policy;

use crate::grid::PolicyGrid;
use crate::output::{write_json, TextTable};

/// The computed table.
#[derive(Debug, Clone, Serialize)]
pub struct Tab07 {
    /// Mix names, in the paper's column order.
    pub mixes: Vec<String>,
    /// Rows: `(site, season, [error per mix])`.
    pub rows: Vec<(String, String, Vec<f64>)>,
}

/// Computes the table from a policy grid (uses the MPPT&Opt runs; multiple
/// days per cell are combined with the paper's geometric mean).
pub fn compute(grid: &PolicyGrid) -> Tab07 {
    let mut mixes: Vec<String> = Vec::new();
    for s in grid.for_policy(Policy::MpptOpt) {
        if !mixes.contains(&s.mix) {
            mixes.push(s.mix.clone());
        }
    }
    let mut rows: Vec<(String, String, Vec<f64>)> = Vec::new();
    for s in grid.for_policy(Policy::MpptOpt) {
        if !rows
            .iter()
            .any(|(site, season, _)| *site == s.site && *season == s.season)
        {
            rows.push((s.site.clone(), s.season.clone(), Vec::new()));
        }
    }
    for (site, season, errors) in &mut rows {
        for mix in &mixes {
            let cell: Vec<f64> = grid
                .for_policy(Policy::MpptOpt)
                .filter(|s| s.site == *site && s.season == *season && s.mix == *mix)
                .map(|s| s.tracking_error)
                .collect();
            errors.push(geometric_mean(&cell));
        }
    }
    Tab07 { mixes, rows }
}

/// Runs the experiment.
pub fn run(grid: &PolicyGrid, out_dir: &Path) -> Tab07 {
    let tab = compute(grid);
    let mut header = vec!["site".to_string(), "season".to_string()];
    header.extend(tab.mixes.iter().cloned());
    let mut table = TextTable::new(header);
    for (site, season, errors) in &tab.rows {
        let mut row = vec![site.clone(), season.clone()];
        row.extend(errors.iter().map(|e| format!("{:.1}%", 100.0 * e)));
        table.row(row);
    }
    println!("Table 7 — average relative tracking error (MPPT&Opt)");
    println!("{table}");
    write_json(out_dir, "tab07_tracking_error", &tab).expect("results dir is writable");
    tab
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridConfig, PolicyGrid};

    #[test]
    fn errors_are_single_to_low_double_digit_percent() {
        let grid = PolicyGrid::compute(&GridConfig::quick());
        let tab = compute(&grid);
        assert_eq!(tab.mixes.len(), 3);
        assert_eq!(tab.rows.len(), 4); // 2 sites × 2 seasons
        for (site, season, errors) in &tab.rows {
            for e in errors {
                assert!(
                    (0.005..0.30).contains(e),
                    "{site} {season}: error {e:.3} outside Table 7's range"
                );
            }
        }
    }
}
