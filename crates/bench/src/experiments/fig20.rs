//! Figure 20: average solar energy utilization vs effective SolarCore
//! operation duration, per load-adaptation method.

use std::path::Path;

use serde::Serialize;

use solarcore::metrics::mean;

use crate::grid::{PolicyGrid, GRID_POLICIES};
use crate::output::{write_json, TextTable};

/// The duration buckets of the figure's x-axis (fraction of daytime).
pub const BUCKETS: [(f64, f64, &str); 5] = [
    (0.90, 1.01, "> 90"),
    (0.80, 0.90, "80~90"),
    (0.70, 0.80, "70~80"),
    (0.60, 0.70, "60~70"),
    (0.50, 0.60, "50~60"),
];

/// One bucket of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct UtilBucket {
    /// Bucket label (e.g. `"80~90"`).
    pub label: String,
    /// Mean utilization per policy (IC, RR, Opt) of the runs that landed in
    /// this duration bucket (`None` if no run did).
    pub by_policy: Vec<(String, Option<f64>)>,
    /// How many runs landed here (per policy summed).
    pub count: usize,
}

/// The computed figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig20 {
    /// Buckets, longest duration first.
    pub buckets: Vec<UtilBucket>,
}

/// Computes the figure from a policy grid.
pub fn compute(grid: &PolicyGrid) -> Fig20 {
    let buckets = BUCKETS
        .iter()
        .map(|&(lo, hi, label)| {
            let mut count = 0;
            let by_policy = GRID_POLICIES
                .iter()
                .map(|&p| {
                    let vals: Vec<f64> = grid
                        .for_policy(p)
                        .filter(|s| s.effective_fraction >= lo && s.effective_fraction < hi)
                        .map(|s| s.utilization)
                        .collect();
                    count += vals.len();
                    let m = (!vals.is_empty()).then(|| mean(&vals));
                    (p.label().to_string(), m)
                })
                .collect();
            UtilBucket {
                label: label.to_string(),
                by_policy,
                count,
            }
        })
        .collect();
    Fig20 { buckets }
}

/// Runs the experiment.
pub fn run(grid: &PolicyGrid, out_dir: &Path) -> Fig20 {
    let fig = compute(grid);
    println!("Figure 20 — avg energy utilization vs effective operation duration");
    let mut table = TextTable::new(["duration %", "MPPT&IC", "MPPT&RR", "MPPT&Opt", "runs"]);
    for b in &fig.buckets {
        let mut row = vec![b.label.clone()];
        for (_, v) in &b.by_policy {
            row.push(match v {
                Some(u) => format!("{:.1} %", 100.0 * u),
                None => "—".to_string(),
            });
        }
        row.push(b.count.to_string());
        table.row(row);
    }
    println!("{table}");
    write_json(out_dir, "fig20_util_vs_duration", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridConfig, PolicyGrid};

    #[test]
    fn utilization_fallss_with_shorter_effective_duration() {
        let grid = PolicyGrid::compute(&GridConfig::quick());
        let fig = compute(&grid);
        assert_eq!(fig.buckets.len(), 5);
        // Collect the populated bucket means for MPPT&Opt, longest first;
        // the trend must be non-increasing overall (first populated ≥ last
        // populated).
        let opt: Vec<f64> = fig
            .buckets
            .iter()
            .filter_map(|b| b.by_policy.iter().find(|(p, _)| p == "MPPT&Opt"))
            .filter_map(|(_, v)| *v)
            .collect();
        if opt.len() >= 2 {
            assert!(
                opt.first().unwrap() >= opt.last().unwrap(),
                "utilization should fall with duration: {opt:?}"
            );
        }
    }
}
