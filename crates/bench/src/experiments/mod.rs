//! One module per reproduced table/figure. See the crate docs for the map.

pub mod ablation;
pub mod fig01;
pub mod fig06;
pub mod fig07;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod headline;
pub mod tab02;
pub mod tab03;
pub mod tab07;
