//! Figure 19: effective operation duration (% daytime on solar) per
//! site-season weather pattern.

use std::path::Path;

use serde::Serialize;

use solarcore::metrics::mean;
use solarcore::Policy;

use crate::grid::PolicyGrid;
use crate::output::{write_json, TextTable};

/// One bar of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct DurationBar {
    /// Site code.
    pub site: String,
    /// Season label.
    pub season: String,
    /// Fraction of daytime powered by solar (MPPT&Opt, mix-averaged).
    pub solar_fraction: f64,
}

/// The computed figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig19 {
    /// One bar per site-season.
    pub bars: Vec<DurationBar>,
}

/// Computes the figure from a policy grid.
pub fn compute(grid: &PolicyGrid) -> Fig19 {
    let mut keys: Vec<(String, String)> = Vec::new();
    for s in grid.for_policy(Policy::MpptOpt) {
        let key = (s.site.clone(), s.season.clone());
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    let bars = keys
        .into_iter()
        .map(|(site, season)| {
            let vals: Vec<f64> = grid
                .for_policy(Policy::MpptOpt)
                .filter(|s| s.site == site && s.season == season)
                .map(|s| s.effective_fraction)
                .collect();
            DurationBar {
                site,
                season,
                solar_fraction: mean(&vals),
            }
        })
        .collect();
    Fig19 { bars }
}

/// Runs the experiment.
pub fn run(grid: &PolicyGrid, out_dir: &Path) -> Fig19 {
    let fig = compute(grid);
    println!("Figure 19 — effective operation duration (% daytime on solar)");
    let mut table = TextTable::new(["site", "season", "solar", "utility"]);
    for b in &fig.bars {
        table.row([
            b.site.clone(),
            b.season.clone(),
            format!("{:.0} %", 100.0 * b.solar_fraction),
            format!("{:.0} %", 100.0 * (1.0 - b.solar_fraction)),
        ]);
    }
    println!("{table}");
    write_json(out_dir, "fig19_effective_duration", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridConfig, PolicyGrid};

    #[test]
    fn durations_land_in_the_papers_band() {
        let grid = PolicyGrid::compute(&GridConfig::quick());
        let fig = compute(&grid);
        assert_eq!(fig.bars.len(), 4);
        for b in &fig.bars {
            // Paper: 60–90 % of daytime, give or take the sunniest cells.
            assert!(
                (0.45..=1.0).contains(&b.solar_fraction),
                "{} {}: {:.2}",
                b.site,
                b.season,
                b.solar_fraction
            );
        }
        // Phoenix January beats Oak Ridge January.
        let frac = |site: &str, season: &str| {
            fig.bars
                .iter()
                .find(|b| b.site == site && b.season == season)
                .unwrap()
                .solar_fraction
        };
        assert!(frac("AZ", "Jan") > frac("TN", "Jan"));
    }
}
