//! Figure 1: solar energy utilization of a **fixed** load under varying
//! irradiance.
//!
//! A resistive load matched to the MPP at 1000 W/m² is left connected as
//! the irradiance falls to 400 W/m². The paper's point: without MPP
//! tracking, more than half the available energy is lost at low irradiance.

use std::path::Path;

use serde::Serialize;

use pv::units::{Celsius, Irradiance};
use pv::{resistive_operating_point, CellEnv, PvModule};

use crate::output::{write_json, TextTable};

/// One bar of Figure 1.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct UtilizationPoint {
    /// Irradiance in W/m².
    pub irradiance: f64,
    /// Power delivered into the fixed load, W.
    pub fixed_load_power: f64,
    /// Maximum available power at this irradiance, W.
    pub mpp_power: f64,
    /// `fixed_load_power / mpp_power`.
    pub utilization: f64,
}

/// The computed figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig01 {
    /// The swept irradiance points, brightest first (as in the paper).
    pub points: Vec<UtilizationPoint>,
}

/// Computes the figure.
pub fn compute() -> Fig01 {
    let module = PvModule::bp3180n();
    let stc = CellEnv::stc();
    let mpp_stc = module.mpp(stc);
    // The fixed load: matched exactly at STC.
    let load = mpp_stc.voltage / mpp_stc.current;

    let points = [1000.0, 800.0, 600.0, 400.0]
        .into_iter()
        .map(|g| {
            let env = CellEnv::new(Irradiance::new(g), Celsius::new(25.0));
            let op = resistive_operating_point(&module, env, load);
            let mpp = module.mpp(env);
            UtilizationPoint {
                irradiance: g,
                fixed_load_power: op.power().get(),
                mpp_power: mpp.power.get(),
                utilization: op.power().get() / mpp.power.get(),
            }
        })
        .collect();
    Fig01 { points }
}

/// Runs the experiment: computes, prints and persists.
pub fn run(out_dir: &Path) -> Fig01 {
    let fig = compute();
    let mut table = TextTable::new(["G (W/m²)", "fixed-load W", "MPP W", "utilization"]);
    for p in &fig.points {
        table.row([
            format!("{:.0}", p.irradiance),
            format!("{:.1}", p.fixed_load_power),
            format!("{:.1}", p.mpp_power),
            format!("{:.1} %", 100.0 * p.utilization),
        ]);
    }
    println!("Figure 1 — fixed-load energy utilization vs irradiance");
    println!("{table}");
    write_json(out_dir, "fig01_fixed_load", &fig).expect("results dir is writable");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_collapses_at_low_irradiance() {
        let fig = compute();
        assert_eq!(fig.points.len(), 4);
        // Matched at STC: near-perfect utilization there.
        assert!(fig.points[0].utilization > 0.98);
        // Paper: > 50 % energy loss at 400 W/m².
        let dim = fig.points.last().unwrap();
        assert_eq!(dim.irradiance, 400.0);
        assert!(dim.utilization < 0.72, "utilization {:.2}", dim.utilization);
        // Monotone decline.
        for w in fig.points.windows(2) {
            assert!(w[1].utilization < w[0].utilization);
        }
    }
}
