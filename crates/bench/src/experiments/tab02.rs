//! Table 2: the four evaluated sites and their measured solar potential.

use std::path::Path;

use serde::Serialize;

use solarenv::{stats, Site, SolarPotential};

use crate::output::{write_json, TextTable};

/// Weather realizations averaged per season for the potential estimate.
const DAYS_PER_SEASON: u32 = 5;

/// One row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct SiteRow {
    /// Site code.
    pub code: String,
    /// Full site name.
    pub name: String,
    /// Measured average insolation, kWh/m²/day.
    pub kwh_per_day: f64,
    /// Band the measurement falls in.
    pub measured_band: String,
    /// Band the paper assigns (the calibration target).
    pub target_band: String,
}

/// The computed table.
#[derive(Debug, Clone, Serialize)]
pub struct Tab02 {
    /// One row per site, paper order.
    pub rows: Vec<SiteRow>,
}

/// Computes the table.
pub fn compute() -> Tab02 {
    let rows = Site::all()
        .into_iter()
        .map(|site| {
            let kwh = stats::average_daily_insolation(&site, DAYS_PER_SEASON);
            SiteRow {
                code: site.code().to_string(),
                name: site.name().to_string(),
                kwh_per_day: kwh,
                measured_band: SolarPotential::classify(kwh).to_string(),
                target_band: site.potential().to_string(),
            }
        })
        .collect();
    Tab02 { rows }
}

/// Runs the experiment.
pub fn run(out_dir: &Path) -> Tab02 {
    let tab = compute();
    let mut table = TextTable::new(["Station", "Location", "kWh/m²/day", "Measured", "Paper"]);
    for r in &tab.rows {
        table.row([
            r.code.clone(),
            r.name.clone(),
            format!("{:.2}", r.kwh_per_day),
            r.measured_band.clone(),
            r.target_band.clone(),
        ]);
    }
    println!("Table 2 — evaluated geographic locations");
    println!("{table}");
    write_json(out_dir, "tab02_sites", &tab).expect("results dir is writable");
    tab
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_bands_match_the_paper() {
        let tab = compute();
        assert_eq!(tab.rows.len(), 4);
        for r in &tab.rows {
            assert_eq!(r.measured_band, r.target_band, "{}", r.code);
        }
    }
}
