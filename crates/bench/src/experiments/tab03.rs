//! Table 3: performance levels of battery-based PV systems.

use std::path::Path;

use serde::Serialize;

use solarcore::BatteryTier;

use crate::output::{write_json, TextTable};

/// One column of Table 3.
#[derive(Debug, Clone, Serialize)]
pub struct TierRow {
    /// Tier label.
    pub level: String,
    /// MPP-tracking efficiency.
    pub mppt_efficiency: f64,
    /// Battery round-trip efficiency.
    pub battery_efficiency: f64,
    /// Overall de-rating factor.
    pub derating: f64,
}

/// The computed table.
#[derive(Debug, Clone, Serialize)]
pub struct Tab03 {
    /// High / Moderate / Low tiers.
    pub rows: Vec<TierRow>,
}

/// Computes the table.
pub fn compute() -> Tab03 {
    let rows = [
        ("High", BatteryTier::High),
        ("Moderate (typical)", BatteryTier::Typical),
        ("Low", BatteryTier::Low),
    ]
    .into_iter()
    .map(|(label, tier)| TierRow {
        level: label.to_string(),
        mppt_efficiency: tier.mppt_efficiency(),
        battery_efficiency: tier.battery_efficiency(),
        derating: tier.derating(),
    })
    .collect();
    Tab03 { rows }
}

/// Runs the experiment.
pub fn run(out_dir: &Path) -> Tab03 {
    let tab = compute();
    let mut table = TextTable::new(["Level", "MPPT eff.", "Battery eff.", "Overall"]);
    for r in &tab.rows {
        table.row([
            r.level.clone(),
            format!("{:.0} %", 100.0 * r.mppt_efficiency),
            format!("{:.0} %", 100.0 * r.battery_efficiency),
            format!("{:.0} %", 100.0 * r.derating),
        ]);
    }
    println!("Table 3 — battery-based PV system performance levels");
    println!("{table}");
    write_json(out_dir, "tab03_battery", &tab).expect("results dir is writable");
    tab
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deratings_match_table3() {
        let tab = compute();
        let overall: Vec<f64> = tab.rows.iter().map(|r| r.derating).collect();
        assert!((overall[0] - 0.92).abs() < 0.005);
        assert!((overall[1] - 0.81).abs() < 0.005);
        assert!((overall[2] - 0.70).abs() < 0.005);
    }
}
